//! Differential tests for the compiled rule dispatch table: replay the
//! same capture through a full-scan reference engine (every rule sees
//! every event) and through the compiled event-class dispatch, single
//! and sharded, and require **byte-identical** alert streams.
//!
//! The compiled table may only change *which rules are invoked per
//! event* — never what any rule observes of its subscribed classes — so
//! rule state, and therefore alerts, must match exactly. The eval
//! counters prove the table actually skips work: the compiled engine's
//! total `on_event` invocations must come in strictly below the
//! full-scan reference on any capture with a mixed event stream.

use scidive::prelude::*;

fn config_for(ep: &Endpoints, full_scan: bool) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.full_scan_rules = full_scan;
    config
}

/// Builds the Fig-4 testbed with one scripted call, taps the hub, and
/// optionally injects an attacker node.
fn capture_scenario(
    seed: u64,
    hangup: Option<SimDuration>,
    attacker: Option<Box<dyn Node>>,
) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), hangup)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if let Some(node) = attacker {
        tb.add_node("attacker", ep.attacker_ip, LinkParams::lan(), node);
    }
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    (frames, ep)
}

/// Replays `frames` through the full-scan reference and the compiled
/// dispatch (single engine and sharded at 1/2/4), asserting identical
/// alert streams everywhere. Returns the reference alerts for scenario
/// assertions.
fn assert_dispatch_equivalence(frames: &[CapturedFrame], ep: &Endpoints) -> Vec<Alert> {
    let mut reference = Scidive::new(config_for(ep, true));
    for f in frames {
        reference.on_frame(f.time, &f.packet);
    }

    let mut compiled = Scidive::new(config_for(ep, false));
    for f in frames {
        compiled.on_frame(f.time, &f.packet);
    }
    assert_eq!(
        compiled.alerts(),
        reference.alerts(),
        "compiled dispatch diverged from the full-scan reference"
    );
    assert_eq!(compiled.stats(), reference.stats());

    // The dispatch table must actually skip uninterested rules: same
    // events, strictly fewer rule invocations (every capture produces a
    // mix of event classes and no built-in rule subscribes to all).
    let full_evals: u64 = reference
        .engine_observation()
        .rule_evals
        .iter()
        .map(|e| e.evals)
        .sum();
    let compiled_evals: u64 = compiled
        .engine_observation()
        .rule_evals
        .iter()
        .map(|e| e.evals)
        .sum();
    if reference.stats().events > 0 {
        assert!(
            compiled_evals < full_evals,
            "compiled dispatch did not reduce rule invocations: {compiled_evals} vs {full_evals}"
        );
    }

    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedScidive::new(config_for(ep, false), shards, 64);
        for f in frames {
            sharded.submit(f.time, &f.packet);
        }
        let report = sharded.finish();
        assert_eq!(
            report.alerts,
            reference.alerts(),
            "sharded compiled dispatch diverged at {shards} shards"
        );
        assert_eq!(report.stats, reference.stats(), "counters diverged at {shards} shards");
        // The merged observation carries the exact per-rule counters,
        // summed across shards — same totals as the single compiled run.
        let merged: u64 = report.observation.rule_evals.iter().map(|e| e.evals).sum();
        assert_eq!(
            merged, compiled_evals,
            "per-rule eval counters don't merge across {shards} shards"
        );
    }
    reference.alerts().to_vec()
}

#[test]
fn benign_call_matches_full_scan_and_stays_silent() {
    let (frames, ep) = capture_scenario(701, Some(SimDuration::from_secs(3)), None);
    assert!(frames.len() > 100, "capture too small: {}", frames.len());
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(alerts.is_empty(), "benign capture alarmed: {alerts:?}");
}

#[test]
fn bye_attack_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        702,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "bye-attack"),
        "cross-protocol BYE detection missing: {alerts:?}"
    );
}

#[test]
fn call_hijack_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        703,
        None,
        Some(Box::new(Hijacker::new(HijackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "call-hijack"),
        "hijack detection missing: {alerts:?}"
    );
}

#[test]
fn fake_im_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        704,
        Some(SimDuration::from_secs(2)),
        Some(Box::new(FakeImAttacker::new(FakeImConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_millis(2_500),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "fake-im"),
        "fake IM detection missing: {alerts:?}"
    );
}

#[test]
fn rtp_flood_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        705,
        None,
        Some(Box::new(RtpFlooder::new(RtpFloodConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "rtp-attack"),
        "RTP flood detection missing: {alerts:?}"
    );
}

#[test]
fn operator_spec_rules_ride_the_dispatch_table() {
    // Spec-compiled rules derive their interests from their trigger
    // classes; installing them must not perturb equivalence.
    const SPEC: &str = "rule op-teardown severity critical window 2s {\n\
                        \tsequence CallTornDown, OrphanRtpAfterBye\n\
                        }\n";
    let (frames, ep) = capture_scenario(
        706,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let mut reference = Scidive::new(config_for(&ep, true));
    reference.add_rules_from_spec(SPEC).unwrap();
    let mut compiled = Scidive::new(config_for(&ep, false));
    compiled.add_rules_from_spec(SPEC).unwrap();
    for f in &frames {
        reference.on_frame(f.time, &f.packet);
        compiled.on_frame(f.time, &f.packet);
    }
    assert_eq!(compiled.alerts(), reference.alerts());
    assert!(
        reference.alerts().iter().any(|a| a.rule == "op-teardown"),
        "operator rule never fired: {:?}",
        reference.alerts()
    );
}
