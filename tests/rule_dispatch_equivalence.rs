//! Differential tests for the compiled rule dispatch table: replay the
//! same capture through a full-scan reference engine (every rule sees
//! every event) and through the compiled event-class dispatch, single
//! and sharded, and require **byte-identical** alert streams.
//!
//! The compiled table may only change *which rules are invoked per
//! event* — never what any rule observes of its subscribed classes — so
//! rule state, and therefore alerts, must match exactly. The eval
//! counters prove the table actually skips work: the compiled engine's
//! total `on_event` invocations must come in strictly below the
//! full-scan reference on any capture with a mixed event stream.

use scidive::prelude::*;

fn config_for(ep: &Endpoints, full_scan: bool) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.full_scan_rules = full_scan;
    config
}

/// Builds the Fig-4 testbed with one scripted call, taps the hub, and
/// optionally injects an attacker node.
fn capture_scenario(
    seed: u64,
    hangup: Option<SimDuration>,
    attacker: Option<Box<dyn Node>>,
) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), hangup)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if let Some(node) = attacker {
        tb.add_node("attacker", ep.attacker_ip, LinkParams::lan(), node);
    }
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    (frames, ep)
}

/// Replays `frames` through the full-scan reference and the compiled
/// dispatch (single engine and sharded at 1/2/4), asserting identical
/// alert streams everywhere. Returns the reference alerts for scenario
/// assertions.
fn assert_dispatch_equivalence(frames: &[CapturedFrame], ep: &Endpoints) -> Vec<Alert> {
    let mut reference = Scidive::new(config_for(ep, true));
    for f in frames {
        reference.on_frame(f.time, &f.packet);
    }

    let mut compiled = Scidive::new(config_for(ep, false));
    for f in frames {
        compiled.on_frame(f.time, &f.packet);
    }
    assert_eq!(
        compiled.alerts(),
        reference.alerts(),
        "compiled dispatch diverged from the full-scan reference"
    );
    assert_eq!(compiled.stats(), reference.stats());

    // The dispatch table must actually skip uninterested rules: same
    // events, strictly fewer rule invocations (every capture produces a
    // mix of event classes and no built-in rule subscribes to all).
    let full_evals: u64 = reference
        .engine_observation()
        .rule_evals
        .iter()
        .map(|e| e.evals)
        .sum();
    let compiled_evals: u64 = compiled
        .engine_observation()
        .rule_evals
        .iter()
        .map(|e| e.evals)
        .sum();
    if reference.stats().events > 0 {
        assert!(
            compiled_evals < full_evals,
            "compiled dispatch did not reduce rule invocations: {compiled_evals} vs {full_evals}"
        );
    }

    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedScidive::new(config_for(ep, false), shards, 64);
        for f in frames {
            sharded.submit(f.time, &f.packet);
        }
        let report = sharded.finish();
        assert_eq!(
            report.alerts,
            reference.alerts(),
            "sharded compiled dispatch diverged at {shards} shards"
        );
        assert_eq!(report.stats, reference.stats(), "counters diverged at {shards} shards");
        // The merged observation carries the exact per-rule counters,
        // summed across shards — same totals as the single compiled run.
        let merged: u64 = report.observation.rule_evals.iter().map(|e| e.evals).sum();
        assert_eq!(
            merged, compiled_evals,
            "per-rule eval counters don't merge across {shards} shards"
        );
    }
    reference.alerts().to_vec()
}

#[test]
fn benign_call_matches_full_scan_and_stays_silent() {
    let (frames, ep) = capture_scenario(701, Some(SimDuration::from_secs(3)), None);
    assert!(frames.len() > 100, "capture too small: {}", frames.len());
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(alerts.is_empty(), "benign capture alarmed: {alerts:?}");
}

#[test]
fn bye_attack_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        702,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "bye-attack"),
        "cross-protocol BYE detection missing: {alerts:?}"
    );
}

#[test]
fn call_hijack_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        703,
        None,
        Some(Box::new(Hijacker::new(HijackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "call-hijack"),
        "hijack detection missing: {alerts:?}"
    );
}

#[test]
fn fake_im_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        704,
        Some(SimDuration::from_secs(2)),
        Some(Box::new(FakeImAttacker::new(FakeImConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_millis(2_500),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "fake-im"),
        "fake IM detection missing: {alerts:?}"
    );
}

#[test]
fn rtp_flood_matches_full_scan() {
    let (frames, ep) = capture_scenario(
        705,
        None,
        Some(Box::new(RtpFlooder::new(RtpFloodConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_dispatch_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "rtp-attack"),
        "RTP flood detection missing: {alerts:?}"
    );
}

#[test]
fn operator_spec_rules_ride_the_dispatch_table() {
    // Spec-compiled rules derive their interests from their trigger
    // classes; installing them must not perturb equivalence.
    const SPEC: &str = "rule op-teardown severity critical window 2s {\n\
                        \tsequence CallTornDown, OrphanRtpAfterBye\n\
                        }\n";
    let (frames, ep) = capture_scenario(
        706,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let mut reference = Scidive::new(config_for(&ep, true));
    reference.add_rules_from_spec(SPEC).unwrap();
    let mut compiled = Scidive::new(config_for(&ep, false));
    compiled.add_rules_from_spec(SPEC).unwrap();
    for f in &frames {
        reference.on_frame(f.time, &f.packet);
        compiled.on_frame(f.time, &f.packet);
    }
    assert_eq!(compiled.alerts(), reference.alerts());
    assert!(
        reference.alerts().iter().any(|a| a.rule == "op-teardown"),
        "operator rule never fired: {:?}",
        reference.alerts()
    );
}

// ---------------------------------------------------------------------------
// DSL twins: the same three scenarios expressed as `.scid` programs via
// `RulesetSource::Dsl` must be byte-identical to their hand-written
// Rust twin rules — single engine and sharded at 1/2/4.
// ---------------------------------------------------------------------------

fn bye_attack_capture(seed: u64) -> (Vec<CapturedFrame>, Endpoints) {
    capture_scenario(
        seed,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    )
}

fn replay(mut ids: Scidive, frames: &[CapturedFrame]) -> Scidive {
    for f in frames {
        ids.on_frame(f.time, &f.packet);
    }
    ids
}

/// Asserts that a DSL-configured pipeline matches a hand-built twin
/// engine byte-for-byte: single engine, then sharded at 1/2/4.
fn assert_dsl_matches_twin(frames: &[CapturedFrame], twin: &Scidive, config: &ScidiveConfig) {
    let dsl = replay(Scidive::new(config.clone()), frames);
    assert_eq!(
        dsl.alerts(),
        twin.alerts(),
        "DSL engine diverged from the hand-written twin"
    );
    assert_eq!(dsl.stats(), twin.stats());

    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedScidive::new(config.clone(), shards, 64);
        for f in frames {
            sharded.submit(f.time, &f.packet);
        }
        let report = sharded.finish();
        assert_eq!(
            report.alerts,
            twin.alerts(),
            "sharded DSL run diverged from the twin at {shards} shards"
        );
        assert_eq!(report.stats, twin.stats(), "stats diverged at {shards} shards");
    }
}

/// Scenario 1: the operator teardown rule — the `.scid` program and the
/// `SequenceRule` the compiler lowers it to are indistinguishable.
#[test]
fn dsl_operator_rule_is_byte_identical_to_its_rust_twin() {
    const DSL: &str = "rule op-teardown severity critical window 2s {\n\
                       \tsequence CallTornDown, OrphanRtpAfterBye\n\
                       }\n";
    let (frames, ep) = bye_attack_capture(707);

    let mut twin = Scidive::new(config_for(&ep, false));
    twin.add_rule(Box::new(
        SequenceRule::new(
            "op-teardown",
            "operator-defined rule `op-teardown`",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(2),
        )
        .with_severity(Severity::Critical),
    ));
    let twin = replay(twin, &frames);
    assert!(
        twin.alerts().iter().any(|a| a.rule == "op-teardown"),
        "twin rule never fired: {:?}",
        twin.alerts()
    );

    let mut config = config_for(&ep, false);
    config.ruleset = RulesetSource::Dsl(DSL.to_string());
    assert_dsl_matches_twin(&frames, &twin, &config);
}

/// Scenario 2: the RTP-after-BYE sequence (the built-in bye-attack's
/// observable shape) re-expressed in DSL, pinned against its twin.
#[test]
fn dsl_rtp_after_bye_sequence_matches_its_rust_twin() {
    const DSL: &str = "# media keeps flowing after the dialog tore down\n\
                       rule media-after-bye severity warning {\n\
                       \tsequence CallTornDown, OrphanRtpAfterBye\n\
                       }\n";
    let (frames, ep) = bye_attack_capture(708);

    let mut twin = Scidive::new(config_for(&ep, false));
    twin.add_rule(Box::new(
        SequenceRule::new(
            "media-after-bye",
            "operator-defined rule `media-after-bye`",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(60),
        )
        .with_severity(Severity::Warning),
    ));
    let twin = replay(twin, &frames);
    assert!(
        twin.alerts().iter().any(|a| a.rule == "media-after-bye"),
        "twin sequence never fired: {:?}",
        twin.alerts()
    );

    let mut config = config_for(&ep, false);
    config.ruleset = RulesetSource::Dsl(DSL.to_string());
    assert_dsl_matches_twin(&frames, &twin, &config);
}

/// One caller fanning out to `calls` distinct callees, 100ms apart —
/// the rapid-connect shape, with per-dialog Call-IDs so the dialogs
/// spread across every shard.
fn fanout_capture(calls: u64) -> Vec<(SimTime, IpPacket)> {
    let caller_ip = std::net::Ipv4Addr::new(10, 0, 0, 40);
    let proxy_ip = std::net::Ipv4Addr::new(10, 0, 0, 1);
    let mut frames = Vec::new();
    for n in 0..calls {
        let at = SimTime::from_millis(100 * n);
        let callee = format!("sip:victim-{n}@lab");
        let mut b = RequestBuilder::new(Method::Invite, callee.parse().unwrap());
        b.from(NameAddr::new("sip:spammer@lab".parse().unwrap()).with_tag("spam"))
            .to(NameAddr::new(callee.parse().unwrap()))
            .call_id(format!("fan-{n}@lab"))
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.40:5060", format!("z9hG4bK-fan-{n}")));
        let invite = b.build();
        frames.push((
            at,
            IpPacket::udp(caller_ip, 5060, proxy_ip, 5060, invite.to_bytes().as_ref()),
        ));
        let ok = response_to(&invite, StatusCode::OK, Some(&format!("vt-{n}")));
        frames.push((
            at + SimDuration::from_millis(10),
            IpPacket::udp(proxy_ip, 5060, caller_ip, 5060, ok.to_bytes().as_ref()),
        ));
    }
    frames
}

/// Scenario 3: the rapid-connect threshold re-expressed in DSL. With
/// the built-in toggle off and a `.scid` program declaring the same
/// clause (same id, same bounds, same emit template), every run — exact
/// and sketch, single and sharded with the global fold — is
/// byte-identical to the built-in rule.
#[test]
fn dsl_rapid_connect_twin_matches_the_builtin() {
    const DSL: &str = "rule rapid-connect severity critical {\n\
        threshold CallEstablished by caller count >= 12 distinct callee >= 8 within 60s\n\
        emit \"rapid connections: caller {key} established {count} calls to {distinct} distinct callees within {window}s\"\n\
        }\n";
    let frames = fanout_capture(14);

    for exact in [true, false] {
        let builtin_config = ScidiveConfig {
            exact_rate_state: exact,
            ..ScidiveConfig::default()
        };
        let mut dsl_config = builtin_config.clone();
        dsl_config.rules.rapid_connect = false;
        dsl_config.ruleset = RulesetSource::Dsl(DSL.to_string());

        let mut builtin = Scidive::new(builtin_config.clone());
        let mut dsl = Scidive::new(dsl_config.clone());
        for (t, p) in &frames {
            builtin.on_frame(*t, p);
            dsl.on_frame(*t, p);
        }
        assert_eq!(
            builtin
                .alerts()
                .iter()
                .filter(|a| a.rule == "rapid-connect")
                .count(),
            1,
            "builtin rapid-connect should fire exactly once (exact={exact})"
        );
        assert_eq!(
            dsl.alerts(),
            builtin.alerts(),
            "DSL rapid-connect diverged from the builtin (exact={exact})"
        );

        // Sharded, the clause evaluates on the dispatcher's global fold
        // plane (alert shape differs from the single engine's inline
        // evaluation, but is itself shard-count invariant): the DSL twin
        // must match the builtin venue-for-venue.
        let run = |config: &ScidiveConfig, shards: usize| {
            let mut ids = ShardedScidive::new(config.clone(), shards, 64);
            for (t, p) in &frames {
                ids.submit(*t, p);
            }
            ids.finish()
        };
        let reference = run(&builtin_config, 1);
        assert_eq!(
            reference
                .alerts
                .iter()
                .filter(|a| a.rule == "rapid-connect")
                .count(),
            1,
            "fold plane should fire rapid-connect exactly once (exact={exact})"
        );
        for shards in [1usize, 2, 4] {
            let builtin_report = run(&builtin_config, shards);
            let dsl_report = run(&dsl_config, shards);
            assert_eq!(
                dsl_report.alerts, builtin_report.alerts,
                "sharded DSL rapid-connect diverged from the builtin at {shards} shards (exact={exact})"
            );
            assert_eq!(
                builtin_report.alerts, reference.alerts,
                "sharded builtin is not shard-count invariant at {shards} shards (exact={exact})"
            );
        }
    }
}
