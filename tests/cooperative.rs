//! Cooperative detection (paper §6 future work) end-to-end: two
//! endpoint detectors exchanging event objects catch the spoofed
//! fake-IM that provably evades a single endpoint (§4.2.2's concession).

use scidive::ids::cooperative::{CooperativeCluster, CooperativeConfig, EndpointDetector};
use scidive::prelude::*;

fn run_spoofed_fake_im(seed: u64) -> Testbed {
    let mut tb = TestbedBuilder::new(seed)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let mut cfg = FakeImConfig::new(
        ep.attacker_ip,
        ep.a_ip,
        ep.b_ip,
        SimDuration::from_millis(500),
    );
    cfg.spoof_ip = true; // the variant the endpoint rule cannot catch
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(cfg)),
    );
    tb.run_for(SimDuration::from_secs(2));
    tb
}

fn cluster_for(ep: &Endpoints) -> CooperativeCluster {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let coop = CooperativeConfig::default()
        .with_home("alice@lab", "ids-a")
        .with_home("bob@lab", "ids-b");
    CooperativeCluster::new(
        coop,
        vec![
            EndpointDetector::new("ids-a", ep.a_ip, "ua-a", config.clone()),
            EndpointDetector::new("ids-b", ep.b_ip, "ua-b", config),
        ],
    )
}

#[test]
fn spoofed_fake_im_evades_solo_but_not_the_cluster() {
    let tb = run_spoofed_fake_im(701);
    let ep = tb.endpoints.clone();

    // Solo endpoint IDS over the same trace: no fake-im alert (the IP
    // matches bob's, exactly the paper's concession).
    let mut solo_cfg = ScidiveConfig::default();
    solo_cfg.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut solo = Scidive::new(solo_cfg);
    for rec in tb.sim.trace().records() {
        solo.on_frame(rec.time, &rec.packet);
    }
    assert!(
        solo.alerts().iter().all(|a| a.rule != "fake-im"),
        "spoofed IM must evade the endpoint rule"
    );

    // Cooperative cluster over the same trace: bob's detector never saw
    // bob's host send the message — forged.
    let mut cluster = cluster_for(&ep);
    let coop_alerts = cluster.process_trace(tb.sim.trace());
    assert_eq!(coop_alerts.len(), 1, "{coop_alerts:?}");
    assert_eq!(coop_alerts[0].rule, "coop-forged-im");
}

#[test]
fn genuine_im_traffic_raises_no_cooperative_alerts() {
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(702)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![
            ScriptStep::new(SimDuration::from_millis(20), UaAction::Register),
            ScriptStep::new(
                SimDuration::from_millis(500),
                UaAction::SendIm { to: ep.a_aor(), text: "really me".to_string() },
            ),
            ScriptStep::new(
                SimDuration::from_millis(800),
                UaAction::SendIm { to: ep.a_aor(), text: "again".to_string() },
            ),
        ])
        .build();
    tb.run_for(SimDuration::from_secs(2));
    let mut cluster = cluster_for(&tb.endpoints);
    let coop_alerts = cluster.process_trace(tb.sim.trace());
    assert!(coop_alerts.is_empty(), "{coop_alerts:?}");
}

#[test]
fn unspoofed_fake_im_caught_by_exchange_despite_narrow_views() {
    // A per-endpoint (host-based) view is *narrower* than the hub tap:
    // A's detector never sees bob's REGISTER leg (dst = proxy), so the
    // local IP-consistency rule has no baseline to compare against —
    // which is exactly why the paper proposes exchanging event objects.
    // The cooperative rule still catches the forgery: bob's own
    // detector knows bob's host sent nothing.
    let mut tb = TestbedBuilder::new(703)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(FakeImConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(500),
        ))),
    );
    tb.run_for(SimDuration::from_secs(2));

    let mut cluster = cluster_for(&ep);
    let coop_alerts = cluster.process_trace(tb.sim.trace());
    // A's narrow host view had no identity baseline, so no local alert —
    // but the exchange exposes the forgery regardless.
    assert!(coop_alerts.iter().any(|a| a.rule == "coop-forged-im"));
    // And nothing benign was flagged anywhere in the cluster.
    for det in cluster.detectors() {
        assert!(
            det.ids
                .alerts()
                .iter()
                .all(|a| a.severity != Severity::Critical),
            "{}: {:?}",
            det.name,
            det.ids.alerts()
        );
    }
}
