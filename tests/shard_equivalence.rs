//! Differential tests for the sharded pipeline: replay the same capture
//! through a single `Scidive` and through `ShardedScidive` at several
//! shard counts, and require the merged alert stream and the summed
//! pipeline counters to be **identical** — over benign traffic and over
//! every attack capture, including the cross-protocol BYE whose
//! detection spans SIP and RTP trails.

use scidive::prelude::*;

/// Shard counts exercised by every equivalence check: the degenerate
/// single shard, powers of two, and a prime that doesn't divide
/// anything evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn ids_config(ep: &Endpoints) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config
}

/// Replays `frames` through both deployments and asserts equivalence at
/// every shard count. Returns the single-engine alerts for scenario
/// assertions.
fn assert_shard_invariant(frames: &[CapturedFrame], ep: &Endpoints) -> Vec<Alert> {
    let config = ids_config(ep);
    let mut single = Scidive::new(config.clone());
    for f in frames {
        single.on_frame(f.time, &f.packet);
    }
    for shards in SHARD_COUNTS {
        let mut sharded = ShardedScidive::new(config.clone(), shards, 64);
        for f in frames {
            sharded.submit(f.time, &f.packet);
        }
        let report = sharded.finish();
        assert_eq!(
            report.alerts,
            single.alerts(),
            "alert stream diverged at {shards} shards"
        );
        assert_eq!(
            report.stats,
            single.stats(),
            "summed pipeline counters diverged at {shards} shards"
        );
        // No silent drops, ever: backpressure blocks instead.
        assert_eq!(report.dispatch.dropped, 0);
        assert_eq!(report.dispatch.frames, frames.len() as u64);
        // Every frame is accounted to exactly one shard.
        assert_eq!(
            report.shards.iter().map(|s| s.dispatched).sum::<u64>(),
            frames.len() as u64,
            "dispatched counters don't cover the capture at {shards} shards"
        );
        assert_eq!(report.shards.len(), shards);
    }
    single.alerts().to_vec()
}

/// Builds the Fig-4 testbed with one scripted call, taps the hub, and
/// optionally injects an attacker node.
fn capture_scenario(
    seed: u64,
    hangup: Option<SimDuration>,
    attacker: Option<Box<dyn Node>>,
) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), hangup)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if let Some(node) = attacker {
        tb.add_node("attacker", ep.attacker_ip, LinkParams::lan(), node);
    }
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    (frames, ep)
}

#[test]
fn benign_call_is_shard_invariant_and_silent() {
    let (frames, ep) = capture_scenario(601, Some(SimDuration::from_secs(3)), None);
    assert!(frames.len() > 100, "capture too small: {}", frames.len());
    let alerts = assert_shard_invariant(&frames, &ep);
    assert!(alerts.is_empty(), "benign capture alarmed: {alerts:?}");
}

#[test]
fn bye_attack_fires_identically_through_the_dispatcher() {
    // The §4.2.1 forged BYE: cross-protocol — the teardown is SIP, the
    // evidence (orphan media from the claimed terminator) is RTP. Both
    // trails must land on the same shard for the rule to fire.
    let (frames, ep) = capture_scenario(
        602,
        None,
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_shard_invariant(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "bye-attack"),
        "cross-protocol BYE detection missing: {alerts:?}"
    );
}

#[test]
fn call_hijack_fires_identically_through_the_dispatcher() {
    let (frames, ep) = capture_scenario(
        603,
        None,
        Some(Box::new(Hijacker::new(HijackConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_shard_invariant(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "call-hijack"),
        "hijack detection missing: {alerts:?}"
    );
}

#[test]
fn fake_im_fires_identically_through_the_dispatcher() {
    // Identity-plane detection: the IM source history lives in the
    // dispatcher, and its events must merge back in engine order.
    let (frames, ep) = capture_scenario(
        604,
        Some(SimDuration::from_secs(2)),
        Some(Box::new(FakeImAttacker::new(FakeImConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().a_ip,
            Endpoints::default().b_ip,
            SimDuration::from_millis(2_500),
        )))),
    );
    let alerts = assert_shard_invariant(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "fake-im"),
        "fake IM detection missing: {alerts:?}"
    );
}

#[test]
fn rtp_flood_fires_identically_through_the_dispatcher() {
    let (frames, ep) = capture_scenario(
        605,
        None,
        Some(Box::new(RtpFlooder::new(RtpFloodConfig::new(
            Endpoints::default().attacker_ip,
            Endpoints::default().b_ip,
            SimDuration::from_secs(1),
        )))),
    );
    let alerts = assert_shard_invariant(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "rtp-attack"),
        "RTP flood detection missing: {alerts:?}"
    );
}

#[test]
fn shard_counters_break_down_the_capture() {
    let (frames, ep) = capture_scenario(606, Some(SimDuration::from_secs(3)), None);
    let mut sharded = ShardedScidive::new(ids_config(&ep), 4, 64);
    for f in &frames {
        sharded.submit(f.time, &f.packet);
    }
    let report = sharded.finish();
    // With per-session hashing, a single call's SIP+RTP+accounting all
    // land on one shard; the overflow shard holds at most unattributable
    // noise.
    let busy: Vec<_> = report
        .shards
        .iter()
        .filter(|s| s.pipeline.footprints > 0)
        .collect();
    assert!(!busy.is_empty());
    assert_eq!(
        report.shards.iter().map(|s| s.pipeline.footprints).sum::<u64>(),
        report.stats.footprints
    );
    assert_eq!(report.dispatch.dropped, 0);
}
