//! VoIP substrate behaviours the IDS relies on: realistic call flows,
//! retransmission over loss, mobility, concurrent calls, accounting.

use scidive::prelude::*;

#[test]
fn call_survives_moderate_signalling_loss() {
    // 10% loss everywhere: SIP transactions retransmit (RFC 3261 T1
    // schedule), so calls still complete.
    let mut completed = 0;
    for seed in 1..=10u64 {
        let mut tb = TestbedBuilder::new(seed)
            .link(LinkParams::lan().with_loss(0.10))
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_secs(4)),
            )
            .build();
        tb.run_for(SimDuration::from_secs(6));
        if tb
            .a_events()
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. }))
        {
            completed += 1;
        }
    }
    assert!(completed >= 9, "only {completed}/10 calls completed under 10% loss");
}

#[test]
fn media_pacing_is_twenty_ms() {
    let mut tb = TestbedBuilder::new(603)
        .link(LinkParams::ideal())
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(2)))
        .build();
    let ep = tb.endpoints.clone();
    tb.run_for(SimDuration::from_secs(3));
    // Consecutive RTP transmissions from B are exactly 20 ms apart.
    let times: Vec<SimTime> = tb
        .sim
        .trace()
        .records()
        .iter()
        .filter(|r| {
            r.packet.src == ep.b_ip
                && r.packet
                    .decode_udp()
                    .map(|u| u.dst_port == ep.a_rtp)
                    .unwrap_or(false)
        })
        .map(|r| r.time)
        .collect();
    assert!(times.len() > 50);
    for pair in times.windows(2) {
        assert_eq!(pair[1] - pair[0], SimDuration::from_millis(20));
    }
}

#[test]
fn two_concurrent_calls_are_independent_sessions() {
    // alice calls bob; carol calls dave. The IDS keeps four media sinks
    // under two distinct sessions.
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(604)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let carol_ip = std::net::Ipv4Addr::new(10, 0, 0, 21);
    let dave_ip = std::net::Ipv4Addr::new(10, 0, 0, 22);
    let carol_aor: SipUri = "sip:carol@lab".parse().unwrap();
    let dave_aor: SipUri = "sip:dave@lab".parse().unwrap();
    let carol = UserAgent::new(
        UaConfig::new(carol_aor, carol_ip, 8200, ep.proxy_ip),
        vec![
            ScriptStep::new(SimDuration::from_millis(40), UaAction::Register),
            ScriptStep::new(
                SimDuration::from_millis(700),
                UaAction::Call { to: dave_aor.clone() },
            ),
        ],
    );
    let dave = UserAgent::new(
        UaConfig::new(dave_aor, dave_ip, 8300, ep.proxy_ip),
        vec![ScriptStep::new(SimDuration::from_millis(50), UaAction::Register)],
    );
    let carol_id = tb.add_node("carol", carol_ip, LinkParams::lan(), Box::new(carol));
    let dave_id = tb.add_node("dave", dave_ip, LinkParams::lan(), Box::new(dave));

    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.run_for(SimDuration::from_secs(4));

    assert!(tb.ua(tb.a).unwrap().has_active_call());
    assert!(tb.sim.node_as::<UserAgent>(carol_id).unwrap().has_active_call());
    assert!(tb.sim.node_as::<UserAgent>(dave_id).unwrap().has_active_call());

    let mut ids = Scidive::new(ScidiveConfig::default());
    for f in tap.borrow().iter() {
        ids.on_frame(f.time, &f.packet);
    }
    let s1 = ids.trails().session_for_media(ep.a_ip, ep.a_rtp).cloned().unwrap();
    let s2 = ids.trails().session_for_media(carol_ip, 8200).cloned().unwrap();
    assert_ne!(s1, s2, "two calls must not share a session");
    // Both CDRs exist.
    assert_eq!(tb.cdrs().len(), 2);
    // No critical alerts on this all-benign double call.
    assert!(ids
        .alerts()
        .iter()
        .all(|a| a.severity != Severity::Critical));
}

#[test]
fn mobility_reinvite_moves_the_flow_without_alarms() {
    let mut tb = TestbedBuilder::new(605)
        .standard_call(SimDuration::from_millis(500), None)
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::MigrateMedia { new_rtp_port: 9400 },
        )])
        .build();
    let ep = tb.endpoints.clone();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );
    tb.run_for(SimDuration::from_secs(5));
    // Media flows to the new port...
    assert!(!tb.sim.trace().filter_udp_port(9400).is_empty());
    // ...and the IDS tracked the redirect without crying hijack.
    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    assert!(
        alerts.iter().all(|a| a.severity != Severity::Critical),
        "{alerts:?}"
    );
}

#[test]
fn billing_duration_matches_call_duration() {
    let mut tb = TestbedBuilder::new(606)
        .link(LinkParams::ideal())
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_millis(2_500)),
        )
        .build();
    tb.run_for(SimDuration::from_secs(4));
    let cdrs = tb.cdrs();
    assert_eq!(cdrs.len(), 1);
    let cdr = &cdrs[0];
    let billed = cdr.stopped.expect("closed") - cdr.started;
    // The call ran from ~500 ms (setup) to 2500 ms (hangup): ~2 s.
    let billed_ms = billed.as_millis_f64();
    assert!(
        (1_900.0..=2_100.0).contains(&billed_ms),
        "billed {billed_ms} ms"
    );
}

#[test]
fn crashed_client_stops_participating() {
    let mut tb = TestbedBuilder::new(607)
        .standard_call(SimDuration::from_millis(500), None)
        .a_fragile(3)
        .build();
    let ep = tb.endpoints.clone();
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RtpFlooder::new(RtpFloodConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));
    let ua = tb.ua(tb.a).unwrap();
    assert!(ua.is_crashed());
    // After the crash, A sends nothing: its last transmission precedes
    // the crash moment plus one frame.
    let crash_time = tb
        .a_events()
        .iter()
        .find_map(|e| matches!(e.kind, UaEventKind::Crashed { .. }).then_some(e.time))
        .expect("crash recorded");
    let late_tx = tb
        .sim
        .trace()
        .records()
        .iter()
        .filter(|r| r.packet.src == ep.a_ip && r.time > crash_time)
        .count();
    assert_eq!(late_tx, 0, "a crashed client must go silent");
}
