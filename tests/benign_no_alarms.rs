//! Benign scenarios must raise no critical alerts: legitimate calls,
//! teardowns, authentication retries, instant messaging, and genuine
//! mobility all look superficially like the attacks.

use scidive::prelude::*;

fn deploy_ids(tb: &mut Testbed) -> scidive::netsim::node::NodeId {
    let ep = tb.endpoints.clone();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    )
}

fn criticals(tb: &Testbed, ids: scidive::netsim::node::NodeId) -> Vec<Alert> {
    tb.sim
        .node_as::<IdsNode>(ids)
        .unwrap()
        .ids()
        .alerts()
        .iter()
        .filter(|a| a.severity == Severity::Critical)
        .cloned()
        .collect()
}

#[test]
fn normal_call_and_teardown_is_clean() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut tb = TestbedBuilder::new(seed)
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_secs(3)),
            )
            .build();
        let ids = deploy_ids(&mut tb);
        tb.run_for(SimDuration::from_secs(6));
        let alerts = criticals(&tb, ids);
        assert!(alerts.is_empty(), "seed {seed}: {alerts:?}");
    }
}

#[test]
fn callee_initiated_teardown_is_clean() {
    let mut tb = TestbedBuilder::new(11)
        .standard_call(SimDuration::from_millis(500), None)
        .b_script(vec![ScriptStep::new(SimDuration::from_secs(3), UaAction::HangUp)])
        .build();
    let ids = deploy_ids(&mut tb);
    tb.run_for(SimDuration::from_secs(6));
    let alerts = criticals(&tb, ids);
    assert!(alerts.is_empty(), "{alerts:?}");
}

#[test]
fn digest_auth_registration_is_clean() {
    let mut tb = TestbedBuilder::new(12)
        .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_secs(3)),
        )
        .build();
    let ids = deploy_ids(&mut tb);
    tb.run_for(SimDuration::from_secs(6));
    // Each client's REGISTER → 401 → authed REGISTER cycle must not trip
    // the DoS or guessing rules.
    let alerts = criticals(&tb, ids);
    assert!(alerts.is_empty(), "{alerts:?}");
}

#[test]
fn instant_messaging_is_clean() {
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(13)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![
            ScriptStep::new(SimDuration::from_millis(20), UaAction::Register),
            ScriptStep::new(
                SimDuration::from_millis(500),
                UaAction::SendIm { to: ep.a_aor(), text: "hi".to_string() },
            ),
            ScriptStep::new(
                SimDuration::from_millis(900),
                UaAction::SendIm { to: ep.a_aor(), text: "still me".to_string() },
            ),
        ])
        .build();
    let ids = deploy_ids(&mut tb);
    tb.run_for(SimDuration::from_secs(2));
    let alerts = criticals(&tb, ids);
    assert!(alerts.is_empty(), "{alerts:?}");
}

#[test]
fn genuine_media_migration_is_clean() {
    let mut tb = TestbedBuilder::new(14)
        .standard_call(SimDuration::from_millis(500), None)
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::MigrateMedia { new_rtp_port: 9100 },
        )])
        .build();
    let ids = deploy_ids(&mut tb);
    tb.run_for(SimDuration::from_secs(5));
    let alerts = criticals(&tb, ids);
    assert!(
        alerts.iter().all(|a| a.rule != "call-hijack"),
        "genuine mobility must not look like hijacking: {alerts:?}"
    );
}

#[test]
fn many_benign_clients_registering_is_clean() {
    // The §3.3 argument: lots of benign 401 churn from *different*
    // clients must not trip the stateful flood rule.
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(15)
        .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(30), UaAction::Register)])
        .build();
    let ids = deploy_ids(&mut tb);
    // Add ten more benign clients, each doing a challenge cycle.
    for i in 0..10u8 {
        let ip = std::net::Ipv4Addr::new(10, 0, 1, i + 1);
        let aor: SipUri = format!("sip:user{i}@lab").parse().unwrap();
        let cfg = UaConfig::new(aor, ip, 10_000 + u16::from(i) * 2, ep.proxy_ip)
            .with_password(format!("pw-{i}"));
        // They are not in the proxy's account list, so their auth fails —
        // a realistic misconfiguration producing extra 4xx noise.
        let ua = UserAgent::new(
            cfg,
            vec![ScriptStep::new(
                SimDuration::from_millis(50 + u64::from(i) * 20),
                UaAction::Register,
            )],
        );
        tb.add_node(&format!("ua-{i}"), ip, LinkParams::lan(), Box::new(ua));
    }
    tb.run_for(SimDuration::from_secs(5));
    let alerts = criticals(&tb, ids);
    assert!(
        alerts.iter().all(|a| a.rule != "register-dos"),
        "per-source tracking must not flood-alarm on benign churn: {alerts:?}"
    );
}
