//! Edge cases of the batched shard dispatcher: partial batches must be
//! flushed by `finish()`, the linger window must publish buffered frames
//! without waiting for `finish()`, and no choice of batch size may move
//! an alert in the merged stream — the `(seq, idx)` merge key is
//! assigned at dispatch, before batching, so batch boundaries are
//! invisible in the output.

use scidive::prelude::*;
use std::net::Ipv4Addr;

/// A minimal SIP request that trips the `sip-format` rule (missing
/// mandatory headers), so every frame deterministically raises alerts.
fn options(call_id: &str) -> IpPacket {
    IpPacket::udp(
        Ipv4Addr::new(10, 0, 0, 2),
        5060,
        Ipv4Addr::new(10, 0, 0, 1),
        5060,
        format!("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: {call_id}\r\n\r\n").into_bytes(),
    )
}

/// A capture whose length divides evenly into none of the tested batch
/// sizes, spread over several sessions so multi-shard runs interleave.
fn capture(frames: u64) -> Vec<(SimTime, IpPacket)> {
    (0..frames)
        .map(|i| (SimTime::from_millis(i), options(&format!("call-{}", i % 5))))
        .collect()
}

fn single_engine_alerts(frames: &[(SimTime, IpPacket)]) -> Vec<Alert> {
    let mut single = Scidive::new(ScidiveConfig::default());
    single.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    single.alerts().to_vec()
}

#[test]
fn partial_batch_is_flushed_by_finish() {
    // Batch far larger than the capture, linger far longer than its
    // span: nothing can ship on batch-full or on the time boundary, so
    // every frame reaches its worker only through finish()'s flush.
    let frames = capture(7);
    let expected = single_engine_alerts(&frames);
    assert!(!expected.is_empty(), "capture must raise alerts");
    for shards in [1usize, 3] {
        let mut sharded = ShardedScidive::new(ScidiveConfig::default(), shards, 8)
            .with_batching(1024, SimDuration::from_secs(3600));
        sharded.process_capture(frames.iter().map(|(t, p)| (*t, p)));
        let report = sharded.finish();
        assert_eq!(report.alerts, expected, "shards={shards}");
        assert_eq!(report.stats.frames, frames.len() as u64);
        assert_eq!(report.dispatch.dropped, 0);
    }
}

#[test]
fn batch_boundaries_do_not_reorder_the_merge() {
    // 41 frames: indivisible by every tested batch size, so each run
    // ends on a partial batch and the boundaries fall in different
    // places. The merged stream must be identical regardless.
    let frames = capture(41);
    let expected = single_engine_alerts(&frames);
    assert!(!expected.is_empty());
    for shards in [1usize, 2, 4] {
        for batch in [1usize, 3, 8, 64] {
            let mut sharded = ShardedScidive::new(ScidiveConfig::default(), shards, 8)
                .with_batching(batch, SimDuration::from_millis(100));
            sharded.process_capture(frames.iter().map(|(t, p)| (*t, p)));
            let report = sharded.finish();
            assert_eq!(
                report.alerts, expected,
                "merge diverged at shards={shards} batch={batch}"
            );
            assert_eq!(
                report.shards.iter().map(|s| s.dispatched).sum::<u64>(),
                frames.len() as u64,
                "dispatched counters don't cover the capture at shards={shards} batch={batch}"
            );
        }
    }
}

#[test]
fn linger_window_publishes_without_finish() {
    // Batch too large to ever fill, linger of 10ms of capture time: the
    // frames buffered at t=0..3ms must ship when the capture clock
    // reaches t=200ms, so their alerts become observable while the
    // dispatcher is still running. Only finish() is allowed to be the
    // flush of last resort, not the only flush.
    let mut sharded = ShardedScidive::new(ScidiveConfig::default(), 2, 8)
        .with_batching(1024, SimDuration::from_millis(10));
    for i in 0..4u64 {
        sharded.submit(SimTime::from_millis(i), &options(&format!("early-{i}")));
    }
    // Crossing the linger boundary flushes the early frames; this frame
    // itself stays buffered (its batch is not full, no later frame
    // advances the clock past it).
    sharded.submit(SimTime::from_millis(200), &options("late"));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut seen = Vec::new();
    while seen.is_empty() && std::time::Instant::now() < deadline {
        seen = sharded.alerts_snapshot();
        if seen.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    assert!(
        !seen.is_empty(),
        "linger window never flushed: no alerts observable before finish()"
    );
    // The snapshot is a prefix of the final merged stream.
    let report = sharded.finish();
    assert_eq!(report.dispatch.frames, 5);
    assert!(seen.len() <= report.alerts.len());
    assert_eq!(&report.alerts[..seen.len()], &seen[..]);
}

#[test]
fn unit_batch_restores_per_frame_dispatch() {
    // batch = 1 must behave exactly like the pre-batching dispatcher:
    // every frame ships immediately, and the output still matches.
    let frames = capture(23);
    let expected = single_engine_alerts(&frames);
    let mut sharded = ShardedScidive::new(ScidiveConfig::default(), 3, 4)
        .with_batching(1, SimDuration::from_millis(100));
    sharded.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let report = sharded.finish();
    assert_eq!(report.alerts, expected);
    assert_eq!(report.dispatch.frames, 23);
}

#[test]
#[should_panic(expected = "batch size must be at least 1")]
fn zero_batch_panics() {
    let _ = ShardedScidive::new(ScidiveConfig::default(), 2, 4)
        .with_batching(0, SimDuration::from_millis(100));
}
