//! Operator-defined rules from the text spec, deployed against real
//! attack traffic: the paper's "extended for detecting new classes of
//! attacks" without code changes.

use scidive::prelude::*;

fn hijack_capture(seed: u64) -> (Trace, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(Hijacker::new(HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));
    (tb.sim.trace().clone(), ep)
}

#[test]
fn spec_rule_catches_hijack_with_builtins_disabled() {
    let (trace, ep) = hijack_capture(1001);
    // Engine with ALL built-in rules off; only the operator spec armed.
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.rules = RuleToggles {
        bye_attack: false,
        call_hijack: false,
        fake_im: false,
        rtp_attack: false,
        register_dos: false,
        password_guess: false,
        billing_fraud: false,
        sip_format: false,
        rtcp_bye: false,
        mgcp: false,
        rapid_connect: false,
    };
    let mut ids = Scidive::new(config);
    let installed = ids
        .add_rules_from_spec(
            "# operator: watch for redirects followed by orphan media\n\
             rule ops-hijack severity critical window 1s {\n\
                 sequence CallRedirected, OrphanRtpAfterRedirect\n\
             }\n",
        )
        .unwrap();
    assert_eq!(installed, 1);
    for rec in trace.records() {
        ids.on_frame(rec.time, &rec.packet);
    }
    let alerts = ids.alerts();
    assert!(
        alerts.iter().any(|a| a.rule == "ops-hijack"),
        "{alerts:?}"
    );
    // Nothing else fired (no built-ins were armed).
    assert!(alerts.iter().all(|a| a.rule == "ops-hijack"));
}

#[test]
fn spec_rules_stay_quiet_on_benign_traffic() {
    let mut tb = TestbedBuilder::new(1002)
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_secs(3)),
        )
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::MigrateMedia { new_rtp_port: 9600 },
        )])
        .build();
    tb.run_for(SimDuration::from_secs(5));

    let mut ids = Scidive::new(ScidiveConfig::default());
    ids.add_rules_from_spec(
        "rule ops-hijack severity critical window 1s {\n\
             sequence CallRedirected, OrphanRtpAfterRedirect\n\
         }\n\
         rule ops-fraud severity critical window 60s {\n\
             all-of SipMalformed, AcctMismatch\n\
         }\n",
    )
    .unwrap();
    for rec in tb.sim.trace().records() {
        ids.on_frame(rec.time, &rec.packet);
    }
    // Genuine mobility produced a CallRedirected event but no orphan:
    // the operator sequence rule must not fire.
    assert!(
        ids.alerts()
            .iter()
            .all(|a| a.severity != Severity::Critical),
        "{:?}",
        ids.alerts()
    );
}

#[test]
fn bad_spec_installs_nothing() {
    let mut ids = Scidive::new(ScidiveConfig::default());
    let err = ids
        .add_rules_from_spec("rule broken {\n sequence NoSuchClass\n}\n")
        .unwrap_err();
    assert!(err.to_string().contains("NoSuchClass"));
}
