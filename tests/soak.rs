//! Million-session soak: the constant-memory claim, gate-enforced.
//!
//! Drives hours of virtual time of template-stamped dialog load (see
//! [`scidive_voip::synth`]) through one engine in sketch mode
//! (`exact_rate_state = false`) and checks, from the observability
//! gauges alone, that
//!
//! * the flood/guess rate-tracker footprint is **byte-for-byte
//!   constant** from the first checkpoint on and under a hard cap,
//!   regardless of how many dialogs or registration sources pass by;
//! * every per-session gauge (trails, media index, interner, synthetic
//!   keys, rule state) plateaus — the second half of the run leaves no
//!   more state behind than its middle — and the expiry counters prove
//!   the lifecycle actually ran;
//! * the benign load raises no alerts.
//!
//! Scale via `SCIDIVE_SOAK_DIALOGS` (default 2 000 so debug `cargo
//! test` stays fast; `scripts/ci.sh` runs a release profile at 100 000;
//! `exp_capacity` ladders to a million).

use scidive::prelude::*;
use scidive_voip::synth::SynthConfig;

/// Hard bound on bytes pinned by all rate trackers. The default
/// dimensioning (§13 of DESIGN.md) sits near 1.2 MiB; doubling it is
/// regression headroom, not slack for growth-with-load.
const RATE_BYTES_CAP: u64 = 2 * 1024 * 1024;

fn soak_dialogs() -> u64 {
    std::env::var("SCIDIVE_SOAK_DIALOGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

#[test]
fn soak_rate_state_constant_and_gauges_plateau() {
    let dialogs = soak_dialogs();
    let concurrent = (dialogs / 4).max(64);
    let mut synth = SynthConfig::load(dialogs, concurrent);
    // Stretch the schedule tenfold so the run spans hours of virtual
    // time at the full scale (1M dialogs -> ~3.5 h) and comfortably
    // crosses every idle timeout at the debug scale.
    synth.spacing = SimDuration::from_millis(10);
    synth.hold = SimDuration::from_millis(10 * concurrent);
    let span = synth.span();

    // State windows well inside the run, so the plateau (not just the
    // ramp) is what the checkpoints observe.
    let window = SimDuration::from_micros((span.as_micros() / 16).max(2_000_000));
    let mut config = ScidiveConfig {
        exact_rate_state: false,
        ..ScidiveConfig::default()
    };
    config.trails.idle_timeout = window;
    config.events.identity_timeout = window;
    config.events.session_timeout = window;

    let mut ids = Scidive::new(config);
    let total = synth.total_frames();
    let checkpoint_every = (total / 8).max(1);
    let mut gauges = Vec::new();
    for (n, (time, pkt)) in synth.stream().enumerate() {
        ids.on_frame(time, &pkt);
        if (n as u64 + 1).is_multiple_of(checkpoint_every) {
            gauges.push(ids.gauges());
        }
    }

    let stats = ids.stats();
    assert_eq!(stats.frames, total);
    assert!(
        stats.events >= dialogs,
        "every dialog should at least establish: {} events for {dialogs} dialogs",
        stats.events
    );
    assert!(
        ids.alerts().is_empty(),
        "benign synthetic load raised alerts: {:?}",
        ids.alerts().first()
    );

    // Rate state: constant bytes from the first checkpoint on (every
    // tracker exists after the first churn pair and first dialog), and
    // bounded by the hard cap.
    let first = gauges.first().expect("at least one checkpoint");
    assert!(first.rate_bytes > 0, "rate trackers never materialized");
    for (i, g) in gauges.iter().enumerate() {
        assert_eq!(
            g.rate_bytes, first.rate_bytes,
            "rate tracker bytes moved at checkpoint {i}: {} -> {}",
            first.rate_bytes, g.rate_bytes
        );
        assert!(
            g.rate_bytes < RATE_BYTES_CAP,
            "rate tracker bytes {} broke the {RATE_BYTES_CAP} cap",
            g.rate_bytes
        );
        assert_eq!(
            g.rate_divergence_samples, 0,
            "sketch mode must not run exact shadow comparisons"
        );
    }

    // Plateau: the last checkpoint retains no more per-session state
    // than the biggest mid-run checkpoint (10% + constant headroom for
    // checkpoint phase vs. sweep cadence).
    type Gauge = fn(&StateGauges) -> u64;
    let last = gauges.last().expect("checkpoints");
    let mid = &gauges[gauges.len() / 2..gauges.len() - 1];
    let cap = |f: Gauge| {
        let peak = mid.iter().map(f).max().unwrap_or(0);
        peak + peak / 10 + 64
    };
    let checks: [(&str, Gauge); 6] = [
        ("trails", |g| g.trails),
        ("retained_footprints", |g| g.retained_footprints),
        ("media_index", |g| g.media_index),
        ("interner", |g| g.interner),
        ("synthetic_keys", |g| g.synthetic_keys),
        ("session_plane", |g| g.session_plane),
    ];
    for (name, f) in checks {
        assert!(
            f(last) <= cap(f),
            "{name} kept growing: final {} vs mid-run cap {}",
            f(last),
            cap(f)
        );
    }
    // Rule state: sketch mode keeps the flood detections out of rule
    // maps entirely; only fired-once markers could exist, and nothing
    // fires here.
    assert_eq!(last.rule_state, 0, "benign sketch-mode run holds rule state");

    // The lifecycle counters prove expiry ran rather than the load
    // being too small to matter.
    assert!(last.expired_trails > 0, "no trail ever expired");
    assert!(last.interner_expired > 0, "no interned key ever expired");
    assert!(
        last.session_plane_expired > 0,
        "no session-plane dialog ever expired"
    );
}

/// The sharded pipeline's global fold plane under sustained benign
/// load: the dispatcher-side hub materializes once the first fold
/// absorbs per-shard deltas, then its footprint is byte-for-byte
/// constant and inside the same hard cap as the per-shard trackers —
/// and the periodic folds raise no alerts on benign traffic.
#[test]
fn soak_sharded_fold_plane_bytes_stay_constant() {
    let mut synth = SynthConfig::load(2_000, 256);
    // Stretch the schedule so the ~20s virtual span crosses the 1s fold
    // cadence dozens of times before the first checkpoint samples it.
    synth.spacing = SimDuration::from_millis(10);
    synth.hold = SimDuration::from_millis(10 * 256);
    let config = ScidiveConfig {
        exact_rate_state: false,
        ..ScidiveConfig::default()
    };
    let mut ids = ShardedScidive::new(config, 4, 64);
    let total = synth.total_frames();
    let checkpoint_every = (total / 8).max(1);
    let mut fold_bytes = Vec::new();
    for (n, (time, pkt)) in synth.stream().enumerate() {
        ids.submit(time, &pkt);
        if (n as u64 + 1).is_multiple_of(checkpoint_every) {
            fold_bytes.push(ids.observation().gauges.fold_rate_bytes);
        }
    }
    let report = ids.finish();
    assert!(
        report.alerts.is_empty(),
        "benign sharded load raised fold-plane alerts: {:?}",
        report.alerts.first()
    );
    assert!(
        report.observation.dispatch.folds > 0,
        "the periodic fold cadence never ran"
    );
    assert_eq!(report.observation.dispatch.rate_merge_rejected, 0);

    let first = *fold_bytes.first().expect("at least one checkpoint");
    assert!(first > 0, "global fold hub never materialized");
    for (i, b) in fold_bytes.iter().enumerate() {
        assert_eq!(
            *b, first,
            "fold-plane bytes moved at checkpoint {i}: {first} -> {b}"
        );
        assert!(
            *b < RATE_BYTES_CAP,
            "fold-plane bytes {b} broke the {RATE_BYTES_CAP} cap"
        );
    }
    // The per-shard tracker constancy gate still holds under sharding:
    // worker hubs re-create their delta twins on every fold, so the
    // summed per-shard footprint must not drift either.
    assert!(report.observation.gauges.rate_bytes > 0);
    assert!(report.observation.gauges.rate_bytes < 4 * RATE_BYTES_CAP);
}

/// The same soak shape in exact mode at a fixed small scale: the
/// reference keeps per-key windows, so its state is *not* constant —
/// but the shadow sketches must track it (divergence telemetry runs)
/// and the alert behavior must stay identical (none).
#[test]
fn soak_exact_mode_shadow_divergence_stays_zero() {
    let synth = SynthConfig::load(1_500, 128);
    let config = ScidiveConfig {
        exact_rate_state: true,
        ..ScidiveConfig::default()
    };
    let mut ids = Scidive::new(config);
    for (time, pkt) in synth.stream() {
        ids.on_frame(time, &pkt);
    }
    assert!(ids.alerts().is_empty());
    let g = ids.gauges();
    assert!(
        g.rate_divergence_samples > 0,
        "exact mode should shadow-compare against the sketches"
    );
    // Benign churn keeps every window tiny (2-3 entries), where the
    // sliding-window sketch is exact: zero divergence end to end.
    assert_eq!(
        g.rate_divergence_max, 0,
        "sketch diverged from exact windows under benign load (sum {})",
        g.rate_divergence_sum
    );
}

/// Hot reload under sustained load: swap the ruleset every ~6% of the
/// stream (alternating built-in ↔ built-in + an operator sequence rule)
/// and require that nothing observable changes — alerts, pipeline
/// counters, and session-state gauges all match the never-swapped
/// baseline, the per-session gauges still plateau (adopted state keeps
/// expiring), and the generation gauge climbs one step per swap.
#[test]
fn soak_swap_every_n_dialogs_preserves_state() {
    const OP_DSL: &str = "rule op-teardown severity critical window 2s {\n\
                          \tsequence CallTornDown, OrphanRtpAfterBye\n\
                          }\n";
    let mut synth = SynthConfig::load(2_000, 256);
    synth.spacing = SimDuration::from_millis(10);
    synth.hold = SimDuration::from_millis(10 * 256);
    let span = synth.span();
    let window = SimDuration::from_micros((span.as_micros() / 16).max(2_000_000));
    let mut config = ScidiveConfig {
        exact_rate_state: false,
        ..ScidiveConfig::default()
    };
    config.trails.idle_timeout = window;
    config.events.identity_timeout = window;
    config.events.session_timeout = window;

    let mut base = ShardedScidive::new(config.clone(), 4, 64);
    for (time, pkt) in synth.stream() {
        base.submit(time, &pkt);
    }
    let baseline = base.finish();
    assert!(baseline.alerts.is_empty(), "baseline load is not benign");

    let sources = [
        RulesetSource::Dsl(OP_DSL.to_string()),
        RulesetSource::Builtin,
    ];
    let mut ids = ShardedScidive::new(config, 4, 64);
    let total = synth.total_frames();
    let swap_every = (total / 16).max(1);
    let checkpoint_every = (total / 8).max(1);
    let mut swaps = 0u64;
    let mut generations = Vec::new();
    let mut gauges = Vec::new();
    for (n, (time, pkt)) in synth.stream().enumerate() {
        if n > 0 && (n as u64).is_multiple_of(swap_every) {
            let gen = ids
                .swap_ruleset(&sources[swaps as usize % 2])
                .expect("swap source compiles");
            swaps += 1;
            assert_eq!(gen, swaps, "generation must climb one step per swap");
            generations.push(gen);
        }
        ids.submit(time, &pkt);
        if (n as u64 + 1).is_multiple_of(checkpoint_every) {
            gauges.push(ids.observation().gauges);
        }
    }
    let report = ids.finish();

    assert!(swaps >= 8, "load too small to exercise repeated swaps");
    assert!(generations.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(report.observation.dispatch.ruleset_swaps, swaps);
    assert_eq!(report.observation.dispatch.ruleset_compile_errors, 0);
    assert_eq!(report.observation.gauges.ruleset_generation, swaps);

    // Nothing observable may change: same (empty) alert stream, same
    // counters, same retained session state as the never-swapped run.
    assert_eq!(report.alerts, baseline.alerts);
    assert_eq!(report.stats, baseline.stats);
    assert_eq!(report.observation.gauges.trails, baseline.observation.gauges.trails);
    assert_eq!(
        report.observation.gauges.session_plane,
        baseline.observation.gauges.session_plane
    );
    assert_eq!(
        report.observation.gauges.expired_trails,
        baseline.observation.gauges.expired_trails
    );

    // The per-session gauges still plateau with swaps in the loop: the
    // second half of the run leaves no more state behind than its
    // middle, so adopted rule state keeps flowing through expiry.
    let last = gauges.last().expect("checkpoints");
    let mid = &gauges[gauges.len() / 2..gauges.len() - 1];
    for (name, f) in [
        ("trails", (|g| g.trails) as fn(&StateGauges) -> u64),
        ("session_plane", |g| g.session_plane),
        ("rule_state", |g| g.rule_state),
    ] {
        let peak = mid.iter().map(f).max().unwrap_or(0);
        let cap = peak + peak / 10 + 64;
        assert!(
            f(last) <= cap,
            "{name} kept growing across swaps: final {} vs mid-run cap {cap}",
            f(last)
        );
    }
}
