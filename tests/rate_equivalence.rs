//! Differential tests for the rate-primitive rewiring: replay the same
//! capture through the exact reference (`exact_rate_state = true`, the
//! default — per-key timestamp windows) and through the sketch mode
//! (`exact_rate_state = false` — constant-memory count-min /
//! sliding-window / distinct estimators), single engine and sharded at
//! 1/2/4, and require **byte-identical** alert streams.
//!
//! Swapping the rate representation may only change *how* flood and
//! fan-out counts are stored — never whether a threshold trips on these
//! captures — so every scenario that fires in exact mode must fire
//! identically in sketch mode, and benign traffic must stay silent in
//! both.

use scidive::prelude::*;

fn config_for(ep: &Endpoints, exact: bool) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.exact_rate_state = exact;
    config
}

/// Builds a testbed (customized by `shape`), taps the hub, optionally
/// injects an attacker, and runs for `run`.
fn capture_scenario(
    seed: u64,
    shape: impl FnOnce(TestbedBuilder) -> TestbedBuilder,
    attacker: Option<Box<dyn Node>>,
    run: SimDuration,
) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = shape(TestbedBuilder::new(seed)).build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if let Some(node) = attacker {
        tb.add_node("attacker", ep.attacker_ip, LinkParams::lan(), node);
    }
    tb.run_for(run);
    let frames = tap.borrow().clone();
    (frames, ep)
}

/// Replays `frames` through the exact reference and the sketch mode —
/// single engine, then both modes sharded at 1/2/4 — asserting
/// identical alert streams everywhere. Returns the reference alerts for
/// scenario assertions.
fn assert_rate_equivalence(frames: &[CapturedFrame], ep: &Endpoints) -> Vec<Alert> {
    let mut exact = Scidive::new(config_for(ep, true));
    for f in frames {
        exact.on_frame(f.time, &f.packet);
    }

    let mut sketch = Scidive::new(config_for(ep, false));
    for f in frames {
        sketch.on_frame(f.time, &f.packet);
    }
    assert_eq!(
        sketch.alerts(),
        exact.alerts(),
        "sketch-mode alerts diverged from the exact reference"
    );
    assert_eq!(sketch.stats(), exact.stats());
    // Mode telemetry: the reference shadow-feeds the sketches and
    // records divergence samples; sketch mode runs no comparisons.
    assert_eq!(sketch.gauges().rate_divergence_samples, 0);

    for shards in [1usize, 2, 4] {
        for mode_exact in [true, false] {
            let mut sharded = ShardedScidive::new(config_for(ep, mode_exact), shards, 64);
            for f in frames {
                sharded.submit(f.time, &f.packet);
            }
            let report = sharded.finish();
            assert_eq!(
                report.alerts,
                exact.alerts(),
                "sharded run (exact={mode_exact}) diverged at {shards} shards"
            );
            assert_eq!(
                report.stats,
                exact.stats(),
                "counters (exact={mode_exact}) diverged at {shards} shards"
            );
        }
    }
    exact.alerts().to_vec()
}

#[test]
fn benign_call_is_silent_in_both_modes() {
    let (frames, ep) = capture_scenario(
        711,
        |tb| tb.standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(3))),
        None,
        SimDuration::from_secs(5),
    );
    assert!(frames.len() > 100, "capture too small: {}", frames.len());
    let alerts = assert_rate_equivalence(&frames, &ep);
    assert!(alerts.is_empty(), "benign capture alarmed: {alerts:?}");
}

#[test]
fn register_flood_fires_identically_in_both_modes() {
    let ep0 = Endpoints::default();
    let (frames, ep) = capture_scenario(
        712,
        |tb| {
            tb.with_auth(&[("alice", "pw-a"), ("bob", "pw-b")]).a_script(vec![
                ScriptStep::new(SimDuration::from_millis(10), UaAction::Register),
            ])
        },
        Some(Box::new(RegisterFlooder::new(RegisterDosConfig::new(
            ep0.attacker_ip,
            ep0.proxy_ip,
            SimDuration::from_millis(500),
        )))),
        SimDuration::from_secs(10),
    );
    let alerts = assert_rate_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "register-dos"),
        "REGISTER flood missing: {alerts:?}"
    );
    // The benign client's single challenge round-trip stays unflagged.
    assert!(!alerts.iter().any(|a| a.rule == "password-guess"));
}

#[test]
fn password_guess_fires_identically_in_both_modes() {
    let ep0 = Endpoints::default();
    let (frames, ep) = capture_scenario(
        713,
        |tb| tb.with_auth(&[("alice", "super-secret")]),
        Some(Box::new(PasswordGuesser::new(PasswordGuessConfig::new(
            ep0.attacker_ip,
            ep0.proxy_ip,
            SimDuration::from_millis(500),
            10,
        )))),
        SimDuration::from_secs(10),
    );
    let alerts = assert_rate_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "password-guess"),
        "password guessing missing: {alerts:?}"
    );
}

#[test]
fn non_rate_rules_are_untouched_by_the_mode_switch() {
    // A cross-protocol BYE attack exercises rules that never consult
    // the rate hub; the mode flag must be completely inert for them.
    let ep0 = Endpoints::default();
    let (frames, ep) = capture_scenario(
        714,
        |tb| tb.standard_call(SimDuration::from_millis(500), None),
        Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep0.attacker_ip,
            ep0.a_ip,
            ep0.b_ip,
            SimDuration::from_secs(1),
        )))),
        SimDuration::from_secs(5),
    );
    let alerts = assert_rate_equivalence(&frames, &ep);
    assert!(
        alerts.iter().any(|a| a.rule == "bye-attack"),
        "cross-protocol BYE detection missing: {alerts:?}"
    );
}

/// Builds the synthetic fan-out capture: one caller establishing
/// `calls` calls to distinct callees, 100ms apart, each with its own
/// Call-ID so the shard router spreads the dialogs across every shard.
fn fanout_capture(calls: u64) -> Vec<(SimTime, IpPacket)> {
    let caller_ip = std::net::Ipv4Addr::new(10, 0, 0, 40);
    let proxy_ip = std::net::Ipv4Addr::new(10, 0, 0, 1);
    let mut frames = Vec::new();
    for n in 0..calls {
        let at = SimTime::from_millis(100 * n);
        let callee = format!("sip:victim-{n}@lab");
        let mut b = RequestBuilder::new(Method::Invite, callee.parse().unwrap());
        b.from(NameAddr::new("sip:spammer@lab".parse().unwrap()).with_tag("spam"))
            .to(NameAddr::new(callee.parse().unwrap()))
            .call_id(format!("fan-{n}@lab"))
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.40:5060", format!("z9hG4bK-fan-{n}")));
        let invite = b.build();
        frames.push((
            at,
            IpPacket::udp(caller_ip, 5060, proxy_ip, 5060, invite.to_bytes().as_ref()),
        ));
        let ok = response_to(&invite, StatusCode::OK, Some(&format!("vt-{n}")));
        frames.push((
            at + SimDuration::from_millis(10),
            IpPacket::udp(proxy_ip, 5060, caller_ip, 5060, ok.to_bytes().as_ref()),
        ));
    }
    frames
}

fn run_sharded_fanout(
    frames: &[(SimTime, IpPacket)],
    exact: bool,
    shards: usize,
    fold: bool,
) -> ShardedReport {
    let mut config = ScidiveConfig {
        exact_rate_state: exact,
        ..ScidiveConfig::default()
    };
    config.fold.enabled = fold;
    let mut ids = ShardedScidive::new(config, shards, 64);
    for (t, p) in frames {
        ids.submit(*t, p);
    }
    ids.finish()
}

/// One caller fanning out calls to 14 distinct callees inside the
/// 60-second window: the rapid-connect rule must fire exactly once, and
/// identically, in both modes. Single engine here; the sharded pipeline
/// evaluates this clause on the dispatcher's global fold plane — see
/// `rapid_connect_fanout_is_shard_count_invariant` below.
#[test]
fn rapid_connect_fanout_fires_identically_in_both_modes() {
    let frames = fanout_capture(14);

    let run = |exact: bool| {
        let config = ScidiveConfig {
            exact_rate_state: exact,
            ..ScidiveConfig::default()
        };
        let mut ids = Scidive::new(config);
        for (t, p) in &frames {
            ids.on_frame(*t, p);
        }
        ids.alerts().to_vec()
    };
    let exact_alerts = run(true);
    let sketch_alerts = run(false);
    assert_eq!(
        sketch_alerts, exact_alerts,
        "rapid-connect diverged between modes"
    );
    assert_eq!(
        exact_alerts
            .iter()
            .filter(|a| a.rule == "rapid-connect")
            .count(),
        1,
        "fan-out should fire rapid-connect exactly once: {exact_alerts:?}"
    );
}

/// The tentpole invariant: a flood whose dialogs hash across every
/// shard produces a byte-identical alert stream at 1, 2 and 4 shards,
/// in exact and sketch modes alike. The rapid-connect clause is
/// evaluated against the dispatcher's *global* fold plane, so per-shard
/// slices of the caller's fan-out (3–4 calls each at 4 shards, far
/// below the 12-attempt threshold) cannot suppress the alert.
#[test]
fn rapid_connect_fanout_is_shard_count_invariant() {
    let frames = fanout_capture(14);
    let reference = run_sharded_fanout(&frames, true, 1, true);
    assert_eq!(
        reference
            .alerts
            .iter()
            .filter(|a| a.rule == "rapid-connect")
            .count(),
        1,
        "fold plane should fire rapid-connect exactly once: {:?}",
        reference.alerts
    );
    for shards in [1usize, 2, 4] {
        for exact in [true, false] {
            let report = run_sharded_fanout(&frames, exact, shards, true);
            assert_eq!(
                report.alerts, reference.alerts,
                "fold-plane alerts diverged at {shards} shards (exact={exact})"
            );
            assert_eq!(
                report.stats, reference.stats,
                "pipeline stats diverged at {shards} shards (exact={exact})"
            );
        }
    }
}

/// Pins the pre-fold failure mode: with the fold plane disabled, each
/// worker evaluates rapid-connect against only its own slice of the
/// caller's dialogs. One shard sees everything and fires; four shards
/// each stay sub-threshold and the flood sails through silently. This
/// is the regression the global fold exists to close — the test fails
/// (4 shards would alert) only if per-shard evaluation were global.
#[test]
fn per_shard_slices_miss_the_flood_without_the_fold() {
    let frames = fanout_capture(14);
    for exact in [true, false] {
        let one = run_sharded_fanout(&frames, exact, 1, false);
        assert_eq!(
            one.alerts
                .iter()
                .filter(|a| a.rule == "rapid-connect")
                .count(),
            1,
            "1-shard run without the fold still sees the whole stream (exact={exact})"
        );
        let four = run_sharded_fanout(&frames, exact, 4, false);
        assert!(
            !four.alerts.iter().any(|a| a.rule == "rapid-connect"),
            "per-shard slices crossed the threshold unexpectedly (exact={exact}): {:?}",
            four.alerts
        );
    }
}
