//! SCIDIVE vs. the Snort-like stateless baseline over identical
//! captures: the paper's §5 comparison (no UDP session awareness, no
//! reassembly) made concrete.

use scidive::prelude::*;

/// Captures all frames of a scenario.
fn capture_scenario(seed: u64, attack: bool) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if attack {
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(ByeAttacker::new(ByeAttackConfig::new(
                ep.attacker_ip,
                ep.a_ip,
                ep.b_ip,
                SimDuration::from_secs(1),
            ))),
        );
    }
    tb.run_for(SimDuration::from_secs(4));
    let frames = tap.borrow().clone();
    (frames, ep)
}

#[test]
fn baseline_cannot_see_the_bye_attack() {
    let (frames, ep) = capture_scenario(401, true);

    // SCIDIVE detects it.
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut scidive = Scidive::new(config);
    for f in &frames {
        scidive.on_frame(f.time, &f.packet);
    }
    assert!(scidive.alerts().iter().any(|a| a.rule == "bye-attack"));

    // The baseline sees every frame too — but per-packet signatures have
    // nothing to key on: the forged BYE is byte-for-byte a valid BYE,
    // and the orphan RTP is byte-for-byte valid RTP. Even a paranoid
    // "alert on BYE" rule fires equally on every legitimate hangup.
    let mut baseline = SnortLike::new(vec![Signature::Payload {
        id: "snort-bye-seen".to_string(),
        pattern: b"BYE sip:".to_vec(),
        severity: Severity::Warning,
    }]);
    for f in &frames {
        baseline.on_frame(f.time, &f.packet);
    }
    // It "fires" (the BYE is visible)...
    assert!(!baseline.alerts().is_empty());
    // ...but the identical rule fires on a benign capture as well: the
    // baseline cannot distinguish attack from hangup.
    let (benign_frames, _) = capture_scenario(402, false);
    let mut tb = TestbedBuilder::new(402)
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(2)))
        .build();
    tb.run_for(SimDuration::from_secs(3));
    let mut baseline_benign = SnortLike::new(vec![Signature::Payload {
        id: "snort-bye-seen".to_string(),
        pattern: b"BYE sip:".to_vec(),
        severity: Severity::Warning,
    }]);
    for rec in tb.sim.trace().records() {
        baseline_benign.on_frame(rec.time, &rec.packet);
    }
    assert!(
        !baseline_benign.alerts().is_empty(),
        "the stateless BYE signature cannot help but fire on benign hangups"
    );
    drop(benign_frames);
}

#[test]
fn fragmented_signature_beats_baseline_but_not_scidive() {
    // A "signature" split across IP fragments: SCIDIVE's Distiller
    // reassembles; the baseline matches per-packet and misses.
    use scidive::netsim::frag::fragment;
    use scidive::netsim::packet::IpPacket;
    use std::net::Ipv4Addr;

    // A malformed SIP message whose tell-tale header starts beyond the
    // first fragment.
    let mut body = String::new();
    for i in 0..30 {
        body.push_str(&format!("a=filler-line-number-{i:04}\r\n"));
    }
    let raw = format!(
        "INVITE sip:bob@lab SIP/2.0\r\nCall-ID: frag-attack\r\nX-Evil-Marker: EVILSTRING\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let pkt = IpPacket::udp(
        Ipv4Addr::new(10, 0, 0, 66),
        5060,
        Ipv4Addr::new(10, 0, 0, 1),
        5060,
        raw.into_bytes(),
    )
    .with_id(1234);
    let frags = fragment(&pkt, 64);
    assert!(frags.len() > 4);

    let mut baseline = SnortLike::new(vec![Signature::Payload {
        id: "snort-evil".to_string(),
        pattern: b"X-Evil-Marker: EVILSTRING".to_vec(),
        severity: Severity::Critical,
    }]);
    let mut scidive = Scidive::new(ScidiveConfig::default());
    for (i, f) in frags.iter().enumerate() {
        baseline.on_frame(SimTime::from_millis(i as u64), f);
        scidive.on_frame(SimTime::from_millis(i as u64), f);
    }
    assert!(
        baseline.alerts().is_empty(),
        "the split marker must evade per-packet matching"
    );
    // SCIDIVE reassembled the message: one SIP footprint exists (it even
    // parses, since the message is well-framed).
    assert_eq!(scidive.distill_stats().reassembled, 1);
    assert_eq!(scidive.stats().footprints, 1);
}

#[test]
fn both_catch_the_register_flood_but_only_scidive_attributes_it() {
    let mut tb = TestbedBuilder::new(403)
        .with_auth(&[("alice", "pw")])
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RegisterFlooder::new(RegisterDosConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(200),
        ))),
    );
    tb.run_for(SimDuration::from_secs(8));
    let frames = tap.borrow().clone();

    let mut scidive = Scidive::new(ScidiveConfig::default());
    let mut baseline = SnortLike::voip_ruleset(10, SimDuration::from_secs(10));
    for f in &frames {
        scidive.on_frame(f.time, &f.packet);
        baseline.on_frame(f.time, &f.packet);
    }
    let scidive_alert = scidive
        .alerts()
        .iter()
        .find(|a| a.rule == "register-dos")
        .expect("scidive detects the flood");
    assert!(
        scidive_alert.message.contains("10.0.0.66"),
        "scidive names the source: {}",
        scidive_alert.message
    );
    let baseline_alert = baseline
        .alerts()
        .iter()
        .find(|a| a.rule == "snort-register-burst")
        .expect("baseline also detects the burst");
    assert!(
        !baseline_alert.message.contains("10.0.0.66"),
        "the stateless baseline cannot attribute the flood to a source"
    );
}
