//! Hot-reload gates for `swap_ruleset`: the swap barrier lands at a
//! deterministic frame boundary on every shard, identity swaps are
//! invisible (all rule state is adopted across the install), new rules
//! see only post-boundary events, and a failed compile leaves the
//! running ruleset untouched.

use scidive::prelude::*;

/// The operator rule used as the "new" ruleset in swap scenarios.
const OP_DSL: &str = "rule op-teardown severity critical window 2s {\n\
                      \tsequence CallTornDown, OrphanRtpAfterBye\n\
                      }\n";

fn config_for(ep: &Endpoints, exact: bool) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.exact_rate_state = exact;
    config
}

/// Fig-4 testbed with one standard call and a forged-BYE attacker: the
/// BYE lands at ~1s, orphan media follows from ~1.5s — a capture whose
/// cross-protocol sequence straddles any mid-run swap boundary.
fn bye_capture(seed: u64) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    (frames, ep)
}

/// First frame index at or past `at` — the swap lands before it.
fn boundary_at(frames: &[CapturedFrame], at: SimDuration) -> usize {
    frames
        .iter()
        .position(|f| f.time >= SimTime::ZERO + at)
        .unwrap_or(frames.len())
}

/// Runs the sharded pipeline, optionally swapping to `swap_to` right
/// before frame index `boundary`.
fn run_sharded(
    config: &ScidiveConfig,
    shards: usize,
    frames: &[CapturedFrame],
    swap: Option<(usize, &RulesetSource)>,
) -> ShardedReport {
    let mut ids = ShardedScidive::new(config.clone(), shards, 64);
    for (i, f) in frames.iter().enumerate() {
        if let Some((boundary, source)) = swap {
            if i == boundary {
                ids.swap_ruleset(source).expect("swap source compiles");
            }
        }
        ids.submit(f.time, &f.packet);
    }
    ids.finish()
}

/// Swapping to the ruleset that is already installed must be invisible:
/// every rule instance is adopted (id + state signature match), so the
/// alert stream, counters, and session state are byte-identical to a
/// run that never swapped — at every shard count, in both rate modes.
#[test]
fn identity_swap_is_invisible() {
    let (frames, ep) = bye_capture(901);
    let mid = frames.len() / 2;
    for exact in [true, false] {
        let config = config_for(&ep, exact);
        for shards in [1usize, 2, 4] {
            let baseline = run_sharded(&config, shards, &frames, None);
            let swapped = run_sharded(
                &config,
                shards,
                &frames,
                Some((mid, &RulesetSource::Builtin)),
            );
            assert_eq!(
                swapped.alerts, baseline.alerts,
                "identity swap changed alerts at {shards} shards (exact={exact})"
            );
            assert_eq!(
                swapped.stats, baseline.stats,
                "identity swap changed counters at {shards} shards (exact={exact})"
            );
            assert!(
                baseline.alerts.iter().any(|a| a.rule == "bye-attack"),
                "capture lost its attack (exact={exact})"
            );
            // Swap telemetry: generation bumped once, no compile errors.
            assert_eq!(swapped.observation.gauges.ruleset_generation, 1);
            assert_eq!(swapped.observation.dispatch.ruleset_swaps, 1);
            assert_eq!(swapped.observation.dispatch.ruleset_compile_errors, 0);
            assert_eq!(baseline.observation.gauges.ruleset_generation, 0);
            assert_eq!(baseline.observation.dispatch.ruleset_swaps, 0);
        }
    }
}

/// The swap barrier is a deterministic frame boundary: swapping to a
/// new ruleset mid-run yields the same alert stream at 1, 2, and 4
/// shards — and matches a single engine swapped at the same frame
/// index, so the boundary semantics are venue-independent.
#[test]
fn swap_boundary_is_deterministic_across_shard_counts() {
    let (frames, ep) = bye_capture(902);
    // Before the attack begins: the whole op-teardown sequence plays
    // out under the new ruleset.
    let boundary = boundary_at(&frames, SimDuration::from_millis(500));
    let source = RulesetSource::Dsl(OP_DSL.to_string());
    let config = config_for(&ep, true);

    // Single-engine reference: same config, swapped at the same index.
    let mut single = Scidive::new(config.clone());
    let mut swap_config = config.clone();
    swap_config.ruleset = source.clone();
    let blueprint = swap_config.blueprint().expect("swap source compiles");
    for (i, f) in frames.iter().enumerate() {
        if i == boundary {
            single.swap_ruleset(&blueprint);
        }
        single.on_frame(f.time, &f.packet);
    }
    assert!(
        single.alerts().iter().any(|a| a.rule == "op-teardown"),
        "swapped-in rule never fired: {:?}",
        single.alerts()
    );

    for shards in [1usize, 2, 4] {
        let report = run_sharded(&config, shards, &frames, Some((boundary, &source)));
        assert_eq!(
            report.alerts,
            single.alerts(),
            "swap boundary drifted at {shards} shards"
        );
        assert_eq!(report.stats, single.stats());
        assert_eq!(report.observation.gauges.ruleset_generation, 1);
        assert_eq!(report.observation.dispatch.ruleset_swaps, 1);
    }
}

/// A swapped-in rule starts from empty state at the boundary: if the
/// first step of its sequence fired before the swap, the rule must NOT
/// fire afterwards — no retroactive matching against pre-swap events.
#[test]
fn swapped_in_rule_sees_only_post_boundary_events() {
    let (frames, ep) = bye_capture(903);
    let source = RulesetSource::Dsl(OP_DSL.to_string());
    let config = config_for(&ep, true);

    // From-start reference proves the capture does fire the rule.
    let mut from_start = config.clone();
    from_start.ruleset = source.clone();
    let reference = run_sharded(&from_start, 2, &frames, None);
    assert!(
        reference.alerts.iter().any(|a| a.rule == "op-teardown"),
        "capture cannot fire the operator rule at all"
    );

    // Swap after the teardown AND the orphan media already happened:
    // the fresh rule instance never sees step 1, so it stays silent.
    let late = boundary_at(&frames, SimDuration::from_millis(2_500));
    for shards in [1usize, 2, 4] {
        let report = run_sharded(&config, shards, &frames, Some((late, &source)));
        assert!(
            !report.alerts.iter().any(|a| a.rule == "op-teardown"),
            "swapped-in rule matched pre-swap state at {shards} shards: {:?}",
            report.alerts
        );
        // The builtins it adopted keep their pre-swap detections.
        assert!(report.alerts.iter().any(|a| a.rule == "bye-attack"));
    }
}

/// Mid-sequence state survives an identity swap: step 1 of the operator
/// sequence (the teardown, ~1s) lands before the swap, step 2 (orphan
/// media, ~1.5s) after — the adopted instance must still fire, and the
/// whole stream must equal the never-swapped run.
#[test]
fn sequence_state_is_adopted_across_an_identity_swap() {
    let (frames, ep) = bye_capture(904);
    let source = RulesetSource::Dsl(OP_DSL.to_string());
    let mut config = config_for(&ep, true);
    config.ruleset = source.clone();
    // Between the forged BYE (1s) and the orphan media (~1.5s).
    let mid = boundary_at(&frames, SimDuration::from_millis(1_250));

    for shards in [1usize, 2, 4] {
        let baseline = run_sharded(&config, shards, &frames, None);
        assert!(
            baseline.alerts.iter().any(|a| a.rule == "op-teardown"),
            "sequence never fires even without a swap"
        );
        let swapped = run_sharded(&config, shards, &frames, Some((mid, &source)));
        assert_eq!(
            swapped.alerts, baseline.alerts,
            "identity swap dropped mid-sequence state at {shards} shards"
        );
        assert_eq!(swapped.stats, baseline.stats);
    }

    // Single engine: the adoption is total — every rule instance moves.
    let mut single = Scidive::new(config.clone());
    let blueprint = config.blueprint().expect("source compiles");
    let total_rules = blueprint
        .build(false, config.trails.idle_timeout)
        .rule_evals()
        .len();
    let adopted = single.swap_ruleset(&blueprint);
    assert_eq!(
        adopted, total_rules,
        "every builtin and DSL rule should be adoptable"
    );
}

/// A swap whose program does not compile must leave the running
/// ruleset untouched: the error surfaces to the caller, the
/// compile-error counter ticks, and detection continues unchanged.
#[test]
fn failed_swap_leaves_the_pipeline_untouched() {
    let (frames, ep) = bye_capture(905);
    let config = config_for(&ep, true);
    let mid = frames.len() / 2;
    let baseline = run_sharded(&config, 2, &frames, None);

    let mut ids = ShardedScidive::new(config, 2, 64);
    for (i, f) in frames.iter().enumerate() {
        if i == mid {
            let bad = RulesetSource::Dsl("rule broken { sequence NotAClass }".to_string());
            let err = ids.swap_ruleset(&bad).expect_err("bogus program compiled");
            assert!(err.message.contains("unknown event class"), "{err:?}");
        }
        ids.submit(f.time, &f.packet);
    }
    let report = ids.finish();
    assert_eq!(report.alerts, baseline.alerts);
    assert_eq!(report.stats, baseline.stats);
    assert_eq!(report.observation.dispatch.ruleset_compile_errors, 1);
    assert_eq!(report.observation.dispatch.ruleset_swaps, 0);
    assert_eq!(report.observation.gauges.ruleset_generation, 0);
}
