//! End-to-end detection of the paper's four implemented attacks
//! (Table 1) plus the two §3.3 scenarios and §3.2 billing fraud:
//! testbed + attacker + endpoint IDS on the hub, in virtual time.

use scidive::prelude::*;

/// Deploys an IDS tap configured with the testbed's infrastructure IPs.
fn deploy_ids(tb: &mut Testbed) -> scidive::netsim::node::NodeId {
    let ep = tb.endpoints.clone();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    )
}

fn alerts_of(tb: &Testbed, ids: scidive::netsim::node::NodeId) -> Vec<Alert> {
    tb.sim
        .node_as::<IdsNode>(ids)
        .expect("ids node")
        .ids()
        .alerts()
        .to_vec()
}

fn critical_rules(alerts: &[Alert]) -> Vec<&str> {
    alerts
        .iter()
        .filter(|a| a.severity == Severity::Critical)
        .map(|a| a.rule.as_str())
        .collect()
}

#[test]
fn bye_attack_detected_with_small_delay() {
    let mut tb = TestbedBuilder::new(101)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));

    let alerts = alerts_of(&tb, ids);
    let fired_at = tb
        .sim
        .node_as::<ByeAttacker>(attacker)
        .unwrap()
        .fired_at
        .expect("attack fired");
    let report = DetectionReport::evaluate(
        &alerts,
        &[InjectedAttack::new("bye-attack", fired_at)],
    );
    assert_eq!(report.detected_count(), 1, "alerts: {alerts:?}");
    // §4.3.1: detection happens within roughly one RTP period plus
    // network delays — tens of milliseconds, not seconds.
    let delay = report.outcomes[0].delay().unwrap();
    assert!(
        delay <= SimDuration::from_millis(100),
        "detection delay {delay}"
    );
    assert!(report.false_alarms.is_empty(), "{:?}", report.false_alarms);
}

#[test]
fn call_hijack_detected() {
    let mut tb = TestbedBuilder::new(102)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(Hijacker::new(HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));

    let alerts = alerts_of(&tb, ids);
    let fired_at = tb
        .sim
        .node_as::<Hijacker>(attacker)
        .unwrap()
        .fired_at
        .expect("attack fired");
    let report = DetectionReport::evaluate(
        &alerts,
        &[InjectedAttack::new("call-hijack", fired_at)],
    );
    assert_eq!(report.detected_count(), 1, "alerts: {alerts:?}");
    assert!(report.outcomes[0].delay().unwrap() <= SimDuration::from_millis(100));
}

#[test]
fn fake_im_detected_and_spoofed_variant_evades() {
    // Unspoofed: detected.
    let mut tb = TestbedBuilder::new(103)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(FakeImConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(500),
        ))),
    );
    tb.run_for(SimDuration::from_secs(2));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"fake-im"),
        "alerts: {alerts:?}"
    );

    // Spoofed source: the endpoint rule cannot tell (paper's concession).
    let mut tb = TestbedBuilder::new(104)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    let mut cfg = FakeImConfig::new(
        ep.attacker_ip,
        ep.a_ip,
        ep.b_ip,
        SimDuration::from_millis(500),
    );
    cfg.spoof_ip = true;
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(cfg)),
    );
    tb.run_for(SimDuration::from_secs(2));
    let alerts = alerts_of(&tb, ids);
    assert!(
        !critical_rules(&alerts).contains(&"fake-im"),
        "spoofed fake IM should evade the endpoint rule: {alerts:?}"
    );
}

#[test]
fn rtp_garbage_attack_detected() {
    let mut tb = TestbedBuilder::new(105)
        .standard_call(SimDuration::from_millis(500), None)
        .a_fragile(5)
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RtpFlooder::new(RtpFloodConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"rtp-attack"),
        "alerts: {alerts:?}"
    );
    // The victim crashed (X-Lite behaviour) — and the IDS saw the attack.
    assert!(tb.ua(tb.a).unwrap().is_crashed());
}

#[test]
fn rtp_wild_seq_attack_detected() {
    let mut tb = TestbedBuilder::new(106)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    let mut cfg = RtpFloodConfig::new(ep.attacker_ip, ep.a_ip, SimDuration::from_secs(1));
    cfg.mode = FloodMode::WildSeq;
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RtpFlooder::new(cfg)),
    );
    tb.run_for(SimDuration::from_secs(5));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"rtp-attack"),
        "alerts: {alerts:?}"
    );
}

#[test]
fn register_dos_detected() {
    let mut tb = TestbedBuilder::new(107)
        .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RegisterFlooder::new(RegisterDosConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        ))),
    );
    tb.run_for(SimDuration::from_secs(10));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"register-dos"),
        "alerts: {alerts:?}"
    );
    // The benign client's one challenge round-trip is not flagged.
    assert!(!critical_rules(&alerts).contains(&"password-guess"));
}

#[test]
fn password_guessing_detected() {
    let mut tb = TestbedBuilder::new(108)
        .with_auth(&[("alice", "super-secret")])
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(PasswordGuesser::new(PasswordGuessConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
            10,
        ))),
    );
    tb.run_for(SimDuration::from_secs(10));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"password-guess"),
        "alerts: {alerts:?}"
    );
}

#[test]
fn billing_fraud_detected_cross_protocol() {
    let mut tb = TestbedBuilder::new(109)
        .with_billing_vuln()
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(BillingFraudster::new(BillingFraudConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        ))),
    );
    tb.run_for(SimDuration::from_secs(6));
    let alerts = alerts_of(&tb, ids);
    assert!(
        critical_rules(&alerts).contains(&"billing-fraud"),
        "alerts: {alerts:?}"
    );
    // Ground truth: the victim really was billed.
    assert_eq!(tb.cdrs()[0].caller, "alice@lab");
}

#[test]
fn forged_rtcp_bye_detected_via_rtcp_trail() {
    // Extension attack: the RTCP teardown forgery — same orphan
    // structure as the SIP BYE attack, one protocol further down the
    // paper's SIP→RTP→RTCP chain.
    let mut tb = TestbedBuilder::new(110)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let ids = deploy_ids(&mut tb);
    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RtcpByeForger::new(RtcpByeConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(800),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));
    let alerts = alerts_of(&tb, ids);
    let fired_at = tb
        .sim
        .node_as::<RtcpByeForger>(attacker)
        .unwrap()
        .fired_at
        .expect("attack fired");
    let report = DetectionReport::evaluate(
        &alerts,
        &[InjectedAttack::new("rtcp-bye-anomaly", fired_at)],
    );
    assert_eq!(report.detected_count(), 1, "alerts: {alerts:?}");
    // Detection within roughly one RTP period, like the SIP BYE attack.
    assert!(report.outcomes[0].delay().unwrap() <= SimDuration::from_millis(100));
    assert!(report.false_alarms.is_empty(), "{:?}", report.false_alarms);
}

#[test]
fn benign_teardown_rtcp_byes_do_not_alarm() {
    // Legitimate hangups now emit real RTCP BYEs; the rtcp-bye-anomaly
    // rule must stay quiet on them.
    for seed in [111u64, 112, 113] {
        let mut tb = TestbedBuilder::new(seed)
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_secs(3)),
            )
            .build();
        let ids = deploy_ids(&mut tb);
        tb.run_for(SimDuration::from_secs(5));
        let alerts = alerts_of(&tb, ids);
        assert!(
            alerts
                .iter()
                .all(|a| a.severity != Severity::Critical),
            "seed {seed}: {alerts:?}"
        );
    }
}
