//! Chaos robustness: a node spraying random bytes at every port of every
//! host while a call proceeds. Nothing may panic, the call must
//! complete, and the IDS must keep its accounting straight.

use rand::RngCore;
use scidive::prelude::*;
use std::any::Any;

/// Sprays random UDP at random hosts/ports every few ms.
struct ChaosMonkey {
    targets: Vec<std::net::Ipv4Addr>,
    shots: u32,
    max_shots: u32,
}

impl Node for ChaosMonkey {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(600), 1);
    }
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: IpPacket) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if self.shots >= self.max_shots {
            return;
        }
        self.shots += 1;
        let target = self.targets[(ctx.rng().range(0, self.targets.len() as u64)) as usize];
        let port = ctx.rng().range(1, 65535) as u16;
        let len = ctx.rng().range(0, 300) as usize;
        let mut payload = vec![0u8; len];
        ctx.rng().fill_bytes(&mut payload);
        ctx.send_udp(4999, target, port, payload);
        ctx.set_timer(SimDuration::from_millis(5), 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn call_and_ids_survive_random_byte_spray() {
    for seed in [901u64, 902, 903] {
        let mut tb = TestbedBuilder::new(seed)
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_secs(4)),
            )
            .build();
        let ep = tb.endpoints.clone();
        let mut config = ScidiveConfig::default();
        config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
        let ids = tb.add_node(
            "ids",
            ep.tap_ip,
            LinkParams::lan(),
            Box::new(IdsNode::new(config)),
        );
        tb.add_node(
            "chaos",
            std::net::Ipv4Addr::new(10, 0, 0, 99),
            LinkParams::lan(),
            Box::new(ChaosMonkey {
                targets: vec![ep.proxy_ip, ep.a_ip, ep.b_ip, ep.acct_ip],
                shots: 0,
                max_shots: 400,
            }),
        );
        tb.run_for(SimDuration::from_secs(6));

        // The call completed despite the noise.
        assert!(
            tb.a_events()
                .iter()
                .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. })),
            "seed {seed}: call failed under chaos"
        );
        assert_eq!(tb.cdrs().len(), 1);
        // The IDS processed everything without losing count.
        let engine = tb.sim.node_as::<IdsNode>(ids).unwrap().ids();
        let stats = engine.stats();
        assert!(stats.frames > 400);
        assert_eq!(stats.alerts as usize, engine.alerts().len());
        // Any critical alerts must be media-plane complaints about the
        // garbage (rtp-attack is legitimate here: random bytes DID hit
        // negotiated media ports); nothing else may fire.
        for alert in engine.alerts() {
            if alert.severity == Severity::Critical {
                assert_eq!(
                    alert.rule, "rtp-attack",
                    "seed {seed}: unexpected critical alert {alert}"
                );
            }
        }
    }
}
