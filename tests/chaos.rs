//! Chaos robustness: a node spraying random bytes at every port of every
//! host while a call proceeds. Nothing may panic, the call must
//! complete, and the IDS must keep its accounting straight.

use rand::RngCore;
use scidive::prelude::*;
use std::any::Any;

/// Sprays random UDP at random hosts/ports every few ms.
struct ChaosMonkey {
    targets: Vec<std::net::Ipv4Addr>,
    shots: u32,
    max_shots: u32,
}

impl Node for ChaosMonkey {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(600), 1);
    }
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: IpPacket) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if self.shots >= self.max_shots {
            return;
        }
        self.shots += 1;
        let target = self.targets[(ctx.rng().range(0, self.targets.len() as u64)) as usize];
        let port = ctx.rng().range(1, 65535) as u16;
        let len = ctx.rng().range(0, 300) as usize;
        let mut payload = vec![0u8; len];
        ctx.rng().fill_bytes(&mut payload);
        ctx.send_udp(4999, target, port, payload);
        ctx.set_timer(SimDuration::from_millis(5), 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Leak plateau: run chaos-shaped traffic long enough to cross the
/// trail idle timeout and check — via the observability gauges — that
/// every piece of per-session state (trails, media index, interner,
/// memoized synthetic keys) levels off instead of growing monotonically.
#[test]
fn state_gauges_plateau_across_idle_expiry() {
    let chaos_ip = std::net::Ipv4Addr::new(10, 0, 0, 99);
    let caller_ip = std::net::Ipv4Addr::new(10, 0, 0, 2);
    let target_ip = std::net::Ipv4Addr::new(10, 0, 0, 1);

    // One burst of mixed traffic starting at `base` (ms): two calls
    // with SDP (media index + interner), RTP to the negotiated and to
    // 40 unannounced ports (synthetic flow keys), plus anonymous SIP.
    let burst = |ids: &mut Scidive, base: u64| {
        for call in 0..2u16 {
            let media_port = 8_000 + call * 2;
            let sdp = SessionDescription::audio_offer("alice", caller_ip, media_port);
            let mut b = RequestBuilder::new(Method::Invite, "sip:b@lab".parse().unwrap());
            b.from(NameAddr::new("sip:a@lab".parse().unwrap()).with_tag("t"))
                .to(NameAddr::new("sip:b@lab".parse().unwrap()))
                .call_id(format!("chaos-{base}-{call}"))
                .cseq(CSeq::new(1, Method::Invite))
                .via(Via::udp("10.0.0.2:5060", "z9hG4bK-x"))
                .body("application/sdp", sdp.to_string());
            let invite = b.build().to_bytes();
            ids.on_frame(
                SimTime::from_millis(base + u64::from(call)),
                &IpPacket::udp(caller_ip, 5060, target_ip, 5060, invite.as_ref()),
            );
        }
        for i in 0..120u64 {
            let t = SimTime::from_millis(base + 10 + i * 5);
            // RTP-shaped garbage to rotating unannounced ports.
            let rtp = [0x80u8, 96, 0, (i & 0xff) as u8, 0, 0, 0, 1, 0, 0, 0, 2];
            let port = 20_000 + (i % 40) as u16;
            ids.on_frame(
                t,
                &IpPacket::udp(chaos_ip, 4_999, target_ip, port, rtp.as_ref()),
            );
            // And to a negotiated sink, keeping the learned mapping warm.
            ids.on_frame(
                t,
                &IpPacket::udp(chaos_ip, 4_999, caller_ip, 8_000, rtp.as_ref()),
            );
        }
    };

    let mut config = ScidiveConfig::default();
    config.trails.idle_timeout = SimDuration::from_secs(2);
    config.events.session_timeout = SimDuration::from_secs(2);
    let mut ids = Scidive::new(config);

    burst(&mut ids, 0); // ends ~0.6s
    let first = ids.gauges();
    assert!(first.trails > 0 && first.media_index > 0 && first.interner > 0);
    assert!(first.synthetic_keys > 0);
    assert!(first.rule_state > 0, "rules hold per-session state");
    assert!(first.session_plane > 0, "dialog machines hold session state");

    // Cross the idle timeout several times over, then repeat the same
    // shape of traffic twice more.
    burst(&mut ids, 10_000);
    burst(&mut ids, 20_000);
    let later = ids.gauges();

    // Plateau: a steady-state burst leaves no more state behind than
    // the first one did — nothing accumulates across idle periods.
    assert!(
        later.trails <= first.trails,
        "trail count grew: {} -> {}",
        first.trails,
        later.trails
    );
    assert!(
        later.media_index <= first.media_index,
        "media index grew: {} -> {}",
        first.media_index,
        later.media_index
    );
    assert!(
        later.interner <= first.interner,
        "interner grew: {} -> {}",
        first.interner,
        later.interner
    );
    assert!(
        later.synthetic_keys <= first.synthetic_keys,
        "synthetic key memos grew: {} -> {}",
        first.synthetic_keys,
        later.synthetic_keys
    );
    assert!(
        later.rule_state <= first.rule_state,
        "rule session state grew: {} -> {}",
        first.rule_state,
        later.rule_state
    );
    assert!(
        later.session_plane <= first.session_plane,
        "session-plane dialog state grew: {} -> {}",
        first.session_plane,
        later.session_plane
    );
    // And the lifecycle counters prove expiry actually ran.
    assert!(later.expired_trails > 0);
    assert!(later.media_expired > 0);
    assert!(later.synthetic_expired > 0);
    assert!(later.interner_expired > 0);
    assert!(later.rule_state_expired > 0, "rule state never expired");
    assert!(
        later.session_plane_expired > 0,
        "session-plane state never expired"
    );
}

#[test]
fn call_and_ids_survive_random_byte_spray() {
    for seed in [901u64, 902, 903] {
        let mut tb = TestbedBuilder::new(seed)
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_secs(4)),
            )
            .build();
        let ep = tb.endpoints.clone();
        let mut config = ScidiveConfig::default();
        config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
        let ids = tb.add_node(
            "ids",
            ep.tap_ip,
            LinkParams::lan(),
            Box::new(IdsNode::new(config)),
        );
        tb.add_node(
            "chaos",
            std::net::Ipv4Addr::new(10, 0, 0, 99),
            LinkParams::lan(),
            Box::new(ChaosMonkey {
                targets: vec![ep.proxy_ip, ep.a_ip, ep.b_ip, ep.acct_ip],
                shots: 0,
                max_shots: 400,
            }),
        );
        tb.run_for(SimDuration::from_secs(6));

        // The call completed despite the noise.
        assert!(
            tb.a_events()
                .iter()
                .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. })),
            "seed {seed}: call failed under chaos"
        );
        assert_eq!(tb.cdrs().len(), 1);
        // The IDS processed everything without losing count.
        let engine = tb.sim.node_as::<IdsNode>(ids).unwrap().ids();
        let stats = engine.stats();
        assert!(stats.frames > 400);
        assert_eq!(stats.alerts as usize, engine.alerts().len());
        // Any critical alerts must be media-plane complaints about the
        // garbage (rtp-attack is legitimate here: random bytes DID hit
        // negotiated media ports); nothing else may fire.
        for alert in engine.alerts() {
            if alert.severity == Severity::Critical {
                assert_eq!(
                    alert.rule, "rtp-attack",
                    "seed {seed}: unexpected critical alert {alert}"
                );
            }
        }
    }
}
