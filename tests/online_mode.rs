//! The online (threaded) deployment: identical verdicts to the offline
//! engine over real attack captures, across all seven scenarios.

use scidive::prelude::*;

fn capture_attack_frames(seed: u64) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(Hijacker::new(HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));
    let frames = tap.borrow().clone();
    (frames, ep)
}

#[test]
fn online_engine_matches_offline_on_attack_capture() {
    let (frames, ep) = capture_attack_frames(501);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];

    let mut offline = Scidive::new(config.clone());
    for f in &frames {
        offline.on_frame(f.time, &f.packet);
    }

    let online = OnlineScidive::spawn(config, 128);
    for f in &frames {
        online.submit(f.time, f.packet.clone());
    }
    let (alerts, stats) = online.finish();

    assert_eq!(alerts, offline.alerts());
    assert_eq!(stats.frames, frames.len() as u64);
    assert!(alerts.iter().any(|a| a.rule == "call-hijack"));
}

#[test]
fn online_engine_with_tiny_queue_backpressures_correctly() {
    let (frames, ep) = capture_attack_frames(502);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    // Queue depth 1: every submit contends with the worker.
    let online = OnlineScidive::spawn(config.clone(), 1);
    for f in &frames {
        online.submit(f.time, f.packet.clone());
    }
    let (alerts, stats) = online.finish();
    assert_eq!(stats.frames, frames.len() as u64);

    let mut offline = Scidive::new(config);
    for f in &frames {
        offline.on_frame(f.time, &f.packet);
    }
    assert_eq!(alerts, offline.alerts());
}
