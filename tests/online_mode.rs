//! The online (threaded) deployment: identical verdicts to the offline
//! engine over real attack captures, across all seven scenarios.

use scidive::prelude::*;

fn capture_attack_frames(seed: u64) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(Hijacker::new(HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));
    let frames = tap.borrow().clone();
    (frames, ep)
}

#[test]
fn online_engine_matches_offline_on_attack_capture() {
    let (frames, ep) = capture_attack_frames(501);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];

    let mut offline = Scidive::new(config.clone());
    for f in &frames {
        offline.on_frame(f.time, &f.packet);
    }

    let mut online = OnlineScidive::spawn(config, 128);
    for f in &frames {
        online.submit(f.time, f.packet.clone());
    }
    let (alerts, stats, observation) = online.finish();

    assert_eq!(alerts, offline.alerts());
    assert_eq!(stats.frames, frames.len() as u64);
    // The observation's counters must account for every frame submitted
    // and every alert raised.
    assert_eq!(observation.pipeline, stats);
    assert_eq!(observation.dispatch.frames, frames.len() as u64);
    assert_eq!(observation.severity.total(), alerts.len() as u64);
    assert!(alerts.iter().any(|a| a.rule == "call-hijack"));
}

#[test]
fn online_engine_with_tiny_queue_backpressures_correctly() {
    let (frames, ep) = capture_attack_frames(502);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    // Queue depth 1: every submit contends with the worker.
    let mut online = OnlineScidive::spawn(config.clone(), 1);
    for f in &frames {
        online.submit(f.time, f.packet.clone());
    }
    let (alerts, stats, _) = online.finish();
    assert_eq!(stats.frames, frames.len() as u64);

    let mut offline = Scidive::new(config);
    for f in &frames {
        offline.on_frame(f.time, &f.packet);
    }
    assert_eq!(alerts, offline.alerts());
}

#[test]
fn bounded_queues_block_instead_of_dropping() {
    // Depth-1 queues on a multi-shard engine: every submit can find its
    // shard's queue full, and the dispatcher must block — never drop.
    let (frames, ep) = capture_attack_frames(503);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut sharded = ShardedScidive::new(config, 4, 1);
    for f in &frames {
        sharded.submit(f.time, &f.packet);
    }
    let report = sharded.finish();
    // Every frame made it through: counted, dispatched, processed.
    assert_eq!(report.dispatch.dropped, 0);
    assert_eq!(report.dispatch.frames, frames.len() as u64);
    assert_eq!(report.stats.frames, frames.len() as u64);
    assert_eq!(
        report.shards.iter().map(|s| s.dispatched).sum::<u64>(),
        frames.len() as u64
    );
}

#[test]
fn finish_drains_every_shard() {
    // Submit a large capture and immediately finish: the merged report
    // must still contain the work queued on every shard, and the alert
    // snapshot taken before finish can only be a prefix of the truth.
    let (frames, ep) = capture_attack_frames(504);
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];

    let mut offline = Scidive::new(config.clone());
    for f in &frames {
        offline.on_frame(f.time, &f.packet);
    }

    let mut sharded = ShardedScidive::new(config, 4, 256);
    for f in &frames {
        sharded.submit(f.time, &f.packet);
    }
    let early = sharded.alerts_snapshot();
    let report = sharded.finish();
    assert!(early.len() <= report.alerts.len());
    assert_eq!(report.alerts, offline.alerts());
    assert_eq!(report.stats, offline.stats());
    assert!(report.alerts.iter().any(|a| a.rule == "call-hijack"));
}

#[test]
fn clean_run_keeps_drop_and_blocked_counters_honest() {
    // A roomy queue on a benign capture: nothing dropped, and with
    // depth >= capture size nothing can even block.
    let mut tb = TestbedBuilder::new(505)
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(3)))
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut sharded = ShardedScidive::new(config, 2, frames.len().max(1));
    for f in &frames {
        sharded.submit(f.time, &f.packet);
    }
    let report = sharded.finish();
    assert_eq!(report.dispatch.dropped, 0);
    assert!(report.alerts.is_empty(), "benign capture alarmed: {:?}", report.alerts);
    for shard in &report.shards {
        assert_eq!(
            shard.enqueue_blocked, 0,
            "shard {} blocked with an oversized queue",
            shard.shard
        );
    }
}
