//! Differential tests for the protocol-module registry: the registry is
//! the single dispatch surface for classify/attribute/generate, so
//! (a) registering an extra module must not perturb detection of
//! traffic it doesn't own, (b) registration order must never matter —
//! classification is decided by each module's explicit priority — and
//! (c) a module registered from outside the core dispatch code must
//! carry a full cross-protocol detection on its own: the MGCP module's
//! "RTP after DLCX" teardown-evasion rule, at 1/2/4 shards,
//! byte-identical to the single-engine run.

use scidive::ids::proto::{acct::AcctModule, mgcp::MgcpModule, rtcp::RtcpModule};
use scidive::ids::proto::{rtp::RtpModule, sip::SipModule};
use scidive::prelude::*;
use scidive::voip::gateway::GatewayScenario;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

/// An engine config with the MGCP module registered on top of the
/// built-in four (plus fallback).
fn mgcp_config() -> ScidiveConfig {
    ScidiveConfig {
        protocols: ProtocolSetBuilder::new()
            .register(Box::new(MgcpModule::new()))
            .build(),
        ..ScidiveConfig::default()
    }
}

fn replay(config: ScidiveConfig, frames: &[(SimTime, IpPacket)]) -> Vec<Alert> {
    let mut ids = Scidive::new(config);
    for (t, pkt) in frames {
        ids.on_frame(*t, pkt);
    }
    ids.alerts().to_vec()
}

/// Replays through the single engine and sharded at 1/2/4, asserting
/// byte-identical alert streams, then returns them.
fn replay_all_widths(config: &ScidiveConfig, frames: &[(SimTime, IpPacket)]) -> Vec<Alert> {
    let single = replay(config.clone(), frames);
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedScidive::new(config.clone(), shards, 64);
        for (t, pkt) in frames {
            sharded.submit(*t, pkt);
        }
        let report = sharded.finish();
        assert_eq!(
            report.alerts, single,
            "sharded registry dispatch diverged at {shards} shards"
        );
    }
    single
}

#[test]
fn mgcp_teardown_evasion_is_detected_at_every_shard_width() {
    let frames = GatewayScenario::new().teardown_evasion();
    let alerts = replay_all_widths(&mgcp_config(), &frames);
    assert!(
        alerts.iter().any(|a| a.rule == "mgcp-teardown"),
        "teardown evasion missed: {alerts:?}"
    );
    assert!(
        alerts
            .iter()
            .filter(|a| a.rule == "mgcp-teardown")
            .all(|a| a.severity == Severity::Critical),
        "{alerts:?}"
    );
    // Nothing else fired — the gateway capture contains no SIP/RTCP/
    // accounting anomalies, and the RTP module must not false-alarm on
    // media attributed to a gateway session.
    assert!(
        alerts.iter().all(|a| a.rule == "mgcp-teardown"),
        "unexpected extra alerts: {alerts:?}"
    );
}

#[test]
fn benign_gateway_call_raises_nothing() {
    let frames = GatewayScenario::new().benign();
    let alerts = replay_all_widths(&mgcp_config(), &frames);
    assert!(alerts.is_empty(), "benign gateway capture alarmed: {alerts:?}");
}

#[test]
fn gateway_traffic_without_the_module_is_inert() {
    // Same attack capture against the stock registry: the control
    // packets classify as plain UDP, no MGCP trail forms, no alert —
    // and, critically, no crash and no false alarm either.
    let frames = GatewayScenario::new().teardown_evasion();
    let alerts = replay_all_widths(&ScidiveConfig::default(), &frames);
    assert!(
        alerts.iter().all(|a| a.rule != "mgcp-teardown"),
        "{alerts:?}"
    );
}

/// Builds the Fig-4 testbed with one scripted call, taps the hub, and
/// optionally injects an attacker node.
fn capture_scenario(
    seed: u64,
    hangup: Option<SimDuration>,
    attacker: Option<Box<dyn Node>>,
) -> (Vec<CapturedFrame>, Endpoints) {
    let mut tb = TestbedBuilder::new(seed)
        .standard_call(SimDuration::from_millis(500), hangup)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    if let Some(node) = attacker {
        tb.add_node("attacker", ep.attacker_ip, LinkParams::lan(), node);
    }
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    (frames, ep)
}

fn voip_attack_captures() -> Vec<(&'static str, Vec<CapturedFrame>, Endpoints)> {
    let default = Endpoints::default();
    vec![
        {
            let (f, ep) = capture_scenario(801, Some(SimDuration::from_secs(3)), None);
            ("benign", f, ep)
        },
        {
            let (f, ep) = capture_scenario(
                802,
                None,
                Some(Box::new(ByeAttacker::new(ByeAttackConfig::new(
                    default.attacker_ip,
                    default.a_ip,
                    default.b_ip,
                    SimDuration::from_secs(1),
                )))),
            );
            ("bye", f, ep)
        },
        {
            let (f, ep) = capture_scenario(
                803,
                None,
                Some(Box::new(Hijacker::new(HijackConfig::new(
                    default.attacker_ip,
                    default.a_ip,
                    default.b_ip,
                    SimDuration::from_secs(1),
                )))),
            );
            ("hijack", f, ep)
        },
        {
            let (f, ep) = capture_scenario(
                804,
                Some(SimDuration::from_secs(2)),
                Some(Box::new(FakeImAttacker::new(FakeImConfig::new(
                    default.attacker_ip,
                    default.a_ip,
                    default.b_ip,
                    SimDuration::from_millis(2_500),
                )))),
            );
            ("fake-im", f, ep)
        },
        {
            let (f, ep) = capture_scenario(
                805,
                None,
                Some(Box::new(RtpFlooder::new(RtpFloodConfig::new(
                    default.attacker_ip,
                    default.b_ip,
                    SimDuration::from_secs(1),
                )))),
            );
            ("rtp-flood", f, ep)
        },
    ]
}

#[test]
fn registering_mgcp_never_perturbs_voip_detection() {
    // Benign + four attack captures, stock registry vs MGCP-extended
    // registry, single and sharded at 1/2/4: identical alert streams
    // everywhere. A registered module that owns none of the traffic
    // must be a byte-exact no-op.
    for (label, frames, ep) in voip_attack_captures() {
        let frames: Vec<(SimTime, IpPacket)> =
            frames.iter().map(|f| (f.time, f.packet.clone())).collect();
        let mut stock = ScidiveConfig::default();
        stock.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
        let mut extended = mgcp_config();
        extended.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
        let baseline = replay_all_widths(&stock, &frames);
        let with_mgcp = replay_all_widths(&extended, &frames);
        assert_eq!(
            with_mgcp, baseline,
            "MGCP registration changed the {label} alert stream"
        );
    }
}

#[test]
fn registration_order_never_changes_alerts() {
    // The same modules registered in two different orders classify and
    // detect identically: priority, not Vec order, decides.
    let forward = ProtocolSetBuilder::empty()
        .register(Box::new(SipModule::new()))
        .register(Box::new(RtpModule::new()))
        .register(Box::new(RtcpModule::new()))
        .register(Box::new(AcctModule::new()))
        .register(Box::new(MgcpModule::new()))
        .build();
    let reverse = ProtocolSetBuilder::empty()
        .register(Box::new(MgcpModule::new()))
        .register(Box::new(AcctModule::new()))
        .register(Box::new(RtcpModule::new()))
        .register(Box::new(RtpModule::new()))
        .register(Box::new(SipModule::new()))
        .build();
    assert_eq!(forward.names(), reverse.names());

    let frames = GatewayScenario::new().teardown_evasion();
    let fwd_cfg = ScidiveConfig {
        protocols: forward,
        ..ScidiveConfig::default()
    };
    let rev_cfg = ScidiveConfig {
        protocols: reverse,
        ..ScidiveConfig::default()
    };
    let a = replay(fwd_cfg, &frames);
    let b = replay(rev_cfg, &frames);
    assert_eq!(a, b, "registration order changed the alert stream");
    assert!(a.iter().any(|x| x.rule == "mgcp-teardown"));
}
