//! Cross-protocol correlation end-to-end: the trail store groups SIP,
//! RTP and accounting footprints of one call under one session, and the
//! offline engine reproduces the live node's verdicts from a capture.

use scidive::prelude::*;

#[test]
fn one_call_builds_sip_rtp_and_acct_trails() {
    let mut tb = TestbedBuilder::new(301)
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_secs(3)),
        )
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.run_for(SimDuration::from_secs(4));

    let mut ids = Scidive::new(ScidiveConfig::default());
    for frame in tap.borrow().iter() {
        ids.on_frame(frame.time, &frame.packet);
    }
    // Find the call's session (the only one with an RTP trail).
    let call_id = tb.cdrs()[0].call_id.clone();
    let session = SessionKey::new(&call_id);
    let trails = ids.trails().session_trails(&session);
    let protos: Vec<TrailProto> = trails.iter().map(|t| t.key().proto).collect();
    assert!(
        protos.contains(&TrailProto::Sip),
        "SIP trail missing: {protos:?}"
    );
    assert!(
        protos.contains(&TrailProto::Rtp),
        "RTP trail missing: {protos:?}"
    );
    assert!(
        protos.contains(&TrailProto::Acct),
        "accounting trail missing: {protos:?}"
    );
    // Media index knows both negotiated sinks.
    assert_eq!(
        ids.trails().session_for_media(ep.a_ip, ep.a_rtp),
        Some(&session)
    );
    assert_eq!(
        ids.trails().session_for_media(ep.b_ip, ep.b_rtp),
        Some(&session)
    );
    // The RTP trail holds real media footprints.
    let rtp_trail = trails
        .iter()
        .find(|t| t.key().proto == TrailProto::Rtp)
        .unwrap();
    assert!(rtp_trail.len() > 100, "rtp trail len {}", rtp_trail.len());
}

#[test]
fn offline_replay_matches_live_node() {
    // Run the BYE attack with both a live IDS node and a raw capture.
    let mut tb = TestbedBuilder::new(302)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let live = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::ideal(),
        Box::new(IdsNode::new(config.clone())),
    );
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node(
        "capture",
        std::net::Ipv4Addr::new(10, 0, 0, 251),
        LinkParams::ideal(),
        Box::new(collector),
    );
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));

    let live_alerts = tb
        .sim
        .node_as::<IdsNode>(live)
        .unwrap()
        .ids()
        .alerts()
        .to_vec();

    let mut offline = Scidive::new(config);
    for frame in tap.borrow().iter() {
        offline.on_frame(frame.time, &frame.packet);
    }
    // Same rules fire; with ideal (zero-delay, zero-loss) taps both see
    // identical frame sequences, so the alert streams agree rule-by-rule.
    let live_rules: Vec<&str> = live_alerts.iter().map(|a| a.rule.as_str()).collect();
    let offline_rules: Vec<&str> = offline.alerts().iter().map(|a| a.rule.as_str()).collect();
    assert_eq!(live_rules, offline_rules);
    assert!(live_rules.contains(&"bye-attack"));
}

#[test]
fn trace_json_roundtrip_replays_identically() {
    let mut tb = TestbedBuilder::new(303)
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(2)))
        .build();
    tb.run_for(SimDuration::from_secs(3));
    let json = tb.sim.trace().to_json().unwrap();
    let restored = Trace::from_json(&json).unwrap();
    assert_eq!(restored.len(), tb.sim.trace().len());

    let run = |trace: &Trace| {
        let mut ids = Scidive::new(ScidiveConfig::default());
        for rec in trace.records() {
            ids.on_frame(rec.time, &rec.packet);
        }
        (ids.stats(), ids.alerts().to_vec())
    };
    assert_eq!(run(tb.sim.trace()), run(&restored));
}
