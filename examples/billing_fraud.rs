//! The §3.2 billing-fraud scenario: a crafted INVITE exploits a proxy
//! bug to charge someone else for the attacker's call. No single
//! protocol shows the fraud — the detection *must* combine the SIP,
//! accounting and RTP trails, which is the paper's motivating example
//! for cross-protocol rules.
//!
//! ```sh
//! cargo run --example billing_fraud
//! ```

use scidive::prelude::*;

fn main() {
    let mut tb = TestbedBuilder::new(31)
        .with_billing_vuln() // the proxy trusts P-Billing-Id
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );

    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(BillingFraudster::new(BillingFraudConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        ))),
    );

    tb.run_for(SimDuration::from_secs(5));

    let fraudster = tb.sim.node_as::<BillingFraudster>(attacker).unwrap();
    println!(
        "Attack: mallory calls bob with a malformed INVITE carrying\n\
         `P-Billing-Id: alice@lab`. Connected: {}. Media streamed: {} packets.\n",
        fraudster.connected,
        if fraudster.connected { ">0" } else { "0" }
    );

    println!("The billing system's view — alice pays for a call she never made:");
    for cdr in tb.cdrs() {
        println!("  billed to {} (callee {}) call {}", cdr.caller, cdr.callee, cdr.call_id);
    }

    println!("\nSCIDIVE's three-facet evidence and verdict:");
    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    for alert in alerts {
        println!("  {alert}");
    }
    assert!(alerts.iter().any(|a| a.rule == "billing-fraud"));
    println!(
        "\nNote the structure: the sip-format advisory alone is weak evidence\n\
         (sloppy clients exist) and the accounting mismatch alone could be a\n\
         bug — the billing-fraud rule fires only on their combination, exactly\n\
         the false-alarm argument of paper §3.2."
    );
}
