//! Operator rules from `.scid` files, hot-swapped onto a live sharded
//! pipeline.
//!
//! The run starts with the built-in ruleset only, replays a forged-BYE
//! attack capture, and mid-run — without stopping the pipeline — swaps
//! in the operator rules from a `.scid` file. The swap rides the same
//! FIFO barrier as the periodic rate fold, so it lands at the same
//! frame boundary on every shard and the attack detections that were
//! mid-sequence survive the install.
//!
//! ```sh
//! cargo run --example dsl_rules                         # default rules file
//! cargo run --example dsl_rules -- examples/rules/predicates.scid
//! cargo run --example dsl_rules -- --check              # compile-gate every .scid
//! ```
//!
//! `--check` compiles every program under `examples/rules/` with
//! warnings denied — the CI gate for the shipped rule files.

use scidive::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn rules_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/rules")
}

/// Compiles every `.scid` file under `examples/rules/`, treating
/// validator warnings as errors. Returns failure if any file has a
/// diagnostic.
fn check_all() -> ExitCode {
    let mut failed = false;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(rules_dir())
        .expect("examples/rules exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scid"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no .scid files under examples/rules/");
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("rule file is readable");
        match Program::check(&src) {
            Err(err) => {
                eprintln!("{}: FAILED\n{}", path.display(), err.render(&src));
                failed = true;
            }
            Ok((_, warnings)) if !warnings.is_empty() => {
                for w in &warnings {
                    eprintln!("{}: warning\n{}", path.display(), w.render(&src));
                }
                failed = true;
            }
            Ok((program, _)) => {
                println!("ok  {} ({} rules)", path.display(), program.rules.len());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--check") {
        return check_all();
    }
    let rules_file = arg.map_or_else(|| rules_dir().join("teardown.scid"), PathBuf::from);

    // Capture a forged-BYE attack on the Fig-4 testbed.
    let mut tb = TestbedBuilder::new(42)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();

    // A sharded pipeline booted with the built-in ruleset only.
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut ids = ShardedScidive::new(config, 4, 64);

    // Replay; at 500ms of capture time, hot-swap the operator rules in.
    let source = RulesetSource::DslFile(rules_file.clone());
    let swap_at = frames
        .iter()
        .position(|f| f.time >= SimTime::ZERO + SimDuration::from_millis(500))
        .unwrap_or(0);
    for (i, f) in frames.iter().enumerate() {
        if i == swap_at {
            match ids.swap_ruleset(&source) {
                Ok(generation) => println!(
                    "[{}] installed {} (generation {generation})",
                    f.time,
                    rules_file.display()
                ),
                Err(e) => {
                    eprintln!("swap rejected, keeping the running ruleset: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ids.submit(f.time, &f.packet);
    }

    let report = ids.finish();
    println!(
        "\n{} frames, {} alerts, {} swaps, generation {}",
        report.stats.frames,
        report.alerts.len(),
        report.observation.dispatch.ruleset_swaps,
        report.observation.gauges.ruleset_generation,
    );
    for alert in &report.alerts {
        println!("  {alert}");
    }
    ExitCode::SUCCESS
}
