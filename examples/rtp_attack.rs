//! The §4.2.4 RTP attack (paper Figure 8): garbage packets at a
//! client's media port corrupt its jitter buffer. The paper observed
//! X-Lite *crash* and Windows Messenger merely glitch; here the fragile
//! client crashes and the robust one degrades — and SCIDIVE flags the
//! attack either way.
//!
//! ```sh
//! cargo run --example rtp_attack
//! ```

use scidive::prelude::*;

fn run(fragile: bool) {
    let label = if fragile { "fragile client (X-Lite)" } else { "robust client (Messenger)" };
    println!("--- {label} ---");
    let mut builder = TestbedBuilder::new(23).standard_call(SimDuration::from_millis(500), None);
    if fragile {
        builder = builder.a_fragile(5);
    }
    let mut tb = builder.build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RtpFlooder::new(RtpFloodConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(4));

    let ua = tb.ua(tb.a).unwrap();
    let stats = ua.buffer_stats();
    println!(
        "  jitter buffer: {} played, {} underruns, {} disruptions",
        stats.played, stats.underruns, stats.disruptions
    );
    println!("  crashed: {}", ua.is_crashed());

    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    for alert in alerts.iter().filter(|a| a.rule == "rtp-attack") {
        println!("  {alert}");
    }
    println!();
}

fn main() {
    println!("The same 20-packet garbage flood against two client builds:\n");
    run(true);
    run(false);
    println!(
        "Either way the flood violates the IDS's media discipline — packets\n\
         from an unnegotiated source, undecodable bytes at a media sink — so\n\
         the rtp-attack rule fires regardless of how the client copes."
    );
}
