//! Extending SCIDIVE with a user-defined protocol — entirely from
//! outside the core crate.
//!
//! The paper argues the architecture is "extensible to new protocols";
//! this example proves it end to end. A toy device-heartbeat protocol
//! (`BEAT <device> <seq>` on UDP 4790) gets its own [`ProtocolModule`]
//! — classification, session attribution, and event generation — plus a
//! detection [`Rule`] for replayed heartbeats, all defined below and
//! registered through the public [`ProtocolSetBuilder`] / `add_rule`
//! seams. No core file changes hands.
//!
//! ```sh
//! cargo run --example custom_protocol
//! ```

use scidive::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The port our toy telemetry protocol lives on.
const BEAT_PORT: u16 = 4790;
/// The module/trail tag, and the signal name of the replay event.
const BEAT_PROTO: &str = "beat";
const REPLAY_SIGNAL: &str = "beat-replay";

/// A decoded heartbeat: `BEAT <device> <seq>`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Heartbeat {
    device: String,
    seq: u64,
}

impl Heartbeat {
    fn parse(payload: &[u8]) -> Option<Heartbeat> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.split_whitespace();
        if parts.next()? != "BEAT" {
            return None;
        }
        Some(Heartbeat {
            device: parts.next()?.to_string(),
            seq: parts.next()?.parse().ok()?,
        })
    }

    fn packet(device: &str, seq: u64, src: Ipv4Addr, dst: Ipv4Addr) -> IpPacket {
        IpPacket::udp(src, 4791, dst, BEAT_PORT, format!("BEAT {device} {seq}"))
    }
}

impl ExtData for Heartbeat {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn eq_ext(&self, other: &dyn ExtData) -> bool {
        other
            .as_any()
            .downcast_ref::<Heartbeat>()
            .is_some_and(|o| o == self)
    }

    fn label(&self) -> String {
        format!("BEAT {} #{}", self.device, self.seq)
    }
}

/// The heartbeat protocol module. Sequence state lives here, per
/// engine: `fresh()` hands every event generator its own copy.
#[derive(Debug, Default)]
struct BeatModule {
    last_seq: HashMap<SessionKey, u64>,
}

impl ProtocolModule for BeatModule {
    fn name(&self) -> &'static str {
        BEAT_PROTO
    }

    fn classify_priority(&self) -> u16 {
        // Anywhere before the fallback works; a dedicated port means no
        // contention with the built-ins either way.
        50
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(BeatModule::default())
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(body, FootprintBody::Ext(e) if e.proto == BEAT_PROTO)
    }

    fn classify(
        &self,
        payload: &bytes::Bytes,
        meta: &PacketMeta,
        _cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        if meta.dst_port != BEAT_PORT {
            return None;
        }
        let hb = Heartbeat::parse(payload)?;
        Some(FootprintBody::Ext(ExtBody {
            proto: BEAT_PROTO,
            data: Arc::new(hb),
        }))
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        match hb_of(fp) {
            Some(hb) => ctx.intern(&format!("beat-{}", hb.device)),
            None => ctx.synthetic("other", fp.meta.dst, None),
        }
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        let Some(hb) = hb_of(fp) else {
            return;
        };
        let last = self.last_seq.entry(key.session.clone()).or_insert(0);
        if hb.seq > *last {
            *last = hb.seq;
            return;
        }
        // A sequence number we already saw: a replayed (or spoofed)
        // heartbeat. Surface it as one of the extension event classes.
        ctx.emit(
            fp.meta.time,
            Some(key.session.clone()),
            EventKind::Protocol {
                class: EventClass::Ext2,
                signal: REPLAY_SIGNAL,
                detail: format!("{} replayed #{} (last {})", hb.device, hb.seq, last),
            },
        );
    }
}

fn hb_of(fp: &Footprint) -> Option<&Heartbeat> {
    let FootprintBody::Ext(e) = &fp.body else {
        return None;
    };
    if e.proto != BEAT_PROTO {
        return None;
    }
    e.data.as_any().downcast_ref::<Heartbeat>()
}

/// The matching rule: critical alert the first time a device's
/// heartbeat stream shows a replay.
#[derive(Debug, Default)]
struct BeatReplayRule {
    fired: SessionMap<()>,
}

impl Rule for BeatReplayRule {
    fn id(&self) -> &str {
        "beat-replay"
    }

    fn description(&self) -> &str {
        "a device heartbeat was replayed"
    }

    fn is_cross_protocol(&self) -> bool {
        false
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&[EventClass::Ext2])
    }

    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        let EventKind::Protocol { signal, detail, .. } = &ev.kind else {
            return;
        };
        if *signal != REPLAY_SIGNAL {
            return;
        }
        let Some(session) = &ev.session else {
            return;
        };
        if self.fired.get_mut(session, ctx.now).is_some() {
            return;
        }
        self.fired.insert(session.clone(), (), ctx.now);
        sink.push(Alert::new(
            self.id(),
            Severity::Critical,
            ev.time,
            Some(session.clone()),
            format!("heartbeat replay: {detail}"),
        ));
    }
}

fn engine() -> Scidive {
    let config = ScidiveConfig {
        protocols: ProtocolSetBuilder::new()
            .register(Box::new(BeatModule::default()))
            .build(),
        ..ScidiveConfig::default()
    };
    let mut ids = Scidive::new(config);
    ids.add_rule(Box::new(BeatReplayRule::default()));
    ids
}

fn main() {
    let device_ip = Ipv4Addr::new(10, 7, 0, 2);
    let sink_ip = Ipv4Addr::new(10, 7, 0, 1);

    // A healthy telemetry stream: sequence numbers strictly advance.
    let mut ids = engine();
    for seq in 1..=20u64 {
        let pkt = Heartbeat::packet("sensor-a", seq, device_ip, sink_ip);
        ids.on_frame(SimTime::from_millis(seq * 100), &pkt);
    }
    println!("benign stream:  {} alerts (expected 0)", ids.alerts().len());

    // The same stream with an attacker re-injecting a captured frame.
    let mut ids = engine();
    for seq in 1..=20u64 {
        let pkt = Heartbeat::packet("sensor-a", seq, device_ip, sink_ip);
        ids.on_frame(SimTime::from_millis(seq * 100), &pkt);
        if seq == 15 {
            // Replay of heartbeat #3, captured earlier.
            let replay = Heartbeat::packet("sensor-a", 3, device_ip, sink_ip);
            ids.on_frame(SimTime::from_millis(seq * 100 + 50), &replay);
        }
    }
    println!("replay stream:  {} alert(s)", ids.alerts().len());
    for alert in ids.alerts() {
        println!("  [{}] {} ({:?}): {}", alert.time, alert.rule, alert.severity, alert.message);
    }

    // The custom protocol got its own trail type too: the registry maps
    // extension footprints to `TrailProto::Ext("beat")` with no edits
    // to the trail store.
    let stats = ids.stats();
    println!(
        "pipeline: {} frames -> {} footprints -> {} events -> {} alerts",
        stats.frames, stats.footprints, stats.events, stats.alerts
    );
    assert!(ids.alerts().iter().any(|a| a.rule == "beat-replay"));
}
