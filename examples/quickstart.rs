//! Quickstart: a complete SIP call on the simulated testbed, watched by
//! the SCIDIVE endpoint IDS — and the paper's Figure 1 message ladder.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use scidive::prelude::*;
use std::collections::HashMap;

fn main() {
    // The paper's Fig. 4 topology: proxy + two clients + accounting on a
    // hub, with a promiscuous tap for the IDS.
    let mut tb = TestbedBuilder::new(42)
        .standard_call(
            SimDuration::from_millis(500),     // alice calls bob at t = 500 ms
            Some(SimDuration::from_secs(3)),   // and hangs up at t = 3 s
        )
        .build();
    let ep = tb.endpoints.clone();

    // Deploy the IDS on the tap.
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );

    tb.run_for(SimDuration::from_secs(5));

    // Figure 1: the call setup/teardown ladder (RTP sampled).
    println!("=== Figure 1 — SIP call setup and teardown (alice -> bob) ===\n");
    let mut rtp_counts: HashMap<(std::net::Ipv4Addr, u16), u64> = HashMap::new();
    let ladder = tb.sim.trace().render_ladder(|rec| {
        let udp = rec.packet.decode_udp().ok()?;
        if let Ok(msg) = SipMessage::parse(&udp.payload) {
            return Some(format!("SIP {}", msg.summary()));
        }
        if let Ok(text) = std::str::from_utf8(&udp.payload) {
            if text.starts_with("ACCT ") {
                return Some(text.trim().to_string());
            }
        }
        if let Ok(rtp) = RtpPacket::decode(&udp.payload) {
            let n = rtp_counts.entry((rec.packet.dst, udp.dst_port)).or_insert(0);
            *n += 1;
            if *n == 1 {
                return Some(format!("RTP stream starts (ssrc={:#010x})", rtp.header.ssrc));
            }
            return None;
        }
        None
    });
    println!("{ladder}");

    // What the endpoints experienced.
    println!("=== Client A's view ===");
    for ev in tb.a_events() {
        println!("  [{}] {:?}", ev.time, ev.kind);
    }

    // Billing.
    println!("\n=== Accounting ===");
    for cdr in tb.cdrs() {
        let duration = cdr
            .stopped
            .map(|s| format!("{}", s - cdr.started))
            .unwrap_or_else(|| "open".to_string());
        println!("  {} -> {} call {} duration {duration}", cdr.caller, cdr.callee, cdr.call_id);
    }

    // The IDS: benign traffic means no critical alerts.
    let node = tb.sim.node_as::<IdsNode>(ids).expect("ids node");
    let alerts = node.ids().alerts();
    let stats = node.ids().stats();
    println!("\n=== SCIDIVE ===");
    println!(
        "  {} frames -> {} footprints -> {} events -> {} alerts",
        stats.frames, stats.footprints, stats.events, stats.alerts
    );
    let critical = alerts.iter().filter(|a| a.severity == Severity::Critical).count();
    println!("  critical alerts on this benign call: {critical} (expected 0)");
}
