//! The §4.2.2 fake instant-messaging attack (paper Figure 6): a SIP
//! MESSAGE whose `From` claims bob, sent from the attacker's machine —
//! and the spoofed-IP variant the paper concedes the endpoint rule
//! cannot catch.
//!
//! ```sh
//! cargo run --example fake_im
//! ```

use scidive::prelude::*;

fn run(spoof_ip: bool) -> Vec<Alert> {
    let mut tb = TestbedBuilder::new(51)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );
    let mut cfg = FakeImConfig::new(
        ep.attacker_ip,
        ep.a_ip,
        ep.b_ip,
        SimDuration::from_millis(500),
    );
    cfg.spoof_ip = spoof_ip;
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(cfg)),
    );
    tb.run_for(SimDuration::from_secs(2));

    println!("What alice's client displayed:");
    for ev in tb.a_events() {
        if let UaEventKind::ImReceived { claimed_from, src_ip, body } = &ev.kind {
            println!("  message \"from {}\": \"{body}\" (network source {src_ip})", claimed_from.aor());
        }
    }
    tb.sim
        .node_as::<IdsNode>(ids)
        .unwrap()
        .ids()
        .alerts()
        .to_vec()
}

fn main() {
    println!("=== Variant 1: attacker sends from its own address ===\n");
    let alerts = run(false);
    for a in alerts.iter().filter(|a| a.rule == "fake-im") {
        println!("\nSCIDIVE: {a}");
    }
    assert!(alerts.iter().any(|a| a.rule == "fake-im"));

    println!("\n=== Variant 2: attacker also spoofs bob's IP ===\n");
    let alerts = run(true);
    let caught = alerts.iter().any(|a| a.rule == "fake-im");
    println!(
        "\nSCIDIVE alert raised: {caught} — \"If the attacker is able to spoof\n\
         its IP address, then this rule will not work. However, based on the\n\
         Host-based architecture, this is probably the best we can do.\" (§4.2.2)"
    );
}
