//! Sharded online deployment: capture a forged-BYE attack on the
//! testbed, then replay the wire trace through `ShardedScidive` —
//! worker threads behind bounded queues, frames routed by session —
//! and show that the merged verdict is byte-identical to a single
//! engine while the work spreads across shards.
//!
//! ```sh
//! cargo run --example sharded_online
//! ```

use scidive::prelude::*;

fn main() {
    // Capture a call plus a §4.2.1 forged-BYE attack off the hub tap.
    let mut tb = TestbedBuilder::new(7)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );
    tb.run_for(SimDuration::from_secs(5));
    let frames = tap.borrow().clone();
    println!("captured {} frames", frames.len());

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];

    // Reference: one engine, in-line.
    let mut single = Scidive::new(config.clone());
    for f in &frames {
        single.on_frame(f.time, &f.packet);
    }

    // Sharded: four workers behind bounded queues of 64 frames.
    let mut sharded = ShardedScidive::new(config, 4, 64);
    for f in &frames {
        sharded.submit(f.time, &f.packet);
    }
    let report = sharded.finish();

    println!("\n=== per-shard breakdown ===");
    for s in &report.shards {
        println!(
            "  shard {}: {} frames dispatched, {} footprints, {} alerts, {} enqueue stalls",
            s.shard, s.dispatched, s.pipeline.footprints, s.pipeline.alerts, s.enqueue_blocked
        );
    }
    println!(
        "  dispatcher: {} frames ({} empty, {} overflow, {} dropped)",
        report.dispatch.frames,
        report.dispatch.empty_frames,
        report.dispatch.overflow_frames,
        report.dispatch.dropped
    );

    println!("\n=== merged verdict ===");
    for a in &report.alerts {
        println!("  [{}] {} ({:?}): {}", a.time, a.rule, a.severity, a.message);
    }

    println!("\n=== pipeline observation ===");
    println!("{}", report.observation.report());

    assert_eq!(report.alerts, single.alerts(), "sharded output diverged");
    assert_eq!(report.stats, single.stats(), "sharded counters diverged");
    println!(
        "byte-identical to the single engine: {} alerts, {} frames -> {} events",
        report.alerts.len(),
        report.stats.frames,
        report.stats.events
    );
}
