//! The §4.2.1 BYE attack (paper Figure 5), end to end: an attacker
//! sniffs the dialog, forges a BYE "from bob" at alice, alice's side of
//! the call dies, bob keeps streaming — and SCIDIVE's cross-protocol
//! rule catches the orphan flow.
//!
//! ```sh
//! cargo run --example bye_attack
//! ```

use scidive::prelude::*;

fn main() {
    let mut tb = TestbedBuilder::new(7)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );

    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(ByeAttacker::new(ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );

    tb.run_for(SimDuration::from_secs(4));

    let fired_at = tb
        .sim
        .node_as::<ByeAttacker>(attacker)
        .unwrap()
        .fired_at
        .expect("attack fired");
    println!("Attack: forged BYE (spoofed as bob) sent to alice at {fired_at}\n");

    println!("Victim (alice) believes bob hung up:");
    for ev in tb.a_events() {
        if matches!(ev.kind, UaEventKind::CallTerminated { .. } | UaEventKind::MediaStopped { .. })
        {
            println!("  [{}] {:?}", ev.time, ev.kind);
        }
    }
    println!(
        "\nBob has no idea — still in the call: {}",
        tb.ua(tb.b).unwrap().has_active_call()
    );

    // Orphan flow on the wire.
    let orphans = tb
        .sim
        .trace()
        .records()
        .iter()
        .filter(|r| {
            r.time > fired_at
                && r.packet.src == ep.b_ip
                && r.packet
                    .decode_udp()
                    .map(|u| u.dst_port == ep.a_rtp)
                    .unwrap_or(false)
        })
        .count();
    println!("Orphan RTP packets from bob after the forged BYE: {orphans}\n");

    println!("SCIDIVE alerts:");
    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    for alert in alerts {
        println!("  {alert}");
    }
    let detection = alerts
        .iter()
        .find(|a| a.rule == "bye-attack")
        .expect("the bye-attack rule fires");
    println!(
        "\nDetection delay: {} (paper's model predicts ~10 ms — half the RTP period)",
        detection.time.saturating_since(fired_at)
    );
}
