//! Cooperative detection (the paper's §6 future work, implemented):
//! two SCIDIVE endpoint detectors exchange event objects and catch the
//! IP-spoofed fake instant message that §4.2.2 concedes a single
//! endpoint cannot.
//!
//! ```sh
//! cargo run --example cooperative_detection
//! ```

use scidive::ids::cooperative::{CooperativeCluster, CooperativeConfig, EndpointDetector};
use scidive::prelude::*;

fn main() {
    // The spoofed fake-IM scenario: the attacker forges both the SIP
    // From header AND the IP source address.
    let mut tb = TestbedBuilder::new(77)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let mut atk = FakeImConfig::new(
        ep.attacker_ip,
        ep.a_ip,
        ep.b_ip,
        SimDuration::from_millis(500),
    );
    atk.spoof_ip = true;
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(atk)),
    );
    tb.run_for(SimDuration::from_secs(2));

    // Act 1: the lone endpoint IDS (the paper's deployment) is blind.
    let mut solo_cfg = ScidiveConfig::default();
    solo_cfg.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut solo = Scidive::new(solo_cfg.clone());
    for rec in tb.sim.trace().records() {
        solo.on_frame(rec.time, &rec.packet);
    }
    let solo_caught = solo.alerts().iter().any(|a| a.rule == "fake-im");
    println!("Single endpoint IDS caught the spoofed fake IM: {solo_caught}");
    println!(
        "  (the paper, §4.2.2: \"If the attacker is able to spoof its IP\n\
         address, then this rule will not work ... This motivates a more\n\
         ambitious architecture like deploying IDS on both client ends.\")\n"
    );

    // Act 2: the §6 architecture — one detector per endpoint, event
    // objects exchanged, cross-detector correlation.
    let coop = CooperativeConfig::default()
        .with_home("alice@lab", "ids-a")
        .with_home("bob@lab", "ids-b");
    let mut cluster = CooperativeCluster::new(
        coop,
        vec![
            EndpointDetector::new("ids-a", ep.a_ip, "ua-a", solo_cfg.clone()),
            EndpointDetector::new("ids-b", ep.b_ip, "ua-b", solo_cfg),
        ],
    );
    let alerts = cluster.process_trace(tb.sim.trace());

    println!("Cooperative cluster (detectors at alice's and bob's hosts):");
    println!(
        "  events exchanged: {}",
        cluster.exchanged_events().len()
    );
    for alert in &alerts {
        println!("  COOPERATIVE {alert}");
    }
    assert!(alerts.iter().any(|a| a.rule == "coop-forged-im"));
    println!(
        "\nThe forgery is visible *between* the detectors: alice's detector\n\
         saw a delivery claiming bob; bob's detector — which knows what\n\
         bob's host actually transmitted — saw no matching send. No amount\n\
         of IP spoofing can fake the absence of an event at the home end."
    );
}
