//! The §4.3.1 analytical model, standalone: detection delay, missed
//! alarms and false alarms as functions of the network, with the
//! paper's headline numbers.
//!
//! ```sh
//! cargo run --example delay_model
//! ```

use scidive::analysis::delay::DelayModel;
use scidive::analysis::dist::ContDist;
use scidive::analysis::false_alarm::p_false_numeric;
use scidive::analysis::missed::p_missed_single_numeric;
use scidive::analysis::stats::{Histogram, Summary};

fn main() {
    // "Under the simplest of assumptions, where the fake SIP message is
    // generated with a uniform distribution in (0,20), and the network
    // delay is assumed to be independent and identical for all packets,
    // the expected detection delay is 10 milliseconds."
    let model = DelayModel::paper_simple();
    println!("Closed-form E[D] = {} ms (paper: 10 ms)\n", model.expected_simple_ms());

    // The full multi-packet model, Monte Carlo.
    let est = model.monte_carlo(100_000, 42, 200.0, 0.0);
    let summary = Summary::of(&est.delays).unwrap();
    println!(
        "Monte Carlo (100k trials): mean {:.2} ms, p50 {:.2}, p95 {:.2}",
        summary.mean, summary.p50, summary.p95
    );
    let mut hist = Histogram::new(0.0, 25.0, 10);
    for d in &est.delays {
        hist.record(*d);
    }
    println!("\nDetection-delay distribution (ms):\n{}", hist.render(40));

    // P_m(m): the monitoring window tradeoff.
    println!("Missed-alarm probability vs. monitoring window m:");
    for m in [5.0, 10.0, 15.0, 20.0, 30.0] {
        let p = p_missed_single_numeric(&model, m).unwrap();
        println!("  m = {m:>4} ms  ->  P_m = {p:.3}");
    }

    // P_f: the BYE-vs-RTP race.
    println!("\nFalse-alarm probability P_f = Pr{{N_sip < N_rtp}}:");
    let iid = ContDist::Exponential { mean: 5.0 };
    println!("  i.i.d. exponential paths: {:.3} (paper: 1/2)", p_false_numeric(&iid, &iid));
    let fast_sip = ContDist::Exponential { mean: 1.0 };
    let slow_rtp = ContDist::Exponential { mean: 9.0 };
    println!(
        "  fast SIP path vs slow RTP: {:.3} (the BYE usually wins the race)",
        p_false_numeric(&fast_sip, &slow_rtp)
    );
}
