//! The §4.2.3 call-hijacking attack (paper Figure 7): a forged
//! re-INVITE claims "bob moved" and redirects alice's voice to the
//! attacker, who gets to listen in while bob hears silence.
//!
//! ```sh
//! cargo run --example call_hijack
//! ```

use scidive::prelude::*;

fn main() {
    let mut tb = TestbedBuilder::new(17)
        .standard_call(SimDuration::from_millis(500), None)
        .build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );

    let attacker = tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(Hijacker::new(HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_secs(1),
        ))),
    );

    tb.run_for(SimDuration::from_secs(4));

    let hijacker = tb.sim.node_as::<Hijacker>(attacker).unwrap();
    let fired_at = hijacker.fired_at.expect("attack fired");
    println!("Attack: forged re-INVITE at {fired_at} — \"bob is now at {}:{}\"\n", ep.attacker_ip, 7000);

    println!("Alice obediently retargeted her media:");
    for ev in tb.a_events() {
        if let UaEventKind::MediaRetargeted { target, port, .. } = &ev.kind {
            println!("  [{}] media now flows to {target}:{port}", ev.time);
        }
    }
    println!(
        "\nStolen audio: the attacker captured {} RTP packets of alice's voice.",
        hijacker.stolen_rtp
    );

    println!("\nSCIDIVE alerts:");
    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    for alert in alerts {
        println!("  {alert}");
    }
    let detection = alerts
        .iter()
        .find(|a| a.rule == "call-hijack")
        .expect("the call-hijack rule fires");
    println!(
        "\nDetection delay: {} — bob's old stream kept arriving after he \"moved\".",
        detection.time.saturating_since(fired_at)
    );
}
