//! The §3.3 stateful-detection scenarios: a REGISTER-flood DoS and a
//! digest brute-force against the registrar, both invisible to naive
//! per-packet matching (4xx responses are normal!) but obvious to the
//! stateful request/challenge trackers.
//!
//! ```sh
//! cargo run --example register_flood
//! ```

use scidive::prelude::*;

fn main() {
    let mut tb = TestbedBuilder::new(61)
        .with_auth(&[("alice", "super-secret"), ("bob", "pw-b")])
        // Benign auth churn alongside the attack: alice and bob register
        // normally (one 401 challenge each).
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(30), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();

    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        LinkParams::lan(),
        Box::new(IdsNode::new(config)),
    );

    // Attacker 1: the flood (ignores every 401).
    tb.add_node(
        "flooder",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(RegisterFlooder::new(RegisterDosConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        ))),
    );
    // Attacker 2: the brute-forcer (answers each 401 with a new guess).
    let guesser_ip = std::net::Ipv4Addr::new(10, 0, 0, 67);
    tb.add_node(
        "guesser",
        guesser_ip,
        LinkParams::lan(),
        Box::new(PasswordGuesser::new(PasswordGuessConfig::new(
            guesser_ip,
            ep.proxy_ip,
            SimDuration::from_secs(1),
            8,
        ))),
    );

    tb.run_for(SimDuration::from_secs(12));

    let stats = tb.proxy_stats();
    println!("Registrar's day:");
    println!("  {} REGISTER requests, {} challenges sent", stats.registers, stats.challenges);
    println!("  {} failed authentications, {} successful registrations\n", stats.auth_failures, stats.registrations);

    println!("SCIDIVE alerts (benign alice/bob churn raised nothing):");
    let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts();
    for alert in alerts.iter().filter(|a| a.severity == Severity::Critical) {
        println!("  {alert}");
    }
    assert!(alerts.iter().any(|a| a.rule == "register-dos"));
    assert!(alerts.iter().any(|a| a.rule == "password-guess"));
    println!(
        "\nBoth attacks produce request/4xx churn; the stateful trackers tell\n\
         them apart — repeated identical requests vs. varying digest responses\n\
         — and neither confuses the benign clients' one-challenge handshakes."
    );
}
