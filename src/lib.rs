//! # scidive — stateful, cross-protocol VoIP intrusion detection
//!
//! An open-source reproduction of *"SCIDIVE: A Stateful and Cross
//! Protocol Intrusion Detection Architecture for Voice-over-IP
//! Environments"* (Wu, Bagchi, Garg, Singh, Tsai — DSN 2004), as a Rust
//! workspace:
//!
//! * [`ids`] (`scidive-core`) — the IDS engine: Distiller, Trails,
//!   Event Generator, Ruleset, metrics, the Snort-like baseline, and an
//!   online (threaded) mode.
//! * [`netsim`] (`scidive-netsim`) — the deterministic network
//!   substrate: virtual time, hub topology, delay/loss models, IPv4
//!   fragmentation, promiscuous taps.
//! * [`sip`] / [`rtp`] (`scidive-sip`, `scidive-rtp`) — the protocol
//!   stacks (RFC 3261 subset incl. digest auth and dialogs; RFC 3550
//!   RTP/RTCP with jitter buffer and sequence validation).
//! * [`voip`] (`scidive-voip`) — the protected system: user agents,
//!   proxy/registrar, accounting, and the Fig-4 testbed builder.
//! * [`attacks`] (`scidive-attacks`) — scripted attackers for all seven
//!   scenarios in the paper.
//! * [`analysis`] (`scidive-analysis`) — the §4.3 performance model
//!   (detection delay, missed/false alarm probabilities) in closed form,
//!   numerically, and by Monte Carlo.
//!
//! ## Quickstart: catch the BYE attack
//!
//! ```
//! use scidive::prelude::*;
//!
//! // Build the paper's testbed with one ongoing call...
//! let mut tb = TestbedBuilder::new(42)
//!     .standard_call(SimDuration::from_millis(500), None)
//!     .build();
//! let ep = tb.endpoints.clone();
//!
//! // ...deploy the endpoint IDS on the hub...
//! let ids = tb.add_node(
//!     "ids",
//!     ep.tap_ip,
//!     LinkParams::lan(),
//!     Box::new(IdsNode::new(ScidiveConfig::default())),
//! );
//!
//! // ...and inject the §4.2.1 forged-BYE attacker.
//! tb.add_node(
//!     "attacker",
//!     ep.attacker_ip,
//!     LinkParams::lan(),
//!     Box::new(ByeAttacker::new(ByeAttackConfig::new(
//!         ep.attacker_ip, ep.a_ip, ep.b_ip, SimDuration::from_secs(1),
//!     ))),
//! );
//! tb.run_for(SimDuration::from_secs(5));
//!
//! let alerts = tb.sim.node_as::<IdsNode>(ids).unwrap().ids().alerts().to_vec();
//! assert!(alerts.iter().any(|a| a.rule == "bye-attack"));
//! ```

pub use scidive_analysis as analysis;
pub use scidive_attacks as attacks;
pub use scidive_core as ids;
pub use scidive_netsim as netsim;
pub use scidive_rtp as rtp;
pub use scidive_sip as sip;
pub use scidive_voip as voip;

/// One import for everything the examples and experiments need.
pub mod prelude {
    pub use scidive_attacks::prelude::*;
    pub use scidive_core::prelude::*;
    pub use scidive_netsim::prelude::*;
    pub use scidive_rtp::prelude::*;
    pub use scidive_sip::prelude::*;
    pub use scidive_voip::prelude::*;
}
