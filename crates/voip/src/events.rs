//! Observable user-agent events, used by scenario harnesses and tests to
//! assert what the endpoints experienced (ground truth for the IDS).

use scidive_netsim::time::SimTime;
use scidive_sip::uri::SipUri;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What a user agent experienced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UaEventKind {
    /// Registration succeeded.
    Registered,
    /// Registrar answered 401 with a digest challenge.
    RegisterChallenged,
    /// Registration failed permanently.
    RegisterFailed {
        /// Status code received.
        code: u16,
    },
    /// An INVITE arrived.
    IncomingCall {
        /// Caller URI from the `From` header.
        from: SipUri,
        /// The Call-ID.
        call_id: String,
    },
    /// A call reached the confirmed state.
    CallEstablished {
        /// The Call-ID.
        call_id: String,
        /// The peer's URI.
        peer: SipUri,
    },
    /// A call ended.
    CallTerminated {
        /// The Call-ID.
        call_id: String,
        /// Whether the peer (or something claiming to be the peer)
        /// initiated the teardown.
        by_remote: bool,
    },
    /// Outbound media started towards the given target.
    MediaStarted {
        /// The Call-ID.
        call_id: String,
        /// RTP destination address.
        target: Ipv4Addr,
        /// RTP destination port.
        port: u16,
    },
    /// Outbound media stopped.
    MediaStopped {
        /// The Call-ID.
        call_id: String,
    },
    /// A re-INVITE moved our outbound media target (genuine mobility or
    /// the §4.2.3 hijack).
    MediaRetargeted {
        /// The Call-ID.
        call_id: String,
        /// New RTP destination address.
        target: Ipv4Addr,
        /// New RTP destination port.
        port: u16,
    },
    /// An instant message arrived.
    ImReceived {
        /// URI claimed in the `From` header.
        claimed_from: SipUri,
        /// IP the packet actually came from.
        src_ip: Ipv4Addr,
        /// Message text.
        body: String,
    },
    /// The jitter buffer recorded a disruption (garbage/wild RTP).
    RtpDisruption {
        /// Total disruptions so far.
        total: u64,
    },
    /// The client crashed (the paper's X-Lite under the RTP attack).
    Crashed {
        /// Human-readable cause.
        reason: String,
    },
}

/// A timestamped user-agent event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UaEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: UaEventKind,
}

impl UaEvent {
    /// Creates an event.
    pub fn new(time: SimTime, kind: UaEventKind) -> UaEvent {
        UaEvent { time, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_construction() {
        let ev = UaEvent::new(
            SimTime::from_millis(3),
            UaEventKind::MediaStopped {
                call_id: "c1".to_string(),
            },
        );
        assert_eq!(ev.time, SimTime::from_millis(3));
        assert!(matches!(ev.kind, UaEventKind::MediaStopped { .. }));
    }
}
