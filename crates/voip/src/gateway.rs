//! Gateway-control (MGCP) scenario generator.
//!
//! Synthesizes deterministic captures of a media gateway driven by a
//! call agent over a toy cut of MGCP (RFC 3435): `CRCX` creates a
//! connection and announces its RTP sink, `NTFY` reports gateway
//! events, `DLCX` deletes the connection. The capture format matches
//! what the `scidive-core` MGCP protocol module decodes, but this crate
//! deliberately does not depend on core — the wire text is the
//! contract.
//!
//! Two scenarios:
//!
//! * [`GatewayScenario::benign`] — connection created, media flows,
//!   media stops, connection deleted. Nothing anomalous.
//! * [`GatewayScenario::teardown_evasion`] — the gateway-control twin
//!   of the paper's §4.2.1 forged-BYE attack: a DLCX tears the
//!   connection down, yet RTP towards the connection's sink keeps
//!   flowing inside the monitoring window.

use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use scidive_rtp::source::MediaSource;
use std::net::Ipv4Addr;

/// The gateway-control port (must match the IDS's MGCP module).
pub const GATEWAY_CONTROL_PORT: u16 = 2727;

/// Addressing and identifiers of a gateway-control capture.
#[derive(Debug, Clone)]
pub struct GatewayScenario {
    /// The call agent driving the gateway.
    pub call_agent_ip: Ipv4Addr,
    /// The media gateway being driven.
    pub gateway_ip: Ipv4Addr,
    /// The remote peer streaming media at the gateway.
    pub peer_ip: Ipv4Addr,
    /// The gateway-side RTP sink the CRCX announces.
    pub rtp_port: u16,
    /// The gateway endpoint name used in commands.
    pub endpoint: String,
    /// The call identifier joining the commands to a session.
    pub call_id: String,
}

impl Default for GatewayScenario {
    fn default() -> GatewayScenario {
        GatewayScenario {
            call_agent_ip: Ipv4Addr::new(10, 0, 0, 20),
            gateway_ip: Ipv4Addr::new(10, 0, 0, 21),
            peer_ip: Ipv4Addr::new(10, 0, 0, 22),
            rtp_port: 9200,
            endpoint: "aaln/1@gw0".to_string(),
            call_id: "gw-call-1".to_string(),
        }
    }
}

impl GatewayScenario {
    /// A scenario with the default lab addressing.
    pub fn new() -> GatewayScenario {
        GatewayScenario::default()
    }

    fn command(&self, verb: &str, txid: u32, rtp_line: bool) -> String {
        let mut s = format!(
            "{verb} {txid} {} MGCP 1.0\nC: {}\n",
            self.endpoint, self.call_id
        );
        if rtp_line {
            s.push_str(&format!("RTP: {}:{}\n", self.gateway_ip, self.rtp_port));
        }
        s
    }

    fn control_frame(&self, t: SimTime, from: Ipv4Addr, text: String) -> (SimTime, IpPacket) {
        let pkt = IpPacket::udp(
            from,
            GATEWAY_CONTROL_PORT,
            // Commands and notifications both travel on the control
            // port; the IDS classifies by destination port.
            if from == self.call_agent_ip {
                self.gateway_ip
            } else {
                self.call_agent_ip
            },
            GATEWAY_CONTROL_PORT,
            text.into_bytes(),
        );
        (t, pkt)
    }

    fn media_frames(
        &self,
        src: &mut MediaSource,
        from_ms: u64,
        until_ms: u64,
    ) -> Vec<(SimTime, IpPacket)> {
        (from_ms..until_ms)
            .step_by(20)
            .map(|ms| {
                let pkt = IpPacket::udp(
                    self.peer_ip,
                    6000,
                    self.gateway_ip,
                    self.rtp_port,
                    src.next_packet().encode(),
                );
                (SimTime::from_millis(ms), pkt)
            })
            .collect()
    }

    /// A well-behaved gateway call: CRCX at 10 ms, an NTFY report, two
    /// seconds of 20 ms media towards the announced sink, media stops,
    /// DLCX at 2.5 s. Strictly no media after the teardown.
    pub fn benign(&self) -> Vec<(SimTime, IpPacket)> {
        let mut frames = vec![
            self.control_frame(
                SimTime::from_millis(10),
                self.call_agent_ip,
                self.command("CRCX", 1001, true),
            ),
            self.control_frame(
                SimTime::from_millis(60),
                self.gateway_ip,
                self.command("NTFY", 2001, false),
            ),
        ];
        let mut media = MediaSource::new(0x6077_0001, 4000, 0);
        frames.extend(self.media_frames(&mut media, 100, 2_100));
        frames.push(self.control_frame(
            SimTime::from_millis(2_500),
            self.call_agent_ip,
            self.command("DLCX", 1002, false),
        ));
        frames.sort_by_key(|(t, _)| *t);
        frames
    }

    /// The teardown-evasion attack: identical to [`Self::benign`] until
    /// the DLCX at 2.5 s — after which the peer keeps streaming to the
    /// deleted connection's sink for another 100 ms (well inside the
    /// default 200 ms monitoring window).
    pub fn teardown_evasion(&self) -> Vec<(SimTime, IpPacket)> {
        let mut frames = vec![
            self.control_frame(
                SimTime::from_millis(10),
                self.call_agent_ip,
                self.command("CRCX", 1001, true),
            ),
            self.control_frame(
                SimTime::from_millis(60),
                self.gateway_ip,
                self.command("NTFY", 2001, false),
            ),
        ];
        let mut media = MediaSource::new(0x6077_0001, 4000, 0);
        frames.extend(self.media_frames(&mut media, 100, 2_500));
        frames.push(self.control_frame(
            SimTime::from_millis(2_500),
            self.call_agent_ip,
            self.command("DLCX", 1002, false),
        ));
        // The evasion: media ignores the teardown.
        frames.extend(self.media_frames(&mut media, 2_520, 2_620));
        frames.sort_by_key(|(t, _)| *t);
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_capture_is_deterministic_and_ordered() {
        let a = GatewayScenario::new().benign();
        let b = GatewayScenario::new().benign();
        assert_eq!(a.len(), b.len());
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(a
            .iter()
            .zip(&b)
            .all(|((ta, pa), (tb, pb))| ta == tb && pa.payload == pb.payload));
    }

    #[test]
    fn evasion_streams_media_after_the_dlcx() {
        let frames = GatewayScenario::new().teardown_evasion();
        let dlcx_at = frames
            .iter()
            .find(|(_, p)| {
                p.decode_udp()
                    .ok()
                    .map(|u| u.payload.starts_with(b"DLCX"))
                    .unwrap_or(false)
            })
            .map(|(t, _)| *t)
            .expect("DLCX present");
        let after = frames
            .iter()
            .filter(|(t, p)| {
                *t > dlcx_at
                    && p.decode_udp()
                        .ok()
                        .map(|u| u.dst_port == GatewayScenario::new().rtp_port)
                        .unwrap_or(false)
            })
            .count();
        assert!(after >= 4, "only {after} media frames after DLCX");
        // The benign run has none.
        let benign = GatewayScenario::new().benign();
        let last_media = benign
            .iter()
            .filter(|(_, p)| {
                p.decode_udp()
                    .ok()
                    .map(|u| u.dst_port == GatewayScenario::new().rtp_port)
                    .unwrap_or(false)
            })
            .map(|(t, _)| *t)
            .max()
            .expect("media present");
        assert!(last_media < dlcx_at);
    }
}
