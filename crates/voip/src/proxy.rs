//! The SIP proxy + registrar node (the testbed's "SIP Express Router").
//!
//! Stateful forwarding with Via-stack routing, digest-challenged
//! registration, and accounting hooks that emit billing transactions to
//! the accounting server — including, when `billing_vuln` is enabled, the
//! paper's §3.2 vulnerability: a crafted `P-Billing-Id` header makes the
//! proxy attribute the call to someone other than the real caller.

use crate::accounting::{AcctKind, AcctTxn, ACCT_PORT};
use crate::ua::SIP_PORT;
use scidive_netsim::node::{Node, NodeCtx};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::auth::{DigestChallenge, DigestCredentials};
use scidive_sip::header::{HeaderName, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{response_to, SipMessage};
use scidive_sip::status::StatusCode;
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// The proxy's IP.
    pub ip: Ipv4Addr,
    /// The SIP domain it is authoritative for (AOR host part).
    pub domain: String,
    /// Whether REGISTER requires digest authentication.
    pub auth_required: bool,
    /// username → password accounts for digest auth.
    pub accounts: HashMap<String, String>,
    /// Where to send accounting transactions, if anywhere.
    pub acct_server: Option<Ipv4Addr>,
    /// Enable the §3.2 billing vulnerability (`P-Billing-Id` trusted).
    pub billing_vuln: bool,
}

impl ProxyConfig {
    /// A proxy for `domain` at `ip` with no auth and no accounting.
    pub fn new(ip: Ipv4Addr, domain: impl Into<String>) -> ProxyConfig {
        ProxyConfig {
            ip,
            domain: domain.into(),
            auth_required: false,
            accounts: HashMap::new(),
            acct_server: None,
            billing_vuln: false,
        }
    }

    /// Requires digest auth with the given accounts (builder-style).
    pub fn with_auth(mut self, accounts: &[(&str, &str)]) -> ProxyConfig {
        self.auth_required = true;
        self.accounts = accounts
            .iter()
            .map(|(u, p)| (u.to_string(), p.to_string()))
            .collect();
        self
    }

    /// Sends accounting transactions to `server` (builder-style).
    pub fn with_accounting(mut self, server: Ipv4Addr) -> ProxyConfig {
        self.acct_server = Some(server);
        self
    }

    /// Enables the billing vulnerability (builder-style).
    pub fn with_billing_vuln(mut self) -> ProxyConfig {
        self.billing_vuln = true;
        self
    }
}

/// A registrar binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The bound contact URI.
    pub contact: SipUri,
    /// IP to forward to.
    pub ip: Ipv4Addr,
    /// Port to forward to.
    pub port: u16,
    /// When the binding lapses (RFC 3261 §10: Expires).
    pub expires_at: SimTime,
}

/// Counters the DoS experiments read as ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// REGISTER requests received.
    pub registers: u64,
    /// 401 challenges sent.
    pub challenges: u64,
    /// Authorization attempts that failed verification.
    pub auth_failures: u64,
    /// Successful registrations.
    pub registrations: u64,
    /// Requests forwarded.
    pub forwarded: u64,
    /// Responses forwarded.
    pub responses_forwarded: u64,
    /// Requests rejected (404 etc.).
    pub rejected: u64,
}

#[derive(Debug, Clone)]
struct PendingInvite {
    caller_aor: String,
    callee_aor: String,
    call_id: String,
    billing_override: Option<String>,
}

/// The proxy/registrar node.
#[derive(Debug)]
pub struct Proxy {
    config: ProxyConfig,
    bindings: HashMap<String, Binding>,
    issued_nonces: HashSet<String>,
    nonce_counter: u64,
    branch_counter: u64,
    /// Via-branch → pending INVITE info for accounting.
    pending_invites: HashMap<String, PendingInvite>,
    /// Call-IDs already billed (avoid double Start on re-INVITE).
    billed_calls: HashSet<String>,
    stats: ProxyStats,
}

impl Proxy {
    /// Creates a proxy.
    pub fn new(config: ProxyConfig) -> Proxy {
        Proxy {
            config,
            bindings: HashMap::new(),
            issued_nonces: HashSet::new(),
            nonce_counter: 0,
            branch_counter: 0,
            pending_invites: HashMap::new(),
            billed_calls: HashSet::new(),
            stats: ProxyStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The binding for an AOR, if registered and unexpired at `now`.
    pub fn binding_at(&self, aor: &str, now: SimTime) -> Option<&Binding> {
        self.bindings.get(aor).filter(|b| b.expires_at > now)
    }

    /// The binding for an AOR, if present (ignores expiry; prefer
    /// [`Proxy::binding_at`]).
    pub fn binding(&self, aor: &str) -> Option<&Binding> {
        self.bindings.get(aor)
    }

    fn next_branch(&mut self) -> String {
        self.branch_counter += 1;
        format!("z9hG4bK-proxy-{}", self.branch_counter)
    }

    fn send_to_via(&self, ctx: &mut NodeCtx<'_>, msg: &SipMessage) {
        if let Some((ip, port)) = top_via_addr(msg) {
            ctx.send_udp(SIP_PORT, ip, port, msg.to_bytes());
        }
    }

    fn reply(&mut self, ctx: &mut NodeCtx<'_>, req: &SipMessage, code: StatusCode) {
        let resp = response_to(req, code, None);
        self.send_to_via(ctx, &resp);
    }

    fn on_register(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        self.stats.registers += 1;
        if self.config.auth_required {
            let authorized = req
                .headers
                .get(&HeaderName::Authorization)
                .and_then(|v| DigestCredentials::parse(v).ok())
                .map(|creds| {
                    let known_nonce = self.issued_nonces.contains(&creds.nonce);
                    let password = self.config.accounts.get(&creds.username);
                    match (known_nonce, password) {
                        (true, Some(pw)) => creds.verify(pw, Method::Register),
                        _ => false,
                    }
                });
            match authorized {
                Some(true) => {}
                Some(false) => {
                    // Bad credentials: challenge again (brute-force path).
                    self.stats.auth_failures += 1;
                    self.challenge(ctx, &req);
                    return;
                }
                None => {
                    // No Authorization at all: standard first-pass 401.
                    self.challenge(ctx, &req);
                    return;
                }
            }
        }
        let Ok(to) = req.to() else {
            self.reply(ctx, &req, StatusCode::BAD_REQUEST);
            return;
        };
        let contact = req.contact().map(|c| c.uri).unwrap_or_else(|_| {
            SipUri::new(
                to.uri.user.clone().unwrap_or_default(),
                src_ip.to_string(),
            )
        });
        // RFC 3261 §10.2.2: Expires 0 removes the binding.
        let expires_secs = req.expires().unwrap_or(3600);
        if expires_secs == 0 {
            self.bindings.remove(&to.uri.aor());
        } else {
            let ip = contact.host_ip().unwrap_or(src_ip);
            let port = contact.port_or_default();
            let expires_at = ctx.now() + SimDuration::from_secs(u64::from(expires_secs));
            self.bindings.insert(
                to.uri.aor(),
                Binding {
                    contact,
                    ip,
                    port,
                    expires_at,
                },
            );
        }
        self.stats.registrations += 1;
        let resp = response_to(&req, StatusCode::OK, None);
        self.send_to_via(ctx, &resp);
    }

    fn challenge(&mut self, ctx: &mut NodeCtx<'_>, req: &SipMessage) {
        self.nonce_counter += 1;
        let nonce = format!("nonce-{}-{}", ctx.now().as_micros(), self.nonce_counter);
        self.issued_nonces.insert(nonce.clone());
        let challenge = DigestChallenge::new(self.config.domain.clone(), nonce);
        let mut resp = response_to(req, StatusCode::UNAUTHORIZED, None);
        resp.headers
            .set(HeaderName::WwwAuthenticate, challenge.to_string());
        self.stats.challenges += 1;
        self.send_to_via(ctx, &resp);
    }

    fn on_request(&mut self, ctx: &mut NodeCtx<'_>, mut req: SipMessage, src_ip: Ipv4Addr) {
        let method = req.method().expect("checked");
        if method == Method::Register {
            self.on_register(ctx, req, src_ip);
            return;
        }
        // Loop protection.
        if let Some(mf) = req.headers.get(&HeaderName::MaxForwards) {
            match mf.trim().parse::<u32>() {
                Ok(0) => {
                    self.stats.rejected += 1;
                    return;
                }
                Ok(n) => req
                    .headers
                    .set(HeaderName::MaxForwards, (n - 1).to_string()),
                Err(_) => {}
            }
        }
        // Routing: IP-literal request URIs go straight there; otherwise
        // look up the registrar binding for the AOR.
        let uri = req.request_uri().expect("requests have URIs").clone();
        let dest = match uri.host_ip() {
            Some(ip) => Some((ip, uri.port_or_default())),
            None => self
                .binding_at(&uri.aor(), ctx.now())
                .map(|b| (b.ip, b.port)),
        };
        let Some((ip, port)) = dest else {
            self.stats.rejected += 1;
            if method != Method::Ack {
                self.reply(ctx, &req, StatusCode::NOT_FOUND);
            }
            return;
        };
        // Remember INVITEs for accounting when the 200 comes back.
        let branch = self.next_branch();
        if method == Method::Invite {
            if let (Ok(from), Ok(to), Ok(call_id)) = (req.from_(), req.to(), req.call_id()) {
                let billing_override = if self.config.billing_vuln {
                    req.headers
                        .get(&HeaderName::extension("P-Billing-Id"))
                        .map(str::to_string)
                } else {
                    None
                };
                self.pending_invites.insert(
                    branch.clone(),
                    PendingInvite {
                        caller_aor: from.uri.aor(),
                        callee_aor: to.uri.aor(),
                        call_id: call_id.to_string(),
                        billing_override,
                    },
                );
            }
        }
        req.headers.push_front(
            HeaderName::Via,
            Via::udp(format!("{}:{}", self.config.ip, SIP_PORT), &branch).to_string(),
        );
        self.stats.forwarded += 1;
        ctx.send_udp(SIP_PORT, ip, port, req.to_bytes());
        // BYE accounting: bill on the BYE we forward (teardown observed).
        if method == Method::Bye {
            if let Ok(call_id) = req.call_id() {
                if self.billed_calls.contains(call_id) {
                    let txn = AcctTxn::new(AcctKind::Stop, "-", "-", call_id);
                    self.emit_acct(ctx, txn);
                }
            }
        }
    }

    fn on_response(&mut self, ctx: &mut NodeCtx<'_>, mut resp: SipMessage) {
        // Pop our Via; what remains tells us where to send it.
        let Some(top) = resp.headers.remove_front(&HeaderName::Via) else {
            return;
        };
        let our_branch = top
            .parse::<Via>()
            .ok()
            .and_then(|v| v.branch().map(str::to_string));
        // Accounting: a 200 to an INVITE we routed starts billing.
        if resp.status().map(|s| s.is_success()).unwrap_or(false) {
            if let (Some(branch), Ok(cseq)) = (&our_branch, resp.cseq()) {
                if cseq.method == Method::Invite {
                    if let Some(pending) = self.pending_invites.remove(branch) {
                        if self.billed_calls.insert(pending.call_id.clone()) {
                            let caller =
                                pending.billing_override.unwrap_or(pending.caller_aor);
                            let txn = AcctTxn::new(
                                AcctKind::Start,
                                caller,
                                pending.callee_aor,
                                pending.call_id,
                            );
                            self.emit_acct(ctx, txn);
                        }
                    }
                }
            }
        }
        self.stats.responses_forwarded += 1;
        self.send_to_via(ctx, &resp);
    }

    fn emit_acct(&mut self, ctx: &mut NodeCtx<'_>, txn: AcctTxn) {
        if let Some(server) = self.config.acct_server {
            ctx.send_udp(ACCT_PORT, server, ACCT_PORT, txn.to_wire());
        }
    }
}

fn top_via_addr(msg: &SipMessage) -> Option<(Ipv4Addr, u16)> {
    let via: Via = msg.headers.get(&HeaderName::Via)?.parse().ok()?;
    let (host, port) = match via.sent_by.split_once(':') {
        Some((h, p)) => (h, p.parse().ok()?),
        None => (via.sent_by.as_str(), SIP_PORT),
    };
    Some((host.parse().ok()?, port))
}

impl Node for Proxy {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port != SIP_PORT || pkt.dst != self.config.ip {
            return;
        }
        match SipMessage::parse(&udp.payload) {
            Ok(msg) if msg.is_request() => self.on_request(ctx, msg, pkt.src),
            Ok(msg) => self.on_response(ctx, msg),
            Err(_) => {} // unparseable: dropped (the IDS still saw it)
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let cfg = ProxyConfig::new(Ipv4Addr::new(10, 0, 0, 1), "lab")
            .with_auth(&[("alice", "pw")])
            .with_accounting(Ipv4Addr::new(10, 0, 0, 4))
            .with_billing_vuln();
        assert!(cfg.auth_required);
        assert_eq!(cfg.accounts.get("alice").map(String::as_str), Some("pw"));
        assert_eq!(cfg.acct_server, Some(Ipv4Addr::new(10, 0, 0, 4)));
        assert!(cfg.billing_vuln);
    }

    #[test]
    fn top_via_addr_parses() {
        use scidive_sip::header::NameAddr;
        use scidive_sip::header::CSeq;
        use scidive_sip::msg::RequestBuilder;
        let mut b = RequestBuilder::new(Method::Invite, "sip:b@lab".parse().unwrap());
        b.from(NameAddr::new("sip:a@lab".parse().unwrap()).with_tag("t"))
            .to(NameAddr::new("sip:b@lab".parse().unwrap()))
            .call_id("c")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-x"));
        assert_eq!(
            top_via_addr(&b.build()),
            Some((Ipv4Addr::new(10, 0, 0, 2), 5060))
        );
    }

    #[test]
    fn stats_default_zero() {
        let p = Proxy::new(ProxyConfig::new(Ipv4Addr::new(10, 0, 0, 1), "lab"));
        assert_eq!(p.stats(), ProxyStats::default());
        assert!(p.binding("alice@lab").is_none());
    }
}
