//! # scidive-voip — the simulated VoIP deployment under protection
//!
//! Recreates the SCIDIVE paper's testbed (Fig. 4) on top of
//! `scidive-netsim`: SIP user agents with 20 ms G.711 media and the
//! protocol-level vulnerabilities the paper's attacks exploit, a
//! stateful proxy/registrar with digest authentication and billing
//! hooks, and an accounting server whose transactions form the third
//! protocol of the §3.2 cross-protocol example.
//!
//! The [`scenario::TestbedBuilder`] wires the whole topology:
//!
//! ```
//! use scidive_voip::prelude::*;
//! use scidive_netsim::time::SimDuration;
//!
//! let mut tb = TestbedBuilder::new(42)
//!     .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(3)))
//!     .build();
//! tb.run_for(SimDuration::from_secs(5));
//! assert_eq!(tb.cdrs().len(), 1); // the call was billed
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod events;
pub mod gateway;
pub mod proxy;
pub mod scenario;
pub mod synth;
pub mod ua;

/// Convenient glob import of the common VoIP types.
pub mod prelude {
    pub use crate::accounting::{AccountingServer, AcctKind, AcctTxn, CallRecord, ACCT_PORT};
    pub use crate::events::{UaEvent, UaEventKind};
    pub use crate::gateway::{GatewayScenario, GATEWAY_CONTROL_PORT};
    pub use crate::proxy::{Binding, Proxy, ProxyConfig, ProxyStats};
    pub use crate::scenario::{Endpoints, Testbed, TestbedBuilder};
    pub use crate::synth::{SynthConfig, SynthTraffic};
    pub use crate::ua::{RegState, ScriptStep, UaAction, UaConfig, UserAgent, SIP_PORT};
}
