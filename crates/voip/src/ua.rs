//! The SIP user agent (softphone) node.
//!
//! Models the paper's clients (Kphone / Windows Messenger / X-Lite): it
//! registers with the proxy (answering digest challenges), places and
//! answers calls with SDP-negotiated G.711 media paced at 20 ms, handles
//! in-dialog BYE and re-INVITE, supports instant messaging (MESSAGE), and
//! — deliberately — carries the protocol-level vulnerabilities the four
//! attacks exploit: it trusts any BYE/re-INVITE whose dialog identifiers
//! match (they are sniffable on the hub) and accepts RTP addressed to its
//! media port from anyone. A `fragile` agent crashes when garbage RTP
//! disrupts its jitter buffer enough (the X-Lite behaviour); a robust one
//! just glitches (the Messenger behaviour).

use crate::events::{UaEvent, UaEventKind};
use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimDuration;
use scidive_rtp::buffer::JitterBuffer;
use scidive_rtp::packet::RtpPacket;
use scidive_rtp::rtcp::RtcpPacket;
use scidive_rtp::source::{MediaSource, FRAME_PERIOD_MS};
use scidive_sip::auth::{DigestChallenge, DigestCredentials};
use scidive_sip::dialog::{Dialog, DialogState};
use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{response_to, RequestBuilder, SipMessage};
use scidive_sip::sdp::SessionDescription;
use scidive_sip::status::StatusCode;
use scidive_sip::txn::{ClientTransaction, ClientTxnAction};
use scidive_sip::uri::SipUri;
use rand::RngCore;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Well-known SIP port.
pub const SIP_PORT: u16 = 5060;

/// Configuration of a user agent.
#[derive(Debug, Clone)]
pub struct UaConfig {
    /// Address of record, e.g. `sip:alice@lab`.
    pub aor: SipUri,
    /// Our IP on the segment.
    pub ip: Ipv4Addr,
    /// SIP listening port.
    pub sip_port: u16,
    /// RTP listening port (RTCP is +1).
    pub rtp_port: u16,
    /// The outbound proxy / registrar.
    pub proxy: Ipv4Addr,
    /// Password for digest authentication, if we have an account.
    pub password: Option<String>,
    /// Answer incoming INVITEs automatically.
    pub auto_answer: bool,
    /// Ring for this long (sending 180 Ringing) before answering; `None`
    /// answers immediately.
    pub answer_delay: Option<SimDuration>,
    /// Crash (like X-Lite) rather than glitch (like Messenger) when the
    /// jitter buffer is disrupted `crash_threshold` times.
    pub fragile: bool,
    /// Disruptions tolerated before crashing/major glitching.
    pub crash_threshold: u64,
    /// REGISTER Expires value in seconds.
    pub register_expires: u32,
    /// Route in-dialog requests through the proxy (keeps accounting and
    /// the IDS tap seeing the full signalling path).
    pub route_via_proxy: bool,
}

impl UaConfig {
    /// A standard client config with the given identity and addresses.
    pub fn new(aor: SipUri, ip: Ipv4Addr, rtp_port: u16, proxy: Ipv4Addr) -> UaConfig {
        UaConfig {
            aor,
            ip,
            sip_port: SIP_PORT,
            rtp_port,
            proxy,
            password: None,
            auto_answer: true,
            answer_delay: None,
            fragile: false,
            crash_threshold: 5,
            register_expires: 3600,
            route_via_proxy: true,
        }
    }

    /// Sets the digest password (builder-style).
    pub fn with_password(mut self, password: impl Into<String>) -> UaConfig {
        self.password = Some(password.into());
        self
    }

    /// Marks the client fragile (builder-style).
    pub fn fragile(mut self) -> UaConfig {
        self.fragile = true;
        self
    }

    /// Rings for `delay` before answering calls (builder-style).
    pub fn with_answer_delay(mut self, delay: SimDuration) -> UaConfig {
        self.answer_delay = Some(delay);
        self
    }
}

/// A scripted action the agent performs at a scheduled time.
#[derive(Debug, Clone)]
pub enum UaAction {
    /// Register with the proxy.
    Register,
    /// Call the given address-of-record.
    Call {
        /// Callee AOR.
        to: SipUri,
    },
    /// Hang up the (first) active call.
    HangUp,
    /// Send an instant message.
    SendIm {
        /// Recipient AOR.
        to: SipUri,
        /// Message text.
        text: String,
    },
    /// Genuine mobility: move our media endpoint to a new port via
    /// re-INVITE, restarting the outbound stream from the new endpoint.
    MigrateMedia {
        /// The new RTP port.
        new_rtp_port: u16,
    },
    /// Abort a call we placed that is still ringing (send CANCEL).
    CancelCall,
}

/// One step of a UA script.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// Offset from simulation start.
    pub at: SimDuration,
    /// What to do.
    pub action: UaAction,
}

impl ScriptStep {
    /// Creates a step.
    pub fn new(at: SimDuration, action: UaAction) -> ScriptStep {
        ScriptStep { at, action }
    }
}

/// Registration progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegState {
    /// Not registered and not trying.
    Idle,
    /// REGISTER sent.
    Pending,
    /// Challenged; authenticated retry sent.
    Answering,
    /// Registered.
    Registered,
    /// Gave up.
    Failed,
}

#[derive(Debug)]
struct CallState {
    dialog: Dialog,
    /// Where we send RTP (peer's SDP target).
    remote_media: Option<(Ipv4Addr, u16)>,
    /// Our announced receive port for this call.
    local_rtp_port: u16,
    source: MediaSource,
    media_active: bool,
    established: bool,
    /// The ACK we sent for the INVITE's 2xx, replayed if the peer
    /// retransmits the 2xx (its copy of our ACK was lost).
    last_ack: Option<SipMessage>,
    /// UAS-side: our 2xx answer, retransmitted on a timer until the ACK
    /// arrives (RFC 3261 §13.3.1.4).
    pending_answer: Option<PendingAnswer>,
    /// UAS-side: the INVITE we are still ringing on (180 sent, 200
    /// pending), so a CANCEL can abort it and the ring timer can answer.
    ringing_invite: Option<(SipMessage, Ipv4Addr)>,
}

#[derive(Debug)]
struct PendingAnswer {
    wire: bytes::Bytes,
    dest: Ipv4Addr,
    dest_port: u16,
    interval_ms: u64,
    retries: u32,
}

#[derive(Debug)]
struct PendingTxn {
    txn: ClientTransaction,
    msg: SipMessage,
    dest: Ipv4Addr,
    dest_port: u16,
    timer_id: u64,
}

const TOK_SCRIPT: u64 = 1;
const TOK_MEDIA: u64 = 2;
const TOK_TXN: u64 = 3;
const TOK_ANSWER: u64 = 4;
const TOK_RING: u64 = 5;

fn token(kind: u64, payload: u64) -> TimerToken {
    kind | (payload << 8)
}

/// The user-agent node.
#[derive(Debug)]
pub struct UserAgent {
    config: UaConfig,
    script: Vec<ScriptStep>,
    reg_state: RegState,
    reg_cseq: u32,
    challenge: Option<DigestChallenge>,
    calls: Vec<CallState>,
    txns: HashMap<String, PendingTxn>,
    txn_timers: HashMap<u64, String>,
    next_txn_timer: u64,
    jb: JitterBuffer,
    crashed: bool,
    events: Vec<UaEvent>,
    counter: u64,
    last_disruptions: u64,
}

impl UserAgent {
    /// Creates an agent with a script of timed actions.
    pub fn new(config: UaConfig, script: Vec<ScriptStep>) -> UserAgent {
        UserAgent {
            config,
            script,
            reg_state: RegState::Idle,
            reg_cseq: 0,
            challenge: None,
            calls: Vec::new(),
            txns: HashMap::new(),
            txn_timers: HashMap::new(),
            next_txn_timer: 0,
            jb: JitterBuffer::new(64, 2),
            crashed: false,
            events: Vec::new(),
            counter: 0,
            last_disruptions: 0,
        }
    }

    /// Everything this agent experienced.
    pub fn events(&self) -> &[UaEvent] {
        &self.events
    }

    /// Whether the client has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Registration state.
    pub fn reg_state(&self) -> RegState {
        self.reg_state
    }

    /// Jitter-buffer statistics (for QoS assertions).
    pub fn buffer_stats(&self) -> scidive_rtp::buffer::BufferStats {
        self.jb.stats()
    }

    /// Number of calls ever created (incl. terminated).
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Whether any call is currently confirmed with active media.
    pub fn has_active_call(&self) -> bool {
        self.calls
            .iter()
            .any(|c| c.dialog.state == DialogState::Confirmed)
    }

    fn username(&self) -> String {
        self.config.aor.user.as_ref().map_or_else(|| "anon".to_string(), |u| u.as_str().to_string())
    }

    fn next_id(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    fn new_branch(&mut self) -> String {
        format!("z9hG4bK-{}-{}", self.username(), self.next_id())
    }

    fn new_tag(&mut self) -> String {
        format!("tag-{}-{}", self.username(), self.next_id())
    }

    fn sent_by(&self) -> String {
        format!("{}:{}", self.config.ip, self.config.sip_port)
    }

    fn contact(&self) -> NameAddr {
        NameAddr::new(
            SipUri::new(self.username(), self.config.ip.to_string())
                .with_port(self.config.sip_port),
        )
    }

    fn push_event(&mut self, ctx: &NodeCtx<'_>, kind: UaEventKind) {
        self.events.push(UaEvent::new(ctx.now(), kind));
    }

    /// Sends a request, registering a client transaction for
    /// retransmission. Returns the branch.
    fn send_tracked(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        msg: SipMessage,
        dest: Ipv4Addr,
        dest_port: u16,
    ) -> String {
        let branch = msg
            .via_top()
            .ok()
            .and_then(|v| v.branch().map(str::to_string))
            .unwrap_or_else(|| self.new_branch());
        let method = msg.method().unwrap_or(Method::Options);
        let txn = ClientTransaction::new(method, branch.clone());
        let timer_id = self.next_txn_timer;
        self.next_txn_timer += 1;
        if let Some(delay) = txn.next_timer_ms() {
            ctx.set_timer(SimDuration::from_millis(delay), token(TOK_TXN, timer_id));
        }
        ctx.send_udp(self.config.sip_port, dest, dest_port, msg.to_bytes());
        self.txn_timers.insert(timer_id, branch.clone());
        self.txns.insert(
            branch.clone(),
            PendingTxn {
                txn,
                msg,
                dest,
                dest_port,
                timer_id,
            },
        );
        branch
    }

    /// Sends a request without transaction tracking (ACK, responses).
    fn send_untracked(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        msg: &SipMessage,
        dest: Ipv4Addr,
        dest_port: u16,
    ) {
        ctx.send_udp(self.config.sip_port, dest, dest_port, msg.to_bytes());
    }

    fn request_dest(&self, target: &SipUri) -> (Ipv4Addr, u16) {
        if self.config.route_via_proxy {
            (self.config.proxy, SIP_PORT)
        } else {
            (
                target.host_ip().unwrap_or(self.config.proxy),
                target.port_or_default(),
            )
        }
    }

    // ------------------------------------------------------------------
    // Scripted actions
    // ------------------------------------------------------------------

    fn do_register(&mut self, ctx: &mut NodeCtx<'_>) {
        self.reg_cseq += 1;
        let tag = self.new_tag();
        let branch = self.new_branch();
        let registrar_uri = SipUri::host_only(self.config.aor.host.clone());
        let mut b = RequestBuilder::new(Method::Register, registrar_uri.clone());
        b.from(NameAddr::new(self.config.aor.clone()).with_tag(&tag))
            .to(NameAddr::new(self.config.aor.clone()))
            .call_id(format!("reg-{}@{}", self.username(), self.config.ip))
            .cseq(CSeq::new(self.reg_cseq, Method::Register))
            .via(Via::udp(self.sent_by(), &branch))
            .contact(self.contact())
            .expires(self.config.register_expires);
        if let (Some(challenge), Some(password)) = (&self.challenge, &self.config.password) {
            let creds = DigestCredentials::answer(
                challenge,
                &self.username(),
                password,
                Method::Register,
                &registrar_uri.to_string(),
            );
            b.header(HeaderName::Authorization, creds.to_string());
            self.reg_state = RegState::Answering;
        } else {
            self.reg_state = RegState::Pending;
        }
        let msg = b.build();
        self.send_tracked(ctx, msg, self.config.proxy, SIP_PORT);
    }

    fn do_call(&mut self, ctx: &mut NodeCtx<'_>, to: SipUri) {
        let tag = self.new_tag();
        let branch = self.new_branch();
        let call_id = format!("call-{}-{}@{}", self.username(), self.next_id(), self.config.ip);
        let sdp = SessionDescription::audio_offer(
            self.username(),
            self.config.ip,
            self.config.rtp_port,
        );
        let mut b = RequestBuilder::new(Method::Invite, to.clone());
        b.from(NameAddr::new(self.config.aor.clone()).with_tag(&tag))
            .to(NameAddr::new(to.clone()))
            .call_id(&call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp(self.sent_by(), &branch))
            .contact(self.contact())
            .body("application/sdp", sdp.to_string());
        let invite = b.build();
        let dialog = Dialog::uac_from_invite(&invite).expect("invite is dialog-forming");
        let ssrc = ctx.rng().next_u32();
        let first_seq = ctx.rng().range(0, 30_000) as u16;
        self.calls.push(CallState {
            dialog,
            remote_media: None,
            local_rtp_port: self.config.rtp_port,
            source: MediaSource::new(ssrc, first_seq, 0),
            media_active: false,
            established: false,
            last_ack: None,
            pending_answer: None,
            ringing_invite: None,
        });
        let (dest, port) = self.request_dest(&to);
        self.send_tracked(ctx, invite, dest, port);
    }

    fn do_hangup(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(idx) = self
            .calls
            .iter()
            .position(|c| c.dialog.state == DialogState::Confirmed)
        else {
            return;
        };
        // Stop media *before* the BYE leaves, as a well-behaved client
        // does; the §4.3 false-alarm race is then only network reordering.
        self.stop_media(ctx, idx);
        let branch = self.new_branch();
        let sent_by = self.sent_by();
        let call = &mut self.calls[idx];
        call.dialog.terminate();
        let bye = call.dialog.make_request(Method::Bye, &sent_by, &branch);
        let call_id = call.dialog.call_id.clone();
        let target = call.dialog.remote_target.clone();
        let (dest, port) = self.request_dest(&target);
        self.send_tracked(ctx, bye, dest, port);
        self.push_event(
            ctx,
            UaEventKind::CallTerminated {
                call_id,
                by_remote: false,
            },
        );
    }

    /// Cancels our still-unanswered outgoing INVITE.
    fn do_cancel(&mut self, ctx: &mut NodeCtx<'_>) {
        // The INVITE is still in our transaction table while unanswered.
        let Some((_, pending)) = self
            .txns
            .iter()
            .find(|(_, p)| p.msg.method() == Some(Method::Invite) && p.txn.is_active())
        else {
            return;
        };
        let invite = pending.msg.clone();
        let dest = pending.dest;
        let dest_port = pending.dest_port;
        // CANCEL copies the INVITE's identifiers including the Via
        // branch, so it matches the INVITE transaction (RFC 3261 §9.1).
        let mut cancel = RequestBuilder::new(
            Method::Cancel,
            invite.request_uri().expect("invite has uri").clone(),
        );
        for name in [HeaderName::From, HeaderName::To, HeaderName::CallId, HeaderName::Via] {
            if let Some(v) = invite.headers.get(&name) {
                cancel.header(name, v);
            }
        }
        if let Ok(cseq) = invite.cseq() {
            cancel.cseq(CSeq::new(cseq.seq, Method::Cancel));
        }
        let msg = cancel.build();
        self.send_untracked(ctx, &msg, dest, dest_port);
    }

    fn do_send_im(&mut self, ctx: &mut NodeCtx<'_>, to: SipUri, text: String) {
        let tag = self.new_tag();
        let branch = self.new_branch();
        let mut b = RequestBuilder::new(Method::Message, to.clone());
        b.from(NameAddr::new(self.config.aor.clone()).with_tag(&tag))
            .to(NameAddr::new(to.clone()))
            .call_id(format!("im-{}-{}@{}", self.username(), self.next_id(), self.config.ip))
            .cseq(CSeq::new(1, Method::Message))
            .via(Via::udp(self.sent_by(), &branch))
            .body("text/plain", text);
        let msg = b.build();
        let (dest, port) = self.request_dest(&to);
        self.send_tracked(ctx, msg, dest, port);
    }

    fn do_migrate(&mut self, ctx: &mut NodeCtx<'_>, new_rtp_port: u16) {
        let Some(idx) = self
            .calls
            .iter()
            .position(|c| c.dialog.state == DialogState::Confirmed)
        else {
            return;
        };
        // The endpoint "moves": the old media source stops, a fresh one
        // (new SSRC, new source port) starts, and the peer is told via
        // re-INVITE where to send from now on.
        let ssrc = ctx.rng().next_u32();
        let first_seq = ctx.rng().range(0, 30_000) as u16;
        let branch = self.new_branch();
        let sent_by = self.sent_by();
        let username = self.username();
        let ip = self.config.ip;
        let call = &mut self.calls[idx];
        call.local_rtp_port = new_rtp_port;
        call.source = MediaSource::new(ssrc, first_seq, 0);
        let mut reinvite = call.dialog.make_request(Method::Invite, &sent_by, &branch);
        let sdp = SessionDescription::audio_offer(username, ip, new_rtp_port);
        reinvite
            .headers
            .set(HeaderName::ContentType, "application/sdp");
        reinvite.body = sdp.to_string().into();
        let call_id = call.dialog.call_id.clone();
        let target = call.dialog.remote_target.clone();
        let (dest, port) = self.request_dest(&target);
        self.send_tracked(ctx, reinvite, dest, port);
        let (t, p) = self.calls[idx].remote_media.unwrap_or((ip, 0));
        self.push_event(ctx, UaEventKind::MediaRetargeted { call_id, target: t, port: p });
    }

    // ------------------------------------------------------------------
    // Media
    // ------------------------------------------------------------------

    fn start_media(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let call = &mut self.calls[idx];
        if call.media_active || call.remote_media.is_none() {
            return;
        }
        call.media_active = true;
        let (target, port) = call.remote_media.expect("checked above");
        let call_id = call.dialog.call_id.clone();
        self.push_event(ctx, UaEventKind::MediaStarted { call_id, target, port });
        ctx.set_timer(SimDuration::ZERO, token(TOK_MEDIA, idx as u64));
    }

    fn stop_media(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let call = &mut self.calls[idx];
        if !call.media_active {
            return;
        }
        call.media_active = false;
        // RTCP BYE: the source announces it is leaving the session.
        if let Some((target, port)) = call.remote_media {
            let bye = RtcpPacket::Bye {
                ssrcs: vec![call.source.ssrc()],
            };
            let src_port = call.local_rtp_port;
            ctx.send_udp(src_port + 1, target, port + 1, bye.encode());
        }
        let call_id = call.dialog.call_id.clone();
        self.push_event(ctx, UaEventKind::MediaStopped { call_id });
    }

    fn media_tick(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        if self.crashed {
            return;
        }
        let Some(call) = self.calls.get_mut(idx) else {
            return;
        };
        if !call.media_active || call.dialog.state != DialogState::Confirmed {
            return;
        }
        let Some((target, port)) = call.remote_media else {
            return;
        };
        let pkt = call.source.next_packet();
        let src_port = call.local_rtp_port;
        ctx.send_udp(src_port, target, port, pkt.encode());
        // RTCP sender report every 50 frames (~1 s), on the RTP port + 1
        // as RFC 3550 prescribes.
        let sent = call.source.sent();
        if sent % 50 == 0 {
            let sr = RtcpPacket::SenderReport {
                ssrc: call.source.ssrc(),
                rtp_timestamp: (sent as u32).wrapping_mul(160),
                packet_count: sent as u32,
                octet_count: (sent as u32).wrapping_mul(160),
                reports: Vec::new(),
            };
            ctx.send_udp(src_port + 1, target, port + 1, sr.encode());
        }
        ctx.set_timer(
            SimDuration::from_millis(FRAME_PERIOD_MS),
            token(TOK_MEDIA, idx as u64),
        );
    }

    fn on_rtp(&mut self, ctx: &mut NodeCtx<'_>, payload: &[u8]) {
        match RtpPacket::decode(payload) {
            Ok(pkt) => {
                self.jb.insert(pkt);
            }
            Err(_) => self.jb.record_undecodable(),
        }
        // Drain at most one frame per arrival (paced playout stand-in).
        let _ = self.jb.pop_ready();
        let disruptions = self.jb.stats().disruptions;
        if disruptions > self.last_disruptions {
            self.last_disruptions = disruptions;
            self.push_event(ctx, UaEventKind::RtpDisruption { total: disruptions });
            if disruptions >= self.config.crash_threshold && self.config.fragile {
                self.crashed = true;
                self.push_event(
                    ctx,
                    UaEventKind::Crashed {
                        reason: format!("jitter buffer corrupted ({disruptions} disruptions)"),
                    },
                );
                for idx in 0..self.calls.len() {
                    self.stop_media(ctx, idx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // SIP handling
    // ------------------------------------------------------------------

    fn respond(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        req: &SipMessage,
        src_ip: Ipv4Addr,
        code: StatusCode,
        to_tag: Option<&str>,
        body: Option<(&str, String)>,
    ) -> (SipMessage, Ipv4Addr, u16) {
        let mut resp = response_to(req, code, to_tag);
        if code.is_success() && req.method() != Some(Method::Register) {
            resp.headers
                .set(HeaderName::Contact, self.contact().to_string());
        }
        if let Some((ctype, body_text)) = body {
            resp.headers.set(HeaderName::ContentType, ctype);
            resp.body = body_text.into_bytes().into();
        }
        let (dest, port) = via_return_addr(req).unwrap_or((src_ip, SIP_PORT));
        self.send_untracked(ctx, &resp, dest, port);
        (resp, dest, port)
    }

    fn on_sip_request(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        match req.method().expect("caller checked is_request") {
            Method::Invite => self.on_invite(ctx, req, src_ip),
            Method::Ack => self.on_ack(ctx, req),
            Method::Bye => self.on_bye(ctx, req, src_ip),
            Method::Message => self.on_message(ctx, req, src_ip),
            Method::Cancel => self.on_cancel(ctx, req, src_ip),
            Method::Options | Method::Info => {
                self.respond(ctx, &req, src_ip, StatusCode::OK, None, None);
            }
            Method::Register => {
                // We are not a registrar.
                self.respond(ctx, &req, src_ip, StatusCode::NOT_FOUND, None, None);
            }
        }
    }

    fn on_invite(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        let Ok(call_id) = req.call_id().map(str::to_string) else {
            self.respond(ctx, &req, src_ip, StatusCode::BAD_REQUEST, None, None);
            return;
        };
        let sdp: Option<SessionDescription> = std::str::from_utf8(&req.body)
            .ok()
            .and_then(|s| s.parse().ok());
        if let Some(idx) = self.calls.iter().position(|c| c.dialog.call_id == call_id) {
            // Retransmission of an INVITE we already answered (the
            // response or ACK was lost): replay our answer.
            let incoming_cseq = req.cseq().map(|c| c.seq).ok();
            if incoming_cseq.is_some() && incoming_cseq == self.calls[idx].dialog.remote_cseq {
                let local_tag = self.calls[idx].dialog.local_tag.clone();
                if self.calls[idx].ringing_invite.is_some() {
                    // Still ringing: just repeat the provisional.
                    self.respond(ctx, &req, src_ip, StatusCode::RINGING, Some(&local_tag), None);
                    return;
                }
                let answer = SessionDescription::audio_offer(
                    self.username(),
                    self.config.ip,
                    self.calls[idx].local_rtp_port,
                );
                self.respond(
                    ctx,
                    &req,
                    src_ip,
                    StatusCode::OK,
                    Some(&local_tag),
                    Some(("application/sdp", answer.to_string())),
                );
                return;
            }
            // Re-INVITE (vulnerable path: no authentication beyond the
            // dialog identifiers, which are sniffable on the hub).
            let cseq_ok = req
                .cseq()
                .map(|c| self.calls[idx].dialog.accept_remote_cseq(c.seq))
                .unwrap_or(false);
            if !cseq_ok {
                self.respond(ctx, &req, src_ip, StatusCode::BAD_REQUEST, None, None);
                return;
            }
            if let Some(sdp) = sdp {
                if let Some(target) = sdp.rtp_target() {
                    self.calls[idx].remote_media = Some(target);
                    let call_id = call_id.clone();
                    self.push_event(
                        ctx,
                        UaEventKind::MediaRetargeted {
                            call_id,
                            target: target.0,
                            port: target.1,
                        },
                    );
                }
            }
            let answer = SessionDescription::audio_offer(
                self.username(),
                self.config.ip,
                self.calls[idx].local_rtp_port,
            );
            let local_tag = self.calls[idx].dialog.local_tag.clone();
            self.respond(
                ctx,
                &req,
                src_ip,
                StatusCode::OK,
                Some(&local_tag),
                Some(("application/sdp", answer.to_string())),
            );
            return;
        }
        // New call.
        let Ok(from) = req.from_() else {
            self.respond(ctx, &req, src_ip, StatusCode::BAD_REQUEST, None, None);
            return;
        };
        self.push_event(
            ctx,
            UaEventKind::IncomingCall {
                from: from.uri,
                call_id,
            },
        );
        if !self.config.auto_answer {
            self.respond(ctx, &req, src_ip, StatusCode::BUSY_HERE, None, None);
            return;
        }
        let tag = self.new_tag();
        let Ok(dialog) = Dialog::uas_from_invite(&req, &tag) else {
            self.respond(ctx, &req, src_ip, StatusCode::BAD_REQUEST, None, None);
            return;
        };
        let ssrc = ctx.rng().next_u32();
        let first_seq = ctx.rng().range(0, 30_000) as u16;
        self.calls.push(CallState {
            dialog,
            remote_media: sdp.as_ref().and_then(|s| s.rtp_target()),
            local_rtp_port: self.config.rtp_port,
            source: MediaSource::new(ssrc, first_seq, 0),
            media_active: false,
            established: false,
            last_ack: None,
            pending_answer: None,
            ringing_invite: None,
        });
        let idx = self.calls.len() - 1;
        match self.config.answer_delay {
            Some(delay) => {
                // Ring first; the timer answers (unless CANCELled).
                let local_tag = self.calls[idx].dialog.local_tag.clone();
                self.respond(ctx, &req, src_ip, StatusCode::RINGING, Some(&local_tag), None);
                self.calls[idx].ringing_invite = Some((req, src_ip));
                ctx.set_timer(delay, token(TOK_RING, idx as u64));
            }
            None => self.answer_invite(ctx, &req, src_ip, idx),
        }
    }

    /// UAS: sends the 200 + SDP answer for `req` and arms the 2xx
    /// retransmission timer.
    fn answer_invite(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        req: &SipMessage,
        src_ip: Ipv4Addr,
        idx: usize,
    ) {
        let tag = self.calls[idx].dialog.local_tag.clone();
        let answer = SessionDescription::audio_offer(
            self.username(),
            self.config.ip,
            self.config.rtp_port,
        );
        let (resp, dest, port) = self.respond(
            ctx,
            req,
            src_ip,
            StatusCode::OK,
            Some(&tag),
            Some(("application/sdp", answer.to_string())),
        );
        // Retransmit the 2xx until the ACK arrives.
        self.calls[idx].pending_answer = Some(PendingAnswer {
            wire: resp.to_bytes(),
            dest,
            dest_port: port,
            interval_ms: scidive_sip::txn::T1_MS,
            retries: 0,
        });
        ctx.set_timer(
            SimDuration::from_millis(scidive_sip::txn::T1_MS),
            token(TOK_ANSWER, idx as u64),
        );
    }

    /// The ring timer fired: answer the pending INVITE if not CANCELled.
    fn on_ring_timer(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let Some(call) = self.calls.get_mut(idx) else {
            return;
        };
        let Some((req, src_ip)) = call.ringing_invite.take() else {
            return; // answered or cancelled
        };
        if call.dialog.state == DialogState::Terminated {
            return;
        }
        self.answer_invite(ctx, &req, src_ip, idx);
    }

    /// Handles CANCEL: aborts a still-ringing INVITE with 487.
    fn on_cancel(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        // 200 for the CANCEL itself.
        self.respond(ctx, &req, src_ip, StatusCode::OK, None, None);
        let Ok(call_id) = req.call_id().map(str::to_string) else {
            return;
        };
        let Some(idx) = self.calls.iter().position(|c| c.dialog.call_id == call_id) else {
            return;
        };
        if let Some((invite, invite_src)) = self.calls[idx].ringing_invite.take() {
            let tag = self.calls[idx].dialog.local_tag.clone();
            self.calls[idx].dialog.terminate();
            // 487 Request Terminated for the cancelled INVITE.
            self.respond(
                ctx,
                &invite,
                invite_src,
                StatusCode::REQUEST_TERMINATED,
                Some(&tag),
                None,
            );
            let call_id = self.calls[idx].dialog.call_id.clone();
            self.push_event(
                ctx,
                UaEventKind::CallTerminated {
                    call_id,
                    by_remote: true,
                },
            );
        }
    }

    fn on_ack(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage) {
        let Ok(call_id) = req.call_id().map(str::to_string) else {
            return;
        };
        if let Some(idx) = self.calls.iter().position(|c| c.dialog.call_id == call_id) {
            let newly = !self.calls[idx].established;
            self.calls[idx].established = true;
            self.calls[idx].pending_answer = None;
            self.calls[idx].dialog.confirm();
            if newly {
                let peer = self.calls[idx].dialog.remote_uri.clone();
                self.push_event(
                    ctx,
                    UaEventKind::CallEstablished {
                        call_id: call_id.clone(),
                        peer,
                    },
                );
            }
            self.start_media(ctx, idx);
        }
    }

    fn on_bye(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        let matching = self.calls.iter().position(|c| c.dialog.matches(&req));
        match matching {
            Some(idx) => {
                self.stop_media(ctx, idx);
                self.calls[idx].dialog.terminate();
                let call_id = self.calls[idx].dialog.call_id.clone();
                let local_tag = self.calls[idx].dialog.local_tag.clone();
                self.respond(ctx, &req, src_ip, StatusCode::OK, Some(&local_tag), None);
                self.push_event(
                    ctx,
                    UaEventKind::CallTerminated {
                        call_id,
                        by_remote: true,
                    },
                );
            }
            None => {
                self.respond(
                    ctx,
                    &req,
                    src_ip,
                    StatusCode::CALL_DOES_NOT_EXIST,
                    None,
                    None,
                );
            }
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, req: SipMessage, src_ip: Ipv4Addr) {
        let claimed_from = req
            .from_()
            .map(|f| f.uri)
            .unwrap_or_else(|_| SipUri::host_only("unknown"));
        let body = String::from_utf8_lossy(&req.body).to_string();
        self.push_event(
            ctx,
            UaEventKind::ImReceived {
                claimed_from,
                src_ip,
                body,
            },
        );
        let tag = self.new_tag();
        self.respond(ctx, &req, src_ip, StatusCode::OK, Some(&tag), None);
    }

    fn on_sip_response(&mut self, ctx: &mut NodeCtx<'_>, resp: SipMessage) {
        let Some(branch) = resp
            .via_top()
            .ok()
            .and_then(|v| v.branch().map(str::to_string))
        else {
            return;
        };
        let Some(pending) = self.txns.get_mut(&branch) else {
            // A retransmitted 2xx to an INVITE whose transaction we
            // already completed: the peer did not get our ACK — resend it.
            self.maybe_reack(ctx, &resp);
            return;
        };
        let Some(code) = resp.status() else {
            return;
        };
        // RFC 3261 §17.1.3: responses match a client transaction by Via
        // branch AND CSeq method. A 200 to our CANCEL carries the
        // INVITE's branch and must not complete the INVITE transaction.
        if resp.cseq().map(|c| c.method).ok() != Some(pending.txn.method()) {
            return;
        }
        pending.txn.on_response(code);
        let method = pending.txn.method();
        if code.is_provisional() {
            return;
        }
        let original = pending.msg.clone();
        self.txn_timers.remove(&pending.timer_id);
        self.txns.remove(&branch);
        match method {
            Method::Register => self.on_register_response(ctx, code, resp),
            Method::Invite => self.on_invite_response(ctx, code, resp, original),
            _ => {}
        }
    }

    /// Replays the stored ACK when the peer retransmits a 2xx-to-INVITE.
    fn maybe_reack(&mut self, ctx: &mut NodeCtx<'_>, resp: &SipMessage) {
        let is_invite_2xx = resp.status().map(|s| s.is_success()).unwrap_or(false)
            && resp.cseq().map(|c| c.method == Method::Invite).unwrap_or(false);
        if !is_invite_2xx {
            return;
        }
        let Ok(call_id) = resp.call_id().map(str::to_string) else {
            return;
        };
        let Some(idx) = self.calls.iter().position(|c| c.dialog.call_id == call_id) else {
            return;
        };
        let Some(ack) = self.calls[idx].last_ack.clone() else {
            return;
        };
        let target = self.calls[idx].dialog.remote_target.clone();
        let (dest, port) = self.request_dest(&target);
        self.send_untracked(ctx, &ack, dest, port);
    }

    fn on_register_response(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        code: StatusCode,
        resp: SipMessage,
    ) {
        if code == StatusCode::UNAUTHORIZED {
            let challenge = resp
                .headers
                .get(&HeaderName::WwwAuthenticate)
                .and_then(|v| DigestChallenge::parse(v).ok());
            match (challenge, self.reg_state, self.config.password.is_some()) {
                (Some(ch), RegState::Pending, true) => {
                    self.challenge = Some(ch);
                    self.push_event(ctx, UaEventKind::RegisterChallenged);
                    self.do_register(ctx);
                }
                _ => {
                    self.reg_state = RegState::Failed;
                    self.push_event(ctx, UaEventKind::RegisterFailed { code: code.code() });
                }
            }
        } else if code.is_success() {
            self.reg_state = RegState::Registered;
            self.push_event(ctx, UaEventKind::Registered);
        } else if code.is_final() {
            self.reg_state = RegState::Failed;
            self.push_event(ctx, UaEventKind::RegisterFailed { code: code.code() });
        }
    }

    fn on_invite_response(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        code: StatusCode,
        resp: SipMessage,
        original: SipMessage,
    ) {
        let Ok(call_id) = resp.call_id().map(str::to_string) else {
            return;
        };
        let Some(idx) = self.calls.iter().position(|c| c.dialog.call_id == call_id) else {
            return;
        };
        let was_confirmed = self.calls[idx].dialog.state == DialogState::Confirmed;
        self.calls[idx].dialog.on_invite_response(&resp);
        if code.is_success() {
            if let Some(sdp) = std::str::from_utf8(&resp.body)
                .ok()
                .and_then(|s| s.parse::<SessionDescription>().ok())
            {
                self.calls[idx].remote_media = sdp.rtp_target();
            }
            // ACK mirrors the INVITE's CSeq number with method ACK.
            let ack = self.build_ack(&original, &resp, idx);
            let target = self.calls[idx].dialog.remote_target.clone();
            let (dest, port) = self.request_dest(&target);
            self.send_untracked(ctx, &ack, dest, port);
            self.calls[idx].last_ack = Some(ack);
            if !was_confirmed {
                let peer = self.calls[idx].dialog.remote_uri.clone();
                self.push_event(
                    ctx,
                    UaEventKind::CallEstablished {
                        call_id,
                        peer,
                    },
                );
            }
            self.calls[idx].established = true;
            self.start_media(ctx, idx);
        } else if code.is_final() && !was_confirmed {
            self.calls[idx].dialog.terminate();
            self.push_event(
                ctx,
                UaEventKind::CallTerminated {
                    call_id,
                    by_remote: true,
                },
            );
        }
    }

    fn build_ack(&mut self, invite: &SipMessage, resp: &SipMessage, idx: usize) -> SipMessage {
        let branch = self.new_branch();
        let call = &self.calls[idx];
        let mut b = RequestBuilder::new(Method::Ack, call.dialog.remote_target.clone());
        if let Some(from) = invite.headers.get(&HeaderName::From) {
            b.header(HeaderName::From, from);
        }
        if let Some(to) = resp.headers.get(&HeaderName::To) {
            b.header(HeaderName::To, to);
        }
        b.call_id(call.dialog.call_id.clone());
        if let Ok(cseq) = invite.cseq() {
            b.cseq(CSeq::new(cseq.seq, Method::Ack));
        }
        b.via(Via::udp(self.sent_by(), &branch));
        b.build()
    }

    /// Retransmits our 2xx answer until the ACK arrives (cap 7 tries).
    fn on_answer_timer(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let Some(call) = self.calls.get_mut(idx) else {
            return;
        };
        if call.established {
            call.pending_answer = None;
            return;
        }
        let Some(answer) = &mut call.pending_answer else {
            return;
        };
        if answer.retries >= 7 {
            call.pending_answer = None;
            return;
        }
        answer.retries += 1;
        answer.interval_ms = (answer.interval_ms * 2).min(scidive_sip::txn::T2_MS);
        let wire = answer.wire.clone();
        let dest = answer.dest;
        let dest_port = answer.dest_port;
        let next = answer.interval_ms;
        ctx.send_udp(self.config.sip_port, dest, dest_port, wire);
        ctx.set_timer(SimDuration::from_millis(next), token(TOK_ANSWER, idx as u64));
    }

    fn on_txn_timer(&mut self, ctx: &mut NodeCtx<'_>, timer_id: u64) {
        let Some(branch) = self.txn_timers.get(&timer_id).cloned() else {
            return;
        };
        let Some(pending) = self.txns.get_mut(&branch) else {
            return;
        };
        let Some(waited) = pending.txn.next_timer_ms() else {
            return;
        };
        match pending.txn.on_timer(waited) {
            ClientTxnAction::Retransmit { next_in_ms } => {
                let wire = pending.msg.to_bytes();
                let dest = pending.dest;
                let dest_port = pending.dest_port;
                ctx.send_udp(self.config.sip_port, dest, dest_port, wire);
                ctx.set_timer(SimDuration::from_millis(next_in_ms), token(TOK_TXN, timer_id));
            }
            ClientTxnAction::Rearm { next_in_ms } => {
                ctx.set_timer(SimDuration::from_millis(next_in_ms), token(TOK_TXN, timer_id));
            }
            ClientTxnAction::TimedOut => {
                let method = pending.txn.method();
                self.txns.remove(&branch);
                self.txn_timers.remove(&timer_id);
                if method == Method::Register {
                    self.reg_state = RegState::Failed;
                    self.push_event(ctx, UaEventKind::RegisterFailed { code: 408 });
                }
            }
            ClientTxnAction::Idle => {
                self.txns.remove(&branch);
                self.txn_timers.remove(&timer_id);
            }
        }
    }
}

/// Extracts the return address from the topmost Via of a request.
fn via_return_addr(req: &SipMessage) -> Option<(Ipv4Addr, u16)> {
    let via = req.via_top().ok()?;
    let (host, port) = match via.sent_by.split_once(':') {
        Some((h, p)) => (h, p.parse().ok()?),
        None => (via.sent_by.as_str(), SIP_PORT),
    };
    Some((host.parse().ok()?, port))
}

impl Node for UserAgent {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (idx, step) in self.script.iter().enumerate() {
            ctx.set_timer(step.at, token(TOK_SCRIPT, idx as u64));
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if self.crashed {
            return;
        }
        // Host semantics: even if the NIC is in promiscuous mode (the
        // segment is a hub), the application only sees traffic addressed
        // to this host.
        if pkt.dst != self.config.ip {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port == self.config.sip_port {
            match SipMessage::parse(&udp.payload) {
                Ok(msg) if msg.is_request() => self.on_sip_request(ctx, msg, pkt.src),
                Ok(msg) => self.on_sip_response(ctx, msg),
                Err(_) => {} // not parseable as SIP; drop
            }
        } else if self.calls.iter().any(|c| udp.dst_port == c.local_rtp_port)
            || udp.dst_port == self.config.rtp_port
        {
            self.on_rtp(ctx, &udp.payload);
        }
        // RTCP (rtp_port + 1) and everything else: ignored by the client.
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tok: TimerToken) {
        if self.crashed {
            return;
        }
        let kind = tok & 0xff;
        let payload = tok >> 8;
        match kind {
            TOK_SCRIPT => {
                if let Some(step) = self.script.get(payload as usize).cloned() {
                    match step.action {
                        UaAction::Register => self.do_register(ctx),
                        UaAction::Call { to } => self.do_call(ctx, to),
                        UaAction::HangUp => self.do_hangup(ctx),
                        UaAction::SendIm { to, text } => self.do_send_im(ctx, to, text),
                        UaAction::MigrateMedia { new_rtp_port } => {
                            self.do_migrate(ctx, new_rtp_port)
                        }
                        UaAction::CancelCall => self.do_cancel(ctx),
                    }
                }
            }
            TOK_MEDIA => self.media_tick(ctx, payload as usize),
            TOK_TXN => self.on_txn_timer(ctx, payload),
            TOK_ANSWER => self.on_answer_timer(ctx, payload as usize),
            TOK_RING => self.on_ring_timer(ctx, payload as usize),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let cfg = UaConfig::new(
            "sip:alice@lab".parse().unwrap(),
            Ipv4Addr::new(10, 0, 0, 2),
            8000,
            Ipv4Addr::new(10, 0, 0, 1),
        )
        .with_password("pw")
        .fragile();
        assert_eq!(cfg.password.as_deref(), Some("pw"));
        assert!(cfg.fragile);
        assert_eq!(cfg.sip_port, SIP_PORT);
    }

    #[test]
    fn via_return_addr_parses() {
        let mut b = RequestBuilder::new(Method::Options, "sip:x@10.0.0.9".parse().unwrap());
        b.via(Via::udp("10.0.0.7:5062", "z9hG4bK1"));
        assert_eq!(
            via_return_addr(&b.build()),
            Some((Ipv4Addr::new(10, 0, 0, 7), 5062))
        );
        let mut b2 = RequestBuilder::new(Method::Options, "sip:x@10.0.0.9".parse().unwrap());
        b2.via(Via::udp("10.0.0.7", "z9hG4bK1"));
        assert_eq!(
            via_return_addr(&b2.build()),
            Some((Ipv4Addr::new(10, 0, 0, 7), SIP_PORT))
        );
    }

    #[test]
    fn token_packing() {
        let t = token(TOK_MEDIA, 7);
        assert_eq!(t & 0xff, TOK_MEDIA);
        assert_eq!(t >> 8, 7);
    }

    #[test]
    fn ua_accessors_before_start() {
        let cfg = UaConfig::new(
            "sip:alice@lab".parse().unwrap(),
            Ipv4Addr::new(10, 0, 0, 2),
            8000,
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let ua = UserAgent::new(cfg, vec![]);
        assert_eq!(ua.reg_state(), RegState::Idle);
        assert!(!ua.is_crashed());
        assert!(!ua.has_active_call());
        assert_eq!(ua.call_count(), 0);
        assert!(ua.events().is_empty());
    }
}
