//! The accounting/billing subsystem (paper §3.2).
//!
//! The paper's billing-fraud example assumes "application level software
//! for billing purposes" whose transactions the IDS can observe as a
//! trail. Here the proxy emits one UDP transaction per call start/stop to
//! an accounting server; the wire format is a single text line so the
//! IDS Distiller can decode it into accounting footprints.

use scidive_netsim::node::{Node, NodeCtx};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;
use std::str::FromStr;

/// UDP port the accounting server listens on.
pub const ACCT_PORT: u16 = 2427;

/// Kind of accounting transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcctKind {
    /// A billable call started.
    Start,
    /// The call stopped.
    Stop,
}

/// One accounting transaction as sent on the wire.
///
/// Wire format: `ACCT START <caller> <callee> <call-id>` — one line of
/// ASCII so that the IDS can parse it with no shared state.
///
/// # Examples
///
/// ```
/// use scidive_voip::accounting::{AcctKind, AcctTxn};
///
/// let txn = AcctTxn::new(AcctKind::Start, "alice@lab", "bob@lab", "c1");
/// let wire = txn.to_wire();
/// assert_eq!(wire.parse::<AcctTxn>()?, txn);
/// # Ok::<(), scidive_voip::accounting::ParseAcctError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcctTxn {
    /// Start or stop.
    pub kind: AcctKind,
    /// Caller's address-of-record (who gets billed).
    pub caller: String,
    /// Callee's address-of-record.
    pub callee: String,
    /// The SIP Call-ID this transaction refers to.
    pub call_id: String,
}

impl AcctTxn {
    /// Creates a transaction.
    pub fn new(
        kind: AcctKind,
        caller: impl Into<String>,
        callee: impl Into<String>,
        call_id: impl Into<String>,
    ) -> AcctTxn {
        AcctTxn {
            kind,
            caller: caller.into(),
            callee: callee.into(),
            call_id: call_id.into(),
        }
    }

    /// Serializes to the one-line wire form.
    pub fn to_wire(&self) -> String {
        let kind = match self.kind {
            AcctKind::Start => "START",
            AcctKind::Stop => "STOP",
        };
        format!("ACCT {kind} {} {} {}", self.caller, self.callee, self.call_id)
    }
}

/// Error parsing an accounting transaction line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAcctError {
    detail: String,
}

impl fmt::Display for ParseAcctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accounting transaction: {}", self.detail)
    }
}

impl std::error::Error for ParseAcctError {}

impl FromStr for AcctTxn {
    type Err = ParseAcctError;

    fn from_str(s: &str) -> Result<AcctTxn, ParseAcctError> {
        let parts: Vec<&str> = s.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "ACCT" {
            return Err(ParseAcctError {
                detail: format!("expected `ACCT KIND caller callee call-id`, got `{s}`"),
            });
        }
        let kind = match parts[1] {
            "START" => AcctKind::Start,
            "STOP" => AcctKind::Stop,
            other => {
                return Err(ParseAcctError {
                    detail: format!("unknown kind `{other}`"),
                })
            }
        };
        Ok(AcctTxn {
            kind,
            caller: parts[2].to_string(),
            callee: parts[3].to_string(),
            call_id: parts[4].to_string(),
        })
    }
}

/// A closed or open call detail record held by the accounting server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Billed party.
    pub caller: String,
    /// Called party.
    pub callee: String,
    /// Call-ID.
    pub call_id: String,
    /// When the call started (billing clock).
    pub started: SimTime,
    /// When the call stopped, if it has.
    pub stopped: Option<SimTime>,
}

/// The accounting server node: receives transactions, keeps CDRs.
#[derive(Debug, Default)]
pub struct AccountingServer {
    records: Vec<CallRecord>,
    /// Lines that failed to parse (diagnostics).
    pub malformed: u64,
}

impl AccountingServer {
    /// Creates an empty server.
    pub fn new() -> AccountingServer {
        AccountingServer::default()
    }

    /// All call records, in arrival order.
    pub fn records(&self) -> &[CallRecord] {
        &self.records
    }

    /// Records billed to `caller` (the billing-fraud victim check).
    pub fn billed_to(&self, caller: &str) -> Vec<&CallRecord> {
        self.records.iter().filter(|r| r.caller == caller).collect()
    }

    fn apply(&mut self, now: SimTime, txn: AcctTxn) {
        match txn.kind {
            AcctKind::Start => self.records.push(CallRecord {
                caller: txn.caller,
                callee: txn.callee,
                call_id: txn.call_id,
                started: now,
                stopped: None,
            }),
            AcctKind::Stop => {
                if let Some(rec) = self
                    .records
                    .iter_mut()
                    .find(|r| r.call_id == txn.call_id && r.stopped.is_none())
                {
                    rec.stopped = Some(now);
                }
            }
        }
    }
}

impl Node for AccountingServer {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        let Ok(udp) = pkt.decode_udp() else {
            self.malformed += 1;
            return;
        };
        if udp.dst_port != ACCT_PORT {
            return;
        }
        match std::str::from_utf8(&udp.payload)
            .map_err(|_| ())
            .and_then(|s| s.parse::<AcctTxn>().map_err(|_| ()))
        {
            Ok(txn) => self.apply(ctx.now(), txn),
            Err(()) => self.malformed += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for kind in [AcctKind::Start, AcctKind::Stop] {
            let txn = AcctTxn::new(kind, "a@lab", "b@lab", "call-9");
            assert_eq!(txn.to_wire().parse::<AcctTxn>().unwrap(), txn);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<AcctTxn>().is_err());
        assert!("ACCT START a b".parse::<AcctTxn>().is_err());
        assert!("ACCT PAUSE a b c".parse::<AcctTxn>().is_err());
        assert!("NOPE START a b c".parse::<AcctTxn>().is_err());
    }

    #[test]
    fn start_stop_closes_record() {
        let mut srv = AccountingServer::new();
        srv.apply(
            SimTime::from_secs(1),
            AcctTxn::new(AcctKind::Start, "a@lab", "b@lab", "c1"),
        );
        srv.apply(
            SimTime::from_secs(5),
            AcctTxn::new(AcctKind::Stop, "a@lab", "b@lab", "c1"),
        );
        assert_eq!(srv.records().len(), 1);
        let rec = &srv.records()[0];
        assert_eq!(rec.started, SimTime::from_secs(1));
        assert_eq!(rec.stopped, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn stop_without_start_is_ignored() {
        let mut srv = AccountingServer::new();
        srv.apply(
            SimTime::from_secs(1),
            AcctTxn::new(AcctKind::Stop, "a@lab", "b@lab", "c1"),
        );
        assert!(srv.records().is_empty());
    }

    #[test]
    fn billed_to_filters_by_caller() {
        let mut srv = AccountingServer::new();
        srv.apply(
            SimTime::ZERO,
            AcctTxn::new(AcctKind::Start, "victim@lab", "far@lab", "c1"),
        );
        srv.apply(
            SimTime::ZERO,
            AcctTxn::new(AcctKind::Start, "a@lab", "b@lab", "c2"),
        );
        assert_eq!(srv.billed_to("victim@lab").len(), 1);
        assert_eq!(srv.billed_to("nobody@lab").len(), 0);
    }

    #[test]
    fn duplicate_stop_ignored() {
        let mut srv = AccountingServer::new();
        srv.apply(
            SimTime::ZERO,
            AcctTxn::new(AcctKind::Start, "a@lab", "b@lab", "c1"),
        );
        srv.apply(
            SimTime::from_secs(2),
            AcctTxn::new(AcctKind::Stop, "a@lab", "b@lab", "c1"),
        );
        srv.apply(
            SimTime::from_secs(9),
            AcctTxn::new(AcctKind::Stop, "a@lab", "b@lab", "c1"),
        );
        assert_eq!(srv.records()[0].stopped, Some(SimTime::from_secs(2)));
    }
}
