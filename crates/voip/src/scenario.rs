//! Testbed construction: the paper's Fig. 4 topology in one builder.
//!
//! Proxy, two clients (A = the monitored endpoint, B = the peer), an
//! accounting server, and a promiscuous tap on the hub where the IDS
//! watches. Attack crates add their attacker node before running.

use crate::accounting::AccountingServer;
use crate::events::UaEvent;
use crate::proxy::{Proxy, ProxyConfig, ProxyStats};
use crate::ua::{ScriptStep, UaAction, UaConfig, UserAgent};
use scidive_netsim::link::LinkParams;
use scidive_netsim::node::{Collector, CollectorHandle, Node, NodeId};
use scidive_netsim::sim::{NodeConfig, Simulator};
use scidive_netsim::time::SimDuration;
use scidive_sip::uri::SipUri;
use std::net::Ipv4Addr;

/// Fixed addressing of the standard testbed.
#[derive(Debug, Clone)]
pub struct Endpoints {
    /// SIP domain.
    pub domain: String,
    /// Proxy/registrar address.
    pub proxy_ip: Ipv4Addr,
    /// Client A (the monitored endpoint).
    pub a_ip: Ipv4Addr,
    /// Client B.
    pub b_ip: Ipv4Addr,
    /// The attacker's address (for attack crates).
    pub attacker_ip: Ipv4Addr,
    /// Accounting server address.
    pub acct_ip: Ipv4Addr,
    /// The IDS tap address.
    pub tap_ip: Ipv4Addr,
    /// A's RTP port.
    pub a_rtp: u16,
    /// B's RTP port.
    pub b_rtp: u16,
}

impl Default for Endpoints {
    fn default() -> Endpoints {
        Endpoints {
            domain: "lab".to_string(),
            proxy_ip: Ipv4Addr::new(10, 0, 0, 1),
            a_ip: Ipv4Addr::new(10, 0, 0, 2),
            b_ip: Ipv4Addr::new(10, 0, 0, 3),
            attacker_ip: Ipv4Addr::new(10, 0, 0, 66),
            acct_ip: Ipv4Addr::new(10, 0, 0, 4),
            tap_ip: Ipv4Addr::new(10, 0, 0, 250),
            a_rtp: 8000,
            b_rtp: 9000,
        }
    }
}

impl Endpoints {
    /// A's address of record.
    pub fn a_aor(&self) -> SipUri {
        SipUri::new("alice", self.domain.clone())
    }

    /// B's address of record.
    pub fn b_aor(&self) -> SipUri {
        SipUri::new("bob", self.domain.clone())
    }
}

/// Builder for the standard testbed.
#[derive(Debug)]
pub struct TestbedBuilder {
    seed: u64,
    endpoints: Endpoints,
    link: LinkParams,
    a_link: Option<LinkParams>,
    b_link: Option<LinkParams>,
    auth: Option<Vec<(String, String)>>,
    billing_vuln: bool,
    a_fragile: bool,
    a_crash_threshold: u64,
    a_script: Vec<ScriptStep>,
    b_script: Vec<ScriptStep>,
}

impl TestbedBuilder {
    /// Starts a builder with the given seed.
    pub fn new(seed: u64) -> TestbedBuilder {
        TestbedBuilder {
            seed,
            endpoints: Endpoints::default(),
            link: LinkParams::lan(),
            a_link: None,
            b_link: None,
            auth: None,
            billing_vuln: false,
            a_fragile: false,
            a_crash_threshold: 5,
            a_script: Vec::new(),
            b_script: Vec::new(),
        }
    }

    /// Sets the default link for every node.
    pub fn link(mut self, link: LinkParams) -> TestbedBuilder {
        self.link = link;
        self
    }

    /// Overrides A's link (the receiver-side delay in §4.3 experiments).
    pub fn a_link(mut self, link: LinkParams) -> TestbedBuilder {
        self.a_link = Some(link);
        self
    }

    /// Overrides B's link.
    pub fn b_link(mut self, link: LinkParams) -> TestbedBuilder {
        self.b_link = Some(link);
        self
    }

    /// Requires digest auth at the registrar with these accounts.
    pub fn with_auth(mut self, accounts: &[(&str, &str)]) -> TestbedBuilder {
        self.auth = Some(
            accounts
                .iter()
                .map(|(u, p)| (u.to_string(), p.to_string()))
                .collect(),
        );
        self
    }

    /// Enables the §3.2 billing vulnerability at the proxy.
    pub fn with_billing_vuln(mut self) -> TestbedBuilder {
        self.billing_vuln = true;
        self
    }

    /// Makes client A fragile (crashes under RTP corruption).
    pub fn a_fragile(mut self, threshold: u64) -> TestbedBuilder {
        self.a_fragile = true;
        self.a_crash_threshold = threshold;
        self
    }

    /// Appends steps to A's script.
    pub fn a_script(mut self, script: Vec<ScriptStep>) -> TestbedBuilder {
        self.a_script.extend(script);
        self
    }

    /// Appends steps to B's script.
    pub fn b_script(mut self, script: Vec<ScriptStep>) -> TestbedBuilder {
        self.b_script.extend(script);
        self
    }

    /// Both clients register early and A calls B at `call_at`; A hangs up
    /// at `hangup_at` if given.
    pub fn standard_call(
        mut self,
        call_at: SimDuration,
        hangup_at: Option<SimDuration>,
    ) -> TestbedBuilder {
        let b_aor = self.endpoints.b_aor();
        self.a_script
            .push(ScriptStep::new(SimDuration::from_millis(10), UaAction::Register));
        self.b_script
            .push(ScriptStep::new(SimDuration::from_millis(20), UaAction::Register));
        self.a_script
            .push(ScriptStep::new(call_at, UaAction::Call { to: b_aor }));
        if let Some(at) = hangup_at {
            self.a_script.push(ScriptStep::new(at, UaAction::HangUp));
        }
        self
    }

    /// Builds the simulator and nodes.
    pub fn build(self) -> Testbed {
        let ep = self.endpoints.clone();
        let mut sim = Simulator::new(self.seed);

        let mut proxy_cfg = ProxyConfig::new(ep.proxy_ip, ep.domain.clone())
            .with_accounting(ep.acct_ip);
        if let Some(accounts) = &self.auth {
            let pairs: Vec<(&str, &str)> = accounts
                .iter()
                .map(|(u, p)| (u.as_str(), p.as_str()))
                .collect();
            proxy_cfg = proxy_cfg.with_auth(&pairs);
        }
        if self.billing_vuln {
            proxy_cfg = proxy_cfg.with_billing_vuln();
        }
        let proxy = sim.add_node(
            NodeConfig::new("proxy", ep.proxy_ip).with_link(self.link),
            Box::new(Proxy::new(proxy_cfg)),
        );

        let acct = sim.add_node(
            NodeConfig::new("acct", ep.acct_ip).with_link(self.link),
            Box::new(AccountingServer::new()),
        );

        let password_of = |user: &str| {
            self.auth.as_ref().and_then(|accounts| {
                accounts
                    .iter()
                    .find(|(u, _)| u == user)
                    .map(|(_, p)| p.clone())
            })
        };

        let mut a_cfg = UaConfig::new(ep.a_aor(), ep.a_ip, ep.a_rtp, ep.proxy_ip);
        if let Some(pw) = password_of("alice") {
            a_cfg = a_cfg.with_password(pw);
        }
        a_cfg.fragile = self.a_fragile;
        a_cfg.crash_threshold = self.a_crash_threshold;
        let a = sim.add_node(
            NodeConfig::new("ua-a", ep.a_ip).with_link(self.a_link.unwrap_or(self.link)),
            Box::new(UserAgent::new(a_cfg, self.a_script)),
        );

        let mut b_cfg = UaConfig::new(ep.b_aor(), ep.b_ip, ep.b_rtp, ep.proxy_ip);
        if let Some(pw) = password_of("bob") {
            b_cfg = b_cfg.with_password(pw);
        }
        let b = sim.add_node(
            NodeConfig::new("ua-b", ep.b_ip).with_link(self.b_link.unwrap_or(self.link)),
            Box::new(UserAgent::new(b_cfg, self.b_script)),
        );

        let collector = Collector::new();
        let tap = collector.handle();
        let tap_node = sim.add_node(
            NodeConfig::new("tap", ep.tap_ip)
                .with_link(self.link)
                .promiscuous(),
            Box::new(collector),
        );

        Testbed {
            sim,
            endpoints: ep,
            proxy,
            acct,
            a,
            b,
            tap_node,
            tap,
        }
    }
}

/// The built testbed.
pub struct Testbed {
    /// The simulator; run it, add attacker nodes, inspect the trace.
    pub sim: Simulator,
    /// Addressing.
    pub endpoints: Endpoints,
    /// Proxy node id.
    pub proxy: NodeId,
    /// Accounting server node id.
    pub acct: NodeId,
    /// Client A node id.
    pub a: NodeId,
    /// Client B node id.
    pub b: NodeId,
    /// Tap node id.
    pub tap_node: NodeId,
    /// Live handle to the tap's captured frames (the IDS input).
    pub tap: CollectorHandle,
}

impl Testbed {
    /// Adds an extra node (attacker, extra client) to the segment.
    pub fn add_node(
        &mut self,
        name: &str,
        ip: Ipv4Addr,
        link: LinkParams,
        node: Box<dyn Node>,
    ) -> NodeId {
        let mut cfg = NodeConfig::new(name, ip).with_link(link);
        // Attackers sniff the hub.
        cfg = cfg.promiscuous();
        self.sim.add_node(cfg, node)
    }

    /// Runs the simulation for a span.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Client A's event log.
    pub fn a_events(&self) -> Vec<UaEvent> {
        self.ua_events(self.a)
    }

    /// Client B's event log.
    pub fn b_events(&self) -> Vec<UaEvent> {
        self.ua_events(self.b)
    }

    /// Any UA's event log.
    pub fn ua_events(&self, id: NodeId) -> Vec<UaEvent> {
        self.sim
            .node_as::<UserAgent>(id)
            .map(|ua| ua.events().to_vec())
            .unwrap_or_default()
    }

    /// A reference to a UA node.
    pub fn ua(&self, id: NodeId) -> Option<&UserAgent> {
        self.sim.node_as::<UserAgent>(id)
    }

    /// Proxy counters.
    pub fn proxy_stats(&self) -> ProxyStats {
        self.sim
            .node_as::<Proxy>(self.proxy)
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// The accounting server's call records.
    pub fn cdrs(&self) -> Vec<crate::accounting::CallRecord> {
        self.sim
            .node_as::<AccountingServer>(self.acct)
            .map(|a| a.records().to_vec())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::UaEventKind;
    use crate::ua::RegState;

    #[test]
    fn registration_without_auth() {
        let mut tb = TestbedBuilder::new(1)
            .a_script(vec![ScriptStep::new(
                SimDuration::from_millis(10),
                UaAction::Register,
            )])
            .build();
        tb.run_for(SimDuration::from_secs(2));
        let ua = tb.ua(tb.a).unwrap();
        assert_eq!(ua.reg_state(), RegState::Registered);
        assert_eq!(tb.proxy_stats().registrations, 1);
        assert_eq!(tb.proxy_stats().challenges, 0);
    }

    #[test]
    fn registration_with_digest_challenge() {
        let mut tb = TestbedBuilder::new(2)
            .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
            .a_script(vec![ScriptStep::new(
                SimDuration::from_millis(10),
                UaAction::Register,
            )])
            .build();
        tb.run_for(SimDuration::from_secs(2));
        let ua = tb.ua(tb.a).unwrap();
        assert_eq!(ua.reg_state(), RegState::Registered);
        let stats = tb.proxy_stats();
        assert_eq!(stats.challenges, 1);
        assert_eq!(stats.registrations, 1);
        assert_eq!(stats.auth_failures, 0);
        assert!(tb
            .a_events()
            .iter()
            .any(|e| e.kind == UaEventKind::RegisterChallenged));
    }

    #[test]
    fn full_call_with_media_and_teardown() {
        let mut tb = TestbedBuilder::new(3)
            .standard_call(
                SimDuration::from_millis(500),
                Some(SimDuration::from_millis(3_000)),
            )
            .build();
        tb.run_for(SimDuration::from_secs(5));

        let a_events = tb.a_events();
        let b_events = tb.b_events();
        assert!(a_events
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. })));
        assert!(b_events
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. })));
        assert!(a_events
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::MediaStarted { .. })));
        assert!(b_events
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::MediaStarted { .. })));
        // A hung up: terminated locally; B sees remote teardown.
        assert!(a_events.iter().any(
            |e| matches!(&e.kind, UaEventKind::CallTerminated { by_remote: false, .. })
        ));
        assert!(b_events.iter().any(
            |e| matches!(&e.kind, UaEventKind::CallTerminated { by_remote: true, .. })
        ));
        // Accounting: one record, closed.
        let cdrs = tb.cdrs();
        assert_eq!(cdrs.len(), 1);
        assert_eq!(cdrs[0].caller, "alice@lab");
        assert_eq!(cdrs[0].callee, "bob@lab");
        assert!(cdrs[0].stopped.is_some());
        // Media actually flowed both ways: ~2.5 s of 20 ms frames each.
        let rtp_to_a = tb.sim.trace().filter_udp_port(tb.endpoints.a_rtp).len();
        let rtp_to_b = tb.sim.trace().filter_udp_port(tb.endpoints.b_rtp).len();
        assert!(rtp_to_a > 50, "rtp_to_a={rtp_to_a}");
        assert!(rtp_to_b > 50, "rtp_to_b={rtp_to_b}");
    }

    #[test]
    fn im_exchange() {
        let ep = Endpoints::default();
        let mut tb = TestbedBuilder::new(4)
            .a_script(vec![ScriptStep::new(
                SimDuration::from_millis(10),
                UaAction::Register,
            )])
            .b_script(vec![
                ScriptStep::new(SimDuration::from_millis(20), UaAction::Register),
                ScriptStep::new(
                    SimDuration::from_millis(500),
                    UaAction::SendIm {
                        to: ep.a_aor(),
                        text: "hello alice".to_string(),
                    },
                ),
            ])
            .build();
        tb.run_for(SimDuration::from_secs(2));
        let ims: Vec<_> = tb
            .a_events()
            .iter()
            .filter_map(|e| match &e.kind {
                UaEventKind::ImReceived {
                    claimed_from,
                    src_ip,
                    body,
                } => Some((claimed_from.clone(), *src_ip, body.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(ims.len(), 1);
        assert_eq!(ims[0].0.aor(), "bob@lab");
        // Routed via proxy, so the network source is the proxy's IP.
        assert_eq!(ims[0].1, tb.endpoints.proxy_ip);
        assert_eq!(ims[0].2, "hello alice");
    }

    #[test]
    fn genuine_media_migration() {
        let mut tb = TestbedBuilder::new(5)
            .standard_call(SimDuration::from_millis(500), None)
            .b_script(vec![ScriptStep::new(
                SimDuration::from_millis(2_000),
                UaAction::MigrateMedia { new_rtp_port: 9100 },
            )])
            .build();
        tb.run_for(SimDuration::from_secs(4));
        // A retargeted its outbound media to B's new port.
        let retargets: Vec<_> = tb
            .a_events()
            .iter()
            .filter_map(|e| match &e.kind {
                UaEventKind::MediaRetargeted { port, .. } => Some(*port),
                _ => None,
            })
            .collect();
        assert!(retargets.contains(&9100), "retargets={retargets:?}");
        // RTP flowed to the new port.
        assert!(!tb.sim.trace().filter_udp_port(9100).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut tb = TestbedBuilder::new(seed)
                .standard_call(
                    SimDuration::from_millis(500),
                    Some(SimDuration::from_millis(2_000)),
                )
                .build();
            tb.run_for(SimDuration::from_secs(3));
            tb.sim.trace().len()
        };
        assert_eq!(run(7), run(7));
    }
}

#[cfg(test)]
mod ringing_tests {
    use super::*;
    use crate::events::UaEventKind;
    use crate::ua::UaConfig;
    use scidive_netsim::sim::{NodeConfig, Simulator};

    /// Builds a testbed where B rings before answering.
    fn ringing_testbed(seed: u64, ring_ms: u64, cancel_at: Option<u64>) -> Testbed {
        let ep = Endpoints::default();
        let mut sim = Simulator::new(seed);
        let proxy = sim.add_node(
            NodeConfig::new("proxy", ep.proxy_ip).with_link(LinkParams::lan()),
            Box::new(crate::proxy::Proxy::new(
                crate::proxy::ProxyConfig::new(ep.proxy_ip, ep.domain.clone())
                    .with_accounting(ep.acct_ip),
            )),
        );
        let acct = sim.add_node(
            NodeConfig::new("acct", ep.acct_ip).with_link(LinkParams::lan()),
            Box::new(AccountingServer::new()),
        );
        let mut a_script = vec![
            ScriptStep::new(SimDuration::from_millis(10), UaAction::Register),
            ScriptStep::new(
                SimDuration::from_millis(500),
                UaAction::Call { to: ep.b_aor() },
            ),
        ];
        if let Some(at) = cancel_at {
            a_script.push(ScriptStep::new(
                SimDuration::from_millis(at),
                UaAction::CancelCall,
            ));
        }
        let a = sim.add_node(
            NodeConfig::new("ua-a", ep.a_ip).with_link(LinkParams::lan()),
            Box::new(UserAgent::new(
                UaConfig::new(ep.a_aor(), ep.a_ip, ep.a_rtp, ep.proxy_ip),
                a_script,
            )),
        );
        let b = sim.add_node(
            NodeConfig::new("ua-b", ep.b_ip).with_link(LinkParams::lan()),
            Box::new(UserAgent::new(
                UaConfig::new(ep.b_aor(), ep.b_ip, ep.b_rtp, ep.proxy_ip)
                    .with_answer_delay(SimDuration::from_millis(ring_ms)),
                vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)],
            )),
        );
        let collector = Collector::new();
        let tap = collector.handle();
        let tap_node = sim.add_node(
            NodeConfig::new("tap", ep.tap_ip)
                .with_link(LinkParams::lan())
                .promiscuous(),
            Box::new(collector),
        );
        Testbed {
            sim,
            endpoints: ep,
            proxy,
            acct,
            a,
            b,
            tap_node,
            tap,
        }
    }

    #[test]
    fn ringing_call_answers_after_delay() {
        let mut tb = ringing_testbed(901, 800, None);
        tb.run_for(SimDuration::from_secs(4));
        // The call established — after the ring delay, not before.
        let established_at = tb
            .a_events()
            .iter()
            .find_map(|e| {
                matches!(e.kind, UaEventKind::CallEstablished { .. }).then_some(e.time)
            })
            .expect("call established");
        assert!(
            established_at >= scidive_netsim::time::SimTime::from_millis(1_300),
            "answered at {established_at}, before the 800 ms ring"
        );
        // 180 Ringing was on the wire.
        let ringing = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.packet
                    .decode_udp()
                    .ok()
                    .map(|u| u.payload.starts_with(b"SIP/2.0 180"))
                    .unwrap_or(false)
            })
            .count();
        assert!(ringing >= 1, "no 180 Ringing seen");
    }

    #[test]
    fn cancel_during_ring_aborts_with_487() {
        // A cancels at 700 ms, mid-ring (B would answer at ~1300 ms).
        let mut tb = ringing_testbed(902, 800, Some(700));
        tb.run_for(SimDuration::from_secs(4));
        // No call established on either side.
        assert!(!tb
            .a_events()
            .iter()
            .any(|e| matches!(e.kind, UaEventKind::CallEstablished { .. })));
        assert!(!tb.ua(tb.b).unwrap().has_active_call());
        // The 487 travelled back.
        let terminated = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.packet
                    .decode_udp()
                    .ok()
                    .map(|u| u.payload.starts_with(b"SIP/2.0 487"))
                    .unwrap_or(false)
            })
            .count();
        assert!(terminated >= 1, "no 487 Request Terminated seen");
        // No media ever flowed.
        assert!(tb.sim.trace().filter_udp_port(tb.endpoints.a_rtp).is_empty());
        assert!(tb.sim.trace().filter_udp_port(tb.endpoints.b_rtp).is_empty());
        // And no billing record was opened.
        assert!(tb.cdrs().is_empty());
    }
}
