//! Mass-dialog traffic synthesizer for capacity testing.
//!
//! The [`scenario::TestbedBuilder`](crate::scenario::TestbedBuilder)
//! testbed is faithful but heavy: every participant is a scheduled
//! [`UserAgent`](crate::ua::UserAgent) node with retransmission timers
//! and a media stream. Driving the IDS with hundreds of thousands of
//! *concurrent* dialogs that way would cost a UA object (and a timer
//! wheel entry) per dialog. This module instead stamps the wire bytes of
//! complete, well-formed dialogs straight from templates:
//!
//! * per dialog, three frames — `INVITE` → `200 OK` → `BYE` — which is
//!   exactly what the IDS session plane needs to see a call established
//!   and torn down;
//! * interleaved registration churn — `REGISTER` → `401` pairs from a
//!   rotating pool of distinct source addresses — feeding the identity
//!   plane's flood windows without ever crossing the flood threshold.
//!
//! The whole schedule is an [`Iterator`] with O(1) state: five
//! internally monotone frame streams (INVITEs, 200s, REGISTERs, 401s,
//! BYEs) merged on the fly by timestamp, so a million-dialog capture is
//! produced in time order without ever materializing it. Everything is
//! derived from dialog indices — no RNG, no wall clock — so a given
//! [`SynthConfig`] always yields the identical byte stream.
//!
//! # Examples
//!
//! ```
//! use scidive_voip::synth::SynthConfig;
//!
//! let cfg = SynthConfig::load(1_000, 100);
//! let frames: Vec<_> = cfg.stream().collect();
//! assert_eq!(frames.len() as u64, cfg.total_frames());
//! // Time-ordered, ready for Scidive::on_frame / process_capture.
//! assert!(frames.windows(2).all(|w| w[0].0 <= w[1].0));
//! ```

use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// The proxy/registrar address every synthetic frame converses with.
pub const SYNTH_PROXY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// SIP port used on both sides of every synthetic frame.
pub const SYNTH_SIP_PORT: u16 = 5060;

/// Shape of a synthetic load run.
///
/// `hold / spacing` dialogs are concurrently established at any instant
/// once the ramp-up completes; [`SynthConfig::load`] picks `spacing` and
/// `hold` from a target concurrency directly.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total dialogs stamped over the run.
    pub dialogs: u64,
    /// Gap between consecutive dialog starts.
    pub spacing: SimDuration,
    /// INVITE → 200 answer delay (kept below `spacing` has no benefit;
    /// streams are merged by timestamp either way).
    pub answer_delay: SimDuration,
    /// Dialog duration: the BYE lands this long after the INVITE.
    pub hold: SimDuration,
    /// Caller population; dialog `i` is placed by caller `i % callers`,
    /// and each caller always dials its own dedicated callee (so the
    /// benign load never looks like a SPIT fan-out).
    pub callers: u32,
    /// One REGISTER/401 churn pair per this many dialog starts
    /// (0 disables churn).
    pub churn_every: u64,
    /// Distinct churn source addresses, cycled round-robin. Sized so
    /// that one source's pairs recur far apart: with the defaults a
    /// source re-registers every `churn_every * churn_sources` dialog
    /// starts, far under the identity plane's flood threshold.
    pub churn_sources: u32,
    /// Virtual time of the first frame.
    pub start: SimTime,
}

impl SynthConfig {
    /// A load profile targeting roughly `concurrent` simultaneously
    /// established dialogs: starts spaced 1 ms apart, each held for
    /// `concurrent` ms.
    pub fn load(dialogs: u64, concurrent: u64) -> SynthConfig {
        SynthConfig {
            dialogs,
            spacing: SimDuration::from_millis(1),
            answer_delay: SimDuration::from_micros(200),
            hold: SimDuration::from_millis(concurrent.max(1)),
            callers: 4096,
            churn_every: 8,
            churn_sources: 1024,
            start: SimTime::from_secs(1),
        }
    }

    /// Dialogs established at once in steady state.
    pub fn concurrency(&self) -> u64 {
        let spacing = self.spacing.as_micros().max(1);
        self.hold.as_micros() / spacing
    }

    /// Number of REGISTER/401 churn pairs in the run.
    pub fn churn_pairs(&self) -> u64 {
        self.dialogs.checked_div(self.churn_every).unwrap_or(0)
    }

    /// Total frames the stream will yield: three per dialog plus two
    /// per churn pair.
    pub fn total_frames(&self) -> u64 {
        self.dialogs * 3 + self.churn_pairs() * 2
    }

    /// Virtual time spanned, from the first INVITE to the last BYE.
    pub fn span(&self) -> SimDuration {
        if self.dialogs == 0 {
            return SimDuration::from_micros(0);
        }
        SimDuration::from_micros(
            self.spacing.as_micros() * (self.dialogs - 1) + self.hold.as_micros(),
        )
    }

    /// The frame stream, in timestamp order.
    pub fn stream(&self) -> SynthTraffic {
        SynthTraffic {
            cfg: self.clone(),
            invites: 0,
            oks: 0,
            byes: 0,
            registers: 0,
            unauthorized: 0,
        }
    }

    fn dialog_start(&self, i: u64) -> SimTime {
        self.start + SimDuration::from_micros(i * self.spacing.as_micros())
    }

    /// Churn pair `j` fires a third of a spacing after dialog start
    /// `j * churn_every`, staggered off the dialog frames.
    fn churn_start(&self, j: u64) -> SimTime {
        self.dialog_start(j * self.churn_every)
            + SimDuration::from_micros(self.spacing.as_micros() / 3)
    }
}

/// Caller `idx`'s address: a /10-ish pool under `10.64.0.0`, distinct
/// from the proxy and the churn pool for any `idx < 2^22`.
fn caller_ip(idx: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 64 | ((idx >> 16) as u8 & 63), (idx >> 8) as u8, idx as u8)
}

/// Churn source `idx`'s address, pooled under `10.128.0.0`.
fn churn_ip(idx: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 128 | ((idx >> 16) as u8 & 63), (idx >> 8) as u8, idx as u8)
}

/// Stamps dialog `i`'s INVITE bytes.
fn invite(cfg: &SynthConfig, i: u64) -> Vec<u8> {
    let c = (i % u64::from(cfg.callers)) as u32;
    format!(
        "INVITE sip:d{c}@lab SIP/2.0\r\n\
         Via: SIP/2.0/UDP {ip}:{port};branch=z9hG4bK-syn-{i}\r\n\
         From: <sip:c{c}@lab>;tag=syn-{i}\r\n\
         To: <sip:d{c}@lab>\r\n\
         Call-ID: syn-{i}@lab\r\n\
         CSeq: 1 INVITE\r\n\
         Max-Forwards: 70\r\n\
         Content-Length: 0\r\n\r\n",
        ip = caller_ip(c),
        port = SYNTH_SIP_PORT,
    )
    .into_bytes()
}

/// Stamps the 200 OK answering dialog `i`'s INVITE.
fn ok(cfg: &SynthConfig, i: u64) -> Vec<u8> {
    let c = (i % u64::from(cfg.callers)) as u32;
    format!(
        "SIP/2.0 200 OK\r\n\
         Via: SIP/2.0/UDP {ip}:{port};branch=z9hG4bK-syn-{i}\r\n\
         From: <sip:c{c}@lab>;tag=syn-{i}\r\n\
         To: <sip:d{c}@lab>;tag=syn-ok-{i}\r\n\
         Call-ID: syn-{i}@lab\r\n\
         CSeq: 1 INVITE\r\n\
         Content-Length: 0\r\n\r\n",
        ip = caller_ip(c),
        port = SYNTH_SIP_PORT,
    )
    .into_bytes()
}

/// Stamps dialog `i`'s closing BYE.
fn bye(cfg: &SynthConfig, i: u64) -> Vec<u8> {
    let c = (i % u64::from(cfg.callers)) as u32;
    format!(
        "BYE sip:d{c}@lab SIP/2.0\r\n\
         Via: SIP/2.0/UDP {ip}:{port};branch=z9hG4bK-syn-bye-{i}\r\n\
         From: <sip:c{c}@lab>;tag=syn-{i}\r\n\
         To: <sip:d{c}@lab>;tag=syn-ok-{i}\r\n\
         Call-ID: syn-{i}@lab\r\n\
         CSeq: 2 BYE\r\n\
         Max-Forwards: 70\r\n\
         Content-Length: 0\r\n\r\n",
        ip = caller_ip(c),
        port = SYNTH_SIP_PORT,
    )
    .into_bytes()
}

/// Stamps churn pair `j`'s REGISTER.
fn register(cfg: &SynthConfig, j: u64) -> Vec<u8> {
    let s = (j % u64::from(cfg.churn_sources)) as u32;
    format!(
        "REGISTER sip:lab SIP/2.0\r\n\
         Via: SIP/2.0/UDP {ip}:{port};branch=z9hG4bK-reg-{j}\r\n\
         From: <sip:r{s}@lab>;tag=reg-{j}\r\n\
         To: <sip:r{s}@lab>\r\n\
         Call-ID: reg-{s}@lab\r\n\
         CSeq: {cseq} REGISTER\r\n\
         Max-Forwards: 70\r\n\
         Expires: 3600\r\n\
         Content-Length: 0\r\n\r\n",
        ip = churn_ip(s),
        port = SYNTH_SIP_PORT,
        cseq = j / u64::from(cfg.churn_sources) + 1,
    )
    .into_bytes()
}

/// Stamps the 401 challenging churn pair `j`'s REGISTER.
fn unauthorized(cfg: &SynthConfig, j: u64) -> Vec<u8> {
    let s = (j % u64::from(cfg.churn_sources)) as u32;
    format!(
        "SIP/2.0 401 Unauthorized\r\n\
         Via: SIP/2.0/UDP {ip}:{port};branch=z9hG4bK-reg-{j}\r\n\
         From: <sip:r{s}@lab>;tag=reg-{j}\r\n\
         To: <sip:r{s}@lab>;tag=ch-{j}\r\n\
         Call-ID: reg-{s}@lab\r\n\
         CSeq: {cseq} REGISTER\r\n\
         Content-Length: 0\r\n\r\n",
        ip = churn_ip(s),
        port = SYNTH_SIP_PORT,
        cseq = j / u64::from(cfg.churn_sources) + 1,
    )
    .into_bytes()
}

/// The merged frame stream. See the module docs; obtained from
/// [`SynthConfig::stream`].
#[derive(Debug, Clone)]
pub struct SynthTraffic {
    cfg: SynthConfig,
    invites: u64,
    oks: u64,
    byes: u64,
    registers: u64,
    unauthorized: u64,
}

impl Iterator for SynthTraffic {
    type Item = (SimTime, IpPacket);

    fn next(&mut self) -> Option<(SimTime, IpPacket)> {
        let cfg = &self.cfg;
        let churn = cfg.churn_pairs();
        // Next pending timestamp of each of the five monotone streams.
        let mut best: Option<(SimTime, u8)> = None;
        let mut offer = |t: SimTime, stream: u8| {
            // Strict `<` keeps ties in stream-priority order (requests
            // before their responses, starts before teardowns).
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, stream));
            }
        };
        if self.invites < cfg.dialogs {
            offer(cfg.dialog_start(self.invites), 0);
        }
        if self.registers < churn {
            offer(cfg.churn_start(self.registers), 1);
        }
        if self.oks < cfg.dialogs {
            offer(cfg.dialog_start(self.oks) + cfg.answer_delay, 2);
        }
        if self.unauthorized < churn {
            offer(cfg.churn_start(self.unauthorized) + cfg.answer_delay, 3);
        }
        if self.byes < cfg.dialogs {
            offer(cfg.dialog_start(self.byes) + cfg.hold, 4);
        }
        let (time, stream) = best?;
        let pkt = match stream {
            0 => {
                let i = self.invites;
                self.invites += 1;
                let c = (i % u64::from(cfg.callers)) as u32;
                udp_to_proxy(caller_ip(c), invite(cfg, i))
            }
            1 => {
                let j = self.registers;
                self.registers += 1;
                let s = (j % u64::from(cfg.churn_sources)) as u32;
                udp_to_proxy(churn_ip(s), register(cfg, j))
            }
            2 => {
                let i = self.oks;
                self.oks += 1;
                let c = (i % u64::from(cfg.callers)) as u32;
                udp_from_proxy(caller_ip(c), ok(cfg, i))
            }
            3 => {
                let j = self.unauthorized;
                self.unauthorized += 1;
                let s = (j % u64::from(cfg.churn_sources)) as u32;
                udp_from_proxy(churn_ip(s), unauthorized(cfg, j))
            }
            _ => {
                let i = self.byes;
                self.byes += 1;
                let c = (i % u64::from(cfg.callers)) as u32;
                udp_to_proxy(caller_ip(c), bye(cfg, i))
            }
        };
        Some((time, pkt))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let emitted = self.invites + self.oks + self.byes + self.registers + self.unauthorized;
        let left = (self.cfg.total_frames() - emitted) as usize;
        (left, Some(left))
    }
}

fn udp_to_proxy(src: Ipv4Addr, payload: Vec<u8>) -> IpPacket {
    IpPacket::udp(src, SYNTH_SIP_PORT, SYNTH_PROXY_IP, SYNTH_SIP_PORT, payload)
}

fn udp_from_proxy(dst: Ipv4Addr, payload: Vec<u8>) -> IpPacket {
    IpPacket::udp(SYNTH_PROXY_IP, SYNTH_SIP_PORT, dst, SYNTH_SIP_PORT, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_sip::msg::SipMessage;

    #[test]
    fn frame_count_matches_config() {
        let cfg = SynthConfig::load(100, 10);
        assert_eq!(cfg.stream().count() as u64, cfg.total_frames());
        assert_eq!(cfg.total_frames(), 100 * 3 + (100 / 8) * 2);
    }

    #[test]
    fn frames_are_time_ordered() {
        let cfg = SynthConfig::load(500, 50);
        let times: Vec<SimTime> = cfg.stream().map(|(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "stream not sorted");
    }

    #[test]
    fn every_frame_is_wellformed_sip() {
        let cfg = SynthConfig::load(40, 4);
        for (_, pkt) in cfg.stream() {
            let udp = pkt.decode_udp().expect("valid UDP");
            let msg = SipMessage::parse(&udp.payload).expect("parses as SIP");
            assert!(
                msg.format_violations().is_empty(),
                "format violations in {msg}"
            );
        }
    }

    #[test]
    fn concurrency_is_hold_over_spacing() {
        let cfg = SynthConfig::load(10_000, 250);
        assert_eq!(cfg.concurrency(), 250);
        assert!(cfg.span() >= SimDuration::from_secs(9));
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = SynthConfig::load(64, 8);
        let a: Vec<_> = cfg.stream().collect();
        let b: Vec<_> = cfg.stream().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn churn_sources_stay_below_flood_rates() {
        // One source's consecutive churn pairs must be far enough apart
        // that the identity plane's 10-in-10s flood window never fills.
        let cfg = SynthConfig::load(1_000_000, 1_000);
        let gap = cfg.spacing.as_micros() * cfg.churn_every * u64::from(cfg.churn_sources);
        // At most `10s / gap + 1` pairs ever cohabit a flood window;
        // that must sit well under the default threshold of 10.
        let pairs_per_window = 10_000_000 / gap + 1;
        assert!(
            pairs_per_window <= 3,
            "per-source churn gap {gap}us packs {pairs_per_window} pairs into a flood window"
        );
    }
}
