//! Proxy/registrar behaviours exercised at scenario level.

use scidive_netsim::link::LinkParams;
use scidive_netsim::time::SimDuration;
use scidive_voip::events::UaEventKind;
use scidive_voip::prelude::*;

#[test]
fn call_to_unregistered_callee_fails_with_404() {
    // B never registers: A's INVITE gets 404 and the call dies cleanly.
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(801)
        .a_script(vec![
            ScriptStep::new(SimDuration::from_millis(10), UaAction::Register),
            ScriptStep::new(SimDuration::from_millis(500), UaAction::Call { to: ep.b_aor() }),
        ])
        .build();
    tb.run_for(SimDuration::from_secs(3));
    assert!(!tb.ua(tb.a).unwrap().has_active_call());
    assert!(tb
        .a_events()
        .iter()
        .any(|e| matches!(&e.kind, UaEventKind::CallTerminated { by_remote: true, .. })));
    // No media, no billing.
    assert!(tb.sim.trace().filter_udp_port(ep.b_rtp).is_empty());
    assert!(tb.cdrs().is_empty());
    assert_eq!(tb.proxy_stats().rejected, 1);
}

#[test]
fn wrong_password_never_registers() {
    let mut tb = TestbedBuilder::new(802)
        .with_auth(&[("alice", "right-password")])
        .build();
    let ep = tb.endpoints.clone();
    // A separate client presents the wrong password.
    let cfg = UaConfig::new(ep.a_aor(), ep.a_ip, ep.a_rtp, ep.proxy_ip)
        .with_password("wrong-password");
    let ua = UserAgent::new(
        cfg,
        vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)],
    );
    let id = tb.add_node("impostor", std::net::Ipv4Addr::new(10, 0, 0, 30), LinkParams::lan(), Box::new(ua));
    tb.run_for(SimDuration::from_secs(3));
    let ua = tb.sim.node_as::<UserAgent>(id).unwrap();
    assert_ne!(ua.reg_state(), RegState::Registered);
    let stats = tb.proxy_stats();
    assert!(stats.auth_failures >= 1);
    assert_eq!(stats.registrations, 0);
}

#[test]
fn reinvite_does_not_double_bill() {
    // A call with a genuine mid-call migration: one CDR, not two.
    let mut tb = TestbedBuilder::new(803)
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(4)))
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::MigrateMedia { new_rtp_port: 9500 },
        )])
        .build();
    tb.run_for(SimDuration::from_secs(6));
    let cdrs = tb.cdrs();
    assert_eq!(cdrs.len(), 1, "{cdrs:?}");
    assert!(cdrs[0].stopped.is_some());
}

#[test]
fn max_forwards_zero_is_dropped() {
    use scidive_netsim::packet::IpPacket;
    use scidive_netsim::time::SimTime;
    use scidive_sip::prelude::*;

    let mut tb = TestbedBuilder::new(804)
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    // An INVITE with Max-Forwards: 0 must not be forwarded to B.
    let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
    b.from(NameAddr::new("sip:loop@lab".parse().unwrap()).with_tag("t"))
        .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
        .call_id("loopy")
        .cseq(CSeq::new(1, Method::Invite))
        .via(Via::udp("10.0.0.99:5060", "z9hG4bK-loop"))
        .without(&HeaderName::MaxForwards)
        .header(HeaderName::MaxForwards, "0");
    tb.sim.inject(
        SimTime::from_millis(500),
        IpPacket::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 99),
            5060,
            ep.proxy_ip,
            5060,
            b.build().to_bytes(),
        ),
    );
    tb.run_for(SimDuration::from_secs(2));
    // B never saw the looped INVITE.
    assert!(!tb
        .b_events()
        .iter()
        .any(|e| matches!(&e.kind, UaEventKind::IncomingCall { call_id, .. } if call_id == "loopy")));
    assert_eq!(tb.proxy_stats().rejected, 1);
}

#[test]
fn proxy_counts_forwarded_traffic() {
    let mut tb = TestbedBuilder::new(805)
        .standard_call(SimDuration::from_millis(500), Some(SimDuration::from_secs(2)))
        .build();
    tb.run_for(SimDuration::from_secs(4));
    let stats = tb.proxy_stats();
    // INVITE + ACK + BYE at minimum.
    assert!(stats.forwarded >= 3, "{stats:?}");
    // 200s for INVITE and BYE at minimum.
    assert!(stats.responses_forwarded >= 2, "{stats:?}");
    assert_eq!(stats.registrations, 2);
}

#[test]
fn expired_binding_is_not_routable() {
    // B registers with a 2-second expiry; A calls after it lapses.
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(806)
        .a_script(vec![
            ScriptStep::new(SimDuration::from_millis(10), UaAction::Register),
            ScriptStep::new(SimDuration::from_secs(4), UaAction::Call { to: ep.b_aor() }),
        ])
        .build();
    // Replace B's registration with a short-lived one.
    let mut b_cfg = UaConfig::new(ep.b_aor(), ep.b_ip, ep.b_rtp, ep.proxy_ip);
    b_cfg.register_expires = 2;
    let b = UserAgent::new(
        b_cfg,
        vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)],
    );
    tb.add_node("ua-b2", std::net::Ipv4Addr::new(10, 0, 0, 31), LinkParams::lan(), Box::new(b));
    // Note: the testbed's default B also exists but never registers, so
    // only the short-lived binding could route. Wait past its expiry.
    tb.run_for(SimDuration::from_secs(7));
    assert!(!tb.ua(tb.a).unwrap().has_active_call());
    assert_eq!(tb.proxy_stats().rejected, 1, "{:?}", tb.proxy_stats());
}

#[test]
fn expires_zero_deregisters() {
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(807)
        .a_script(vec![
            ScriptStep::new(SimDuration::from_millis(10), UaAction::Register),
            ScriptStep::new(SimDuration::from_secs(2), UaAction::Call { to: ep.b_aor() }),
        ])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    // Inject a de-registration (Expires: 0) for bob before A's call.
    use scidive_netsim::packet::IpPacket;
    use scidive_netsim::time::SimTime;
    use scidive_sip::prelude::*;
    let mut b = RequestBuilder::new(Method::Register, "sip:lab".parse().unwrap());
    b.from(NameAddr::new(ep.b_aor()).with_tag("t"))
        .to(NameAddr::new(ep.b_aor()))
        .call_id("dereg-1")
        .cseq(CSeq::new(99, Method::Register))
        .via(Via::udp(format!("{}:5060", ep.b_ip), "z9hG4bK-dereg"))
        .contact(NameAddr::new(SipUri::new("bob", ep.b_ip.to_string()).with_port(5060)))
        .expires(0);
    tb.sim.inject(
        SimTime::from_secs(1),
        IpPacket::udp(ep.b_ip, 5060, ep.proxy_ip, 5060, b.build().to_bytes()),
    );
    tb.run_for(SimDuration::from_secs(4));
    // The call finds nobody home.
    assert!(!tb.ua(tb.a).unwrap().has_active_call());
    assert_eq!(tb.proxy_stats().rejected, 1);
}
