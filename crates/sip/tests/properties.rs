//! Property-based tests for the SIP stack: wire-format roundtrips, MD5
//! correctness under arbitrary chunking, digest self-consistency.

use proptest::prelude::*;
use scidive_sip::auth::{DigestChallenge, DigestCredentials};
use scidive_sip::bstr::ByteStr;
use scidive_sip::header::{CSeq, NameAddr, Via};
use scidive_sip::md5::{md5, Md5};
use scidive_sip::method::Method;
use scidive_sip::msg::{response_to, RequestBuilder, SipMessage};
use scidive_sip::sdp::SessionDescription;
use scidive_sip::status::StatusCode;
use scidive_sip::uri::SipUri;
use std::net::Ipv4Addr;

fn method() -> impl Strategy<Value = Method> {
    proptest::sample::select(Method::ALL.to_vec())
}

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,11}".prop_map(|s| s)
}

fn host() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,8}(\\.[a-z]{2,5}){0,2}",
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| format!("10.0.{a}.{b}")),
    ]
}

fn uri() -> impl Strategy<Value = SipUri> {
    (proptest::option::of(token()), host(), proptest::option::of(1u16..65535)).prop_map(
        |(user, host, port)| {
            let mut u = match user {
                Some(user) => SipUri::new(user, host),
                None => SipUri::host_only(host),
            };
            u.port = port;
            u
        },
    )
}

proptest! {
    #[test]
    fn uri_roundtrip(u in uri()) {
        let text = u.to_string();
        let back: SipUri = text.parse().unwrap();
        prop_assert_eq!(back, u);
    }

    #[test]
    fn name_addr_roundtrip(
        u in uri(),
        display in proptest::option::of("[a-zA-Z ]{1,16}"),
        tag in proptest::option::of(token()),
    ) {
        let mut na = NameAddr::new(u);
        na.display = display
            .map(|d| ByteStr::from(d.trim()))
            .filter(|d| !d.is_empty());
        if let Some(tag) = tag {
            na = na.with_tag(tag);
        }
        let text = na.to_string();
        let back: NameAddr = text.parse().unwrap();
        prop_assert_eq!(back, na);
    }

    #[test]
    fn cseq_roundtrip(seq in any::<u32>(), m in method()) {
        let c = CSeq::new(seq, m);
        let back: CSeq = c.to_string().parse().unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn via_roundtrip(h in host(), port in 1u16..65535, branch in token()) {
        let via = Via::udp(format!("{h}:{port}"), format!("z9hG4bK{branch}"));
        let back: Via = via.to_string().parse().unwrap();
        prop_assert_eq!(back, via);
    }

    #[test]
    fn request_wire_roundtrip(
        m in method(),
        target in uri(),
        from_uri in uri(),
        tag in token(),
        call_id in "[a-zA-Z0-9@.-]{1,24}",
        seq in 1u32..100_000,
        body in proptest::collection::vec(0x20u8..0x7f, 0..128),
    ) {
        let mut b = RequestBuilder::new(m, target);
        b.from(NameAddr::new(from_uri.clone()).with_tag(&tag))
            .to(NameAddr::new(from_uri))
            .call_id(&call_id)
            .cseq(CSeq::new(seq, m))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bKpb"));
        if !body.is_empty() {
            b.body("text/plain", body.clone());
        }
        let msg = b.build();
        let parsed = SipMessage::parse(&msg.to_bytes()).unwrap();
        prop_assert_eq!(parsed.method(), Some(m));
        prop_assert_eq!(parsed.call_id().unwrap(), call_id);
        prop_assert_eq!(parsed.cseq().unwrap(), CSeq::new(seq, m));
        prop_assert_eq!(&parsed.body[..], &body[..]);
        // Second roundtrip is a fixed point.
        let again = SipMessage::parse(&parsed.to_bytes()).unwrap();
        prop_assert_eq!(again, parsed);
    }

    #[test]
    fn response_preserves_dialog_identifiers(
        code in 100u16..700,
        tag in token(),
    ) {
        let mut b = RequestBuilder::new(Method::Invite, "sip:b@lab".parse().unwrap());
        b.from(NameAddr::new("sip:a@lab".parse().unwrap()).with_tag("ta"))
            .to(NameAddr::new("sip:b@lab".parse().unwrap()))
            .call_id("c1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bK1"));
        let req = b.build();
        let resp = response_to(&req, StatusCode::new(code), Some(&tag));
        let parsed = SipMessage::parse(&resp.to_bytes()).unwrap();
        prop_assert_eq!(parsed.status().unwrap().code(), code);
        prop_assert_eq!(parsed.call_id().unwrap(), "c1");
        let from = parsed.from_().unwrap();
        prop_assert_eq!(from.tag(), Some("ta"));
        let to = parsed.to().unwrap();
        prop_assert_eq!(to.tag(), Some(tag.as_str()));
        let via = parsed.via_top().unwrap();
        prop_assert_eq!(via.branch(), Some("z9hG4bK1"));
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SipMessage::parse(&bytes);
    }

    #[test]
    fn md5_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let oneshot = md5(&data);
        let mut ctx = Md5::new();
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        for pair in points.windows(2) {
            ctx.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(ctx.finalize(), oneshot);
    }

    #[test]
    fn digest_answer_always_verifies(
        user in token(),
        password in "[ -~]{1,20}",
        realm in token(),
        nonce in token(),
        m in method(),
    ) {
        let challenge = DigestChallenge::new(realm, nonce);
        let creds = DigestCredentials::answer(&challenge, &user, &password, m, "sip:lab");
        prop_assert!(creds.verify(&password, m));
        // And a different password fails (passwords differing only by
        // our mutation below).
        let wrong = format!("{password}x");
        prop_assert!(!creds.verify(&wrong, m));
        // Header roundtrip.
        let parsed = DigestCredentials::parse(&creds.to_string()).unwrap();
        prop_assert_eq!(parsed, creds);
    }

    #[test]
    fn sdp_roundtrip(
        user in token(),
        a in any::<u8>(), b in any::<u8>(),
        port in 1024u16..65000,
        version in 1u64..1000,
    ) {
        let mut sdp = SessionDescription::audio_offer(
            user, Ipv4Addr::new(10, 0, a, b), port,
        );
        sdp.session_version = version;
        let back: SessionDescription = sdp.to_string().parse().unwrap();
        prop_assert_eq!(back, sdp);
    }
}
