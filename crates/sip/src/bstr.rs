//! [`ByteStr`]: the compact string backing header values and parameters.
//!
//! The IDS hot path parses every SIP message seen on the wire, and the
//! old representation paid one `String` allocation per header field and
//! per `name-addr`/`Via` parameter. `ByteStr` removes those steady-state
//! allocations with three representations behind one immutable
//! UTF-8-string API:
//!
//! * **`Static`** — a `&'static str`, for literals like `"tag"` or
//!   `"UDP"`; never allocates.
//! * **`Inline`** — up to [`ByteStr::INLINE_CAP`] bytes stored in the
//!   value itself (small-string optimization); never allocates. Nearly
//!   every SIP parameter and most header values fit.
//! * **`Shared`** — a UTF-8-validated slice of a reference-counted
//!   [`Bytes`] buffer. Slicing the wire buffer a message was parsed
//!   from shares the packet's allocation instead of copying.
//!
//! Equality, ordering, and hashing are by string content, independent of
//! representation, so `ByteStr` drops into maps and comparisons exactly
//! like `String` did.

use bytes::Bytes;
use serde::{DeError, Deserialize, Serialize, Value};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// A compact, immutable UTF-8 string: inline small-string, `&'static`
/// literal, or shared slice of a [`Bytes`] buffer.
///
/// # Examples
///
/// ```
/// use scidive_sip::bstr::ByteStr;
/// use bytes::Bytes;
///
/// let lit = ByteStr::from_static("tag");          // no allocation
/// let small = ByteStr::from("z9hG4bK-branch-1");  // inline, no allocation
/// let wire = Bytes::copy_from_slice(b"INVITE sip:bob@lab SIP/2.0");
/// let sliced = ByteStr::from_utf8(wire.slice(0..6)).unwrap(); // shares `wire`
/// assert_eq!(sliced, "INVITE");
/// assert_eq!(lit.as_str(), "tag");
/// assert!(small.len() > ByteStr::INLINE_CAP || !small.is_empty());
/// ```
#[derive(Clone)]
pub struct ByteStr(Repr);

#[derive(Clone)]
enum Repr {
    /// A string literal; zero-cost to create and access.
    Static(&'static str),
    /// Small-string optimization: bytes stored inline.
    Inline { len: u8, buf: [u8; ByteStr::INLINE_CAP] },
    /// A UTF-8-validated slice of a shared buffer.
    Shared(Bytes),
}

impl ByteStr {
    /// Maximum length stored inline without touching the heap. 62 bytes
    /// rounds `ByteStr` to a 64-byte half cache line and covers the
    /// header values that just miss a tighter cap — `From`/`Contact`
    /// with display name and instance params, single-hop `Via`, `Allow`
    /// lists — each of which would otherwise pay an atomic refcount
    /// bump to slice the shared wire buffer.
    pub const INLINE_CAP: usize = 62;

    /// The empty string (no allocation).
    pub const EMPTY: ByteStr = ByteStr(Repr::Static(""));

    /// Wraps a string literal without allocating.
    pub const fn from_static(s: &'static str) -> ByteStr {
        ByteStr(Repr::Static(s))
    }

    /// Builds from UTF-8 bytes, sharing the buffer when the text is too
    /// large to inline.
    ///
    /// # Errors
    ///
    /// Returns the `Utf8Error` if `bytes` is not valid UTF-8.
    pub fn from_utf8(bytes: Bytes) -> Result<ByteStr, std::str::Utf8Error> {
        std::str::from_utf8(&bytes)?;
        if bytes.len() <= ByteStr::INLINE_CAP {
            Ok(ByteStr::inline(&bytes))
        } else {
            Ok(ByteStr(Repr::Shared(bytes)))
        }
    }

    /// Builds an inline value from a fixed-size window whose first
    /// `len` bytes are the value; the window's tail rides along as
    /// padding that no accessor observes (equality, ordering, hashing,
    /// display, and serialization all go through [`ByteStr::as_str`],
    /// which slices to `len`). This lets the SIP parser inline a header
    /// value with one fixed-size copy instead of a zero fill plus a
    /// length-dispatched `memcpy`.
    ///
    /// The first `len` bytes must be valid UTF-8 — `as_str` re-validates
    /// on access and panics otherwise.
    ///
    /// # Panics
    ///
    /// Debug builds assert `len <= INLINE_CAP` and UTF-8 validity.
    #[inline]
    pub fn inline_padded(window: &[u8; ByteStr::INLINE_CAP], len: usize) -> ByteStr {
        debug_assert!(len <= ByteStr::INLINE_CAP);
        debug_assert!(std::str::from_utf8(&window[..len]).is_ok());
        ByteStr(Repr::Inline {
            len: len as u8,
            buf: *window,
        })
    }

    /// Wraps a slice of a shared buffer whose bytes are already known
    /// to be valid UTF-8 — e.g. a subslice (on `char` boundaries) of a
    /// validated header section — skipping the linear re-validation
    /// that [`ByteStr::from_utf8`] performs. Like
    /// [`ByteStr::inline_padded`], the invariant is debug-asserted at
    /// construction and enforced at access: `as_str` re-validates and
    /// panics (never UB) on misuse.
    #[inline]
    pub(crate) fn shared_validated(bytes: Bytes) -> ByteStr {
        debug_assert!(std::str::from_utf8(&bytes).is_ok());
        if bytes.len() <= ByteStr::INLINE_CAP {
            ByteStr::inline(&bytes)
        } else {
            ByteStr(Repr::Shared(bytes))
        }
    }

    /// `bytes` must already be validated UTF-8 and short enough.
    fn inline(bytes: &[u8]) -> ByteStr {
        debug_assert!(bytes.len() <= ByteStr::INLINE_CAP);
        let mut buf = [0u8; ByteStr::INLINE_CAP];
        buf[..bytes.len()].copy_from_slice(bytes);
        ByteStr(Repr::Inline {
            len: bytes.len() as u8,
            buf,
        })
    }

    /// The text.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Inline { len, buf } => {
                // Validated at construction; values are tens of bytes so
                // re-checking is a handful of nanoseconds (the crate
                // forbids `unsafe`, so `from_utf8_unchecked` is out).
                std::str::from_utf8(&buf[..*len as usize]).expect("ByteStr is UTF-8 by construction")
            }
            Repr::Shared(b) => {
                std::str::from_utf8(b).expect("ByteStr is UTF-8 by construction")
            }
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Static(s) => s.len(),
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared(b) => b.len(),
        }
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ByteStr {
    fn default() -> ByteStr {
        ByteStr::EMPTY
    }
}

impl Deref for ByteStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for ByteStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for ByteStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for ByteStr {
    fn from(s: &str) -> ByteStr {
        if s.len() <= ByteStr::INLINE_CAP {
            ByteStr::inline(s.as_bytes())
        } else {
            ByteStr(Repr::Shared(Bytes::copy_from_slice(s.as_bytes())))
        }
    }
}

impl From<&String> for ByteStr {
    fn from(s: &String) -> ByteStr {
        ByteStr::from(s.as_str())
    }
}

impl From<String> for ByteStr {
    fn from(s: String) -> ByteStr {
        if s.len() <= ByteStr::INLINE_CAP {
            ByteStr::inline(s.as_bytes())
        } else {
            ByteStr(Repr::Shared(Bytes::from(s.into_bytes())))
        }
    }
}

impl From<&ByteStr> for ByteStr {
    fn from(s: &ByteStr) -> ByteStr {
        s.clone()
    }
}

impl From<ByteStr> for String {
    fn from(s: ByteStr) -> String {
        s.as_str().to_string()
    }
}

impl PartialEq for ByteStr {
    fn eq(&self, other: &ByteStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for ByteStr {}

impl PartialEq<str> for ByteStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ByteStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<ByteStr> for str {
    fn eq(&self, other: &ByteStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<ByteStr> for &str {
    fn eq(&self, other: &ByteStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<String> for ByteStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for ByteStr {
    fn partial_cmp(&self, other: &ByteStr) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByteStr {
    fn cmp(&self, other: &ByteStr) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for ByteStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Display for ByteStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for ByteStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl Serialize for ByteStr {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ByteStr {
    fn from_value(v: &Value) -> Result<ByteStr, DeError> {
        match v {
            Value::Str(s) => Ok(ByteStr::from(s.as_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representations_compare_equal_by_content() {
        let long = "a-value-longer-than-the-inline-capacity-of-bytestr-whatever-that-capacity-is";
        assert!(long.len() > ByteStr::INLINE_CAP);
        let shared = ByteStr::from_utf8(Bytes::copy_from_slice(long.as_bytes())).unwrap();
        let owned = ByteStr::from(long.to_string());
        assert_eq!(shared, owned);
        assert_eq!(shared.as_str(), long);

        let small = ByteStr::from("tag");
        assert_eq!(small, ByteStr::from_static("tag"));
        assert_eq!(small, "tag");
        assert_eq!("tag", small);
    }

    #[test]
    fn inline_boundary() {
        let at_cap = "x".repeat(ByteStr::INLINE_CAP);
        let over_cap = "x".repeat(ByteStr::INLINE_CAP + 1);
        assert_eq!(ByteStr::from(at_cap.as_str()).as_str(), at_cap);
        assert_eq!(ByteStr::from(over_cap.as_str()).as_str(), over_cap);
    }

    #[test]
    fn shared_slices_wire_buffer() {
        let wire = Bytes::copy_from_slice("Via: SIP/2.0/UDP host;branch=z9".as_bytes());
        let v = ByteStr::from_utf8(wire.slice(5..)).unwrap();
        assert_eq!(v, "SIP/2.0/UDP host;branch=z9");
    }

    #[test]
    fn rejects_invalid_utf8() {
        assert!(ByteStr::from_utf8(Bytes::copy_from_slice(&[0xff, 0xfe])).is_err());
    }

    #[test]
    fn string_ops_via_deref() {
        let v = ByteStr::from("10.0.0.1:5060");
        assert_eq!(v.split_once(':'), Some(("10.0.0.1", "5060")));
        assert!(v.starts_with("10."));
    }

    #[test]
    fn hash_and_ord_match_str() {
        use std::collections::HashMap;
        let mut m: HashMap<ByteStr, u32> = HashMap::new();
        m.insert(ByteStr::from("key"), 7);
        // Borrow<str> lets &str look up ByteStr keys.
        assert_eq!(m.get("key"), Some(&7));
        // Ord follows string content, not representation.
        assert_eq!(
            ByteStr::from("a").cmp(&ByteStr::from("b")),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn serde_roundtrip() {
        let v = ByteStr::from("round-trip");
        let val = v.to_value();
        assert_eq!(ByteStr::from_value(&val).unwrap(), v);
    }

    #[test]
    fn empty_and_default() {
        assert!(ByteStr::default().is_empty());
        assert_eq!(ByteStr::EMPTY.len(), 0);
        assert_eq!(String::from(ByteStr::from("s")), "s");
    }
}
