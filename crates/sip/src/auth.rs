//! SIP digest access authentication (RFC 2617 as profiled by RFC 3261).
//!
//! The registrar challenges REGISTER requests with a `401 Unauthorized`
//! carrying `WWW-Authenticate: Digest ...`; the client retries with an
//! `Authorization: Digest ...` whose `response` is
//! `MD5(HA1:nonce:HA2)`. The paper's §3.3 password-guessing attack is a
//! client iterating bogus `response` values against one challenge — the
//! IDS watches exactly these headers.

use crate::md5::md5_hex;
use crate::method::Method;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A digest challenge, carried in `WWW-Authenticate`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestChallenge {
    /// Protection realm.
    pub realm: String,
    /// Server nonce.
    pub nonce: String,
    /// Algorithm; always `MD5` here.
    pub algorithm: String,
}

impl DigestChallenge {
    /// Creates an MD5 challenge.
    pub fn new(realm: impl Into<String>, nonce: impl Into<String>) -> DigestChallenge {
        DigestChallenge {
            realm: realm.into(),
            nonce: nonce.into(),
            algorithm: "MD5".to_string(),
        }
    }

    /// Parses a `WWW-Authenticate` header value.
    ///
    /// # Errors
    ///
    /// Fails unless the scheme is `Digest` and both `realm` and `nonce`
    /// are present.
    pub fn parse(value: &str) -> Result<DigestChallenge, AuthError> {
        let fields = parse_digest_fields(value)?;
        Ok(DigestChallenge {
            realm: field(&fields, "realm")?,
            nonce: field(&fields, "nonce")?,
            algorithm: fields
                .iter()
                .find(|(n, _)| n == "algorithm")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "MD5".to_string()),
        })
    }
}

impl fmt::Display for DigestChallenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest realm=\"{}\", nonce=\"{}\", algorithm={}",
            self.realm, self.nonce, self.algorithm
        )
    }
}

/// Digest credentials, carried in `Authorization`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestCredentials {
    /// Authenticating username.
    pub username: String,
    /// Realm copied from the challenge.
    pub realm: String,
    /// Nonce copied from the challenge.
    pub nonce: String,
    /// The digest URI (request URI).
    pub uri: String,
    /// The 32-hex-digit response.
    pub response: String,
}

impl DigestCredentials {
    /// Computes correct credentials for a challenge.
    pub fn answer(
        challenge: &DigestChallenge,
        username: &str,
        password: &str,
        method: Method,
        uri: &str,
    ) -> DigestCredentials {
        let response = digest_response(
            username,
            &challenge.realm,
            password,
            &challenge.nonce,
            method,
            uri,
        );
        DigestCredentials {
            username: username.to_string(),
            realm: challenge.realm.clone(),
            nonce: challenge.nonce.clone(),
            uri: uri.to_string(),
            response,
        }
    }

    /// Parses an `Authorization` header value.
    ///
    /// # Errors
    ///
    /// Fails unless the scheme is `Digest` and the mandatory fields are
    /// present.
    pub fn parse(value: &str) -> Result<DigestCredentials, AuthError> {
        let fields = parse_digest_fields(value)?;
        Ok(DigestCredentials {
            username: field(&fields, "username")?,
            realm: field(&fields, "realm")?,
            nonce: field(&fields, "nonce")?,
            uri: field(&fields, "uri")?,
            response: field(&fields, "response")?,
        })
    }

    /// Verifies the response against the expected password.
    pub fn verify(&self, password: &str, method: Method) -> bool {
        let expected = digest_response(
            &self.username,
            &self.realm,
            password,
            &self.nonce,
            method,
            &self.uri,
        );
        // Not constant-time; acceptable in a simulator.
        expected == self.response
    }
}

impl fmt::Display for DigestCredentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest username=\"{}\", realm=\"{}\", nonce=\"{}\", uri=\"{}\", response=\"{}\"",
            self.username, self.realm, self.nonce, self.uri, self.response
        )
    }
}

/// Computes the RFC 2617 digest response without qop.
pub fn digest_response(
    username: &str,
    realm: &str,
    password: &str,
    nonce: &str,
    method: Method,
    uri: &str,
) -> String {
    let ha1 = md5_hex(format!("{username}:{realm}:{password}").as_bytes());
    let ha2 = md5_hex(format!("{method}:{uri}").as_bytes());
    md5_hex(format!("{ha1}:{nonce}:{ha2}").as_bytes())
}

/// Errors from parsing digest header values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The scheme token was not `Digest`.
    NotDigest,
    /// A required field was absent.
    MissingField(&'static str),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::NotDigest => write!(f, "authentication scheme is not Digest"),
            AuthError::MissingField(name) => write!(f, "digest field `{name}` missing"),
        }
    }
}

impl std::error::Error for AuthError {}

fn parse_digest_fields(value: &str) -> Result<Vec<(String, String)>, AuthError> {
    let rest = value.trim().strip_prefix("Digest").ok_or(AuthError::NotDigest)?;
    Ok(rest
        .split(',')
        .filter_map(|kv| {
            let (name, raw) = kv.split_once('=')?;
            let v = raw.trim().trim_matches('"').to_string();
            Some((name.trim().to_string(), v))
        })
        .collect())
}

fn field(fields: &[(String, String)], name: &'static str) -> Result<String, AuthError> {
    fields
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.clone())
        .ok_or(AuthError::MissingField(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_roundtrip() {
        let ch = DigestChallenge::new("purdue.edu", "abc123");
        let parsed = DigestChallenge::parse(&ch.to_string()).unwrap();
        assert_eq!(parsed, ch);
    }

    #[test]
    fn credentials_roundtrip_and_verify() {
        let ch = DigestChallenge::new("lab", "nonce-1");
        let creds =
            DigestCredentials::answer(&ch, "alice", "s3cret", Method::Register, "sip:lab");
        let parsed = DigestCredentials::parse(&creds.to_string()).unwrap();
        assert_eq!(parsed, creds);
        assert!(parsed.verify("s3cret", Method::Register));
        assert!(!parsed.verify("wrong", Method::Register));
        assert!(!parsed.verify("s3cret", Method::Invite)); // method is bound in
    }

    #[test]
    fn response_depends_on_nonce() {
        let r1 = digest_response("a", "r", "p", "n1", Method::Register, "sip:r");
        let r2 = digest_response("a", "r", "p", "n2", Method::Register, "sip:r");
        assert_ne!(r1, r2);
        assert_eq!(r1.len(), 32);
    }

    #[test]
    fn rfc2617_worked_example() {
        // From RFC 2617 §3.5 (no-qop variant of the example values).
        let r = digest_response(
            "Mufasa",
            "testrealm@host.com",
            "Circle Of Life",
            "dcd98b7102dd2f0e8b11d0f600bfb0c093",
            Method::Register,
            "/dir/index.html",
        );
        // Deterministic; self-consistency (verify path) is the contract.
        let creds = DigestCredentials {
            username: "Mufasa".into(),
            realm: "testrealm@host.com".into(),
            nonce: "dcd98b7102dd2f0e8b11d0f600bfb0c093".into(),
            uri: "/dir/index.html".into(),
            response: r,
        };
        assert!(creds.verify("Circle Of Life", Method::Register));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            DigestChallenge::parse("Basic realm=\"x\""),
            Err(AuthError::NotDigest)
        );
        assert_eq!(
            DigestChallenge::parse("Digest realm=\"x\""),
            Err(AuthError::MissingField("nonce"))
        );
        assert_eq!(
            DigestCredentials::parse("Digest username=\"a\", realm=\"r\", nonce=\"n\", uri=\"u\""),
            Err(AuthError::MissingField("response"))
        );
    }

    #[test]
    fn challenge_default_algorithm() {
        let ch = DigestChallenge::parse("Digest realm=\"r\", nonce=\"n\"").unwrap();
        assert_eq!(ch.algorithm, "MD5");
    }
}
