//! SIP dialog state (RFC 3261 §12, simplified to the UDP/no-route-set
//! subset the testbed uses).
//!
//! A dialog is identified by `(Call-ID, local tag, remote tag)`. Both user
//! agents and the IDS track dialogs: the UA to drive calls, the IDS (in
//! `scidive-core`) passively, as the "stateful detection" substrate.

use crate::header::{CSeq, NameAddr, Via};
use crate::method::Method;
use crate::msg::{RequestBuilder, SipMessage};
use crate::uri::SipUri;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The lifecycle of a dialog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DialogState {
    /// INVITE sent/received, no final response yet.
    Early,
    /// 2xx exchanged; media may flow.
    Confirmed,
    /// BYE exchanged (or the call failed).
    Terminated,
}

/// Which side of the dialog we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DialogRole {
    /// We sent the INVITE.
    Uac,
    /// We received the INVITE.
    Uas,
}

/// One end's view of a SIP dialog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dialog {
    /// Call-ID shared by everything in the dialog.
    pub call_id: String,
    /// Our tag.
    pub local_tag: String,
    /// Peer's tag, once learned.
    pub remote_tag: Option<String>,
    /// Our address-of-record URI.
    pub local_uri: SipUri,
    /// Peer's address-of-record URI.
    pub remote_uri: SipUri,
    /// Where in-dialog requests are sent (peer's Contact).
    pub remote_target: SipUri,
    /// Our request sequence number (last used).
    pub local_cseq: u32,
    /// Peer's last seen sequence number.
    pub remote_cseq: Option<u32>,
    /// Current state.
    pub state: DialogState,
    /// Which side we are.
    pub role: DialogRole,
}

impl Dialog {
    /// Creates the UAC-side dialog state from an INVITE we are sending.
    ///
    /// # Errors
    ///
    /// Fails if the INVITE lacks the dialog-forming headers.
    pub fn uac_from_invite(invite: &SipMessage) -> Result<Dialog, DialogError> {
        let from = invite.from_().map_err(DialogError::bad)?;
        let to = invite.to().map_err(DialogError::bad)?;
        let local_tag = from
            .tag()
            .ok_or(DialogError::MissingLocalTag)?
            .to_string();
        Ok(Dialog {
            call_id: invite.call_id().map_err(DialogError::bad)?.to_string(),
            local_tag,
            remote_tag: None,
            local_uri: from.uri,
            remote_uri: to.uri.clone(),
            remote_target: to.uri,
            local_cseq: invite.cseq().map_err(DialogError::bad)?.seq,
            remote_cseq: None,
            state: DialogState::Early,
            role: DialogRole::Uac,
        })
    }

    /// Creates the UAS-side dialog state from an INVITE we received,
    /// contributing our `local_tag`.
    ///
    /// # Errors
    ///
    /// Fails if the INVITE lacks the dialog-forming headers.
    pub fn uas_from_invite(
        invite: &SipMessage,
        local_tag: impl Into<String>,
    ) -> Result<Dialog, DialogError> {
        let from = invite.from_().map_err(DialogError::bad)?;
        let to = invite.to().map_err(DialogError::bad)?;
        let remote_target = invite
            .contact()
            .map(|c| c.uri)
            .unwrap_or_else(|_| from.uri.clone());
        Ok(Dialog {
            call_id: invite.call_id().map_err(DialogError::bad)?.to_string(),
            local_tag: local_tag.into(),
            remote_tag: from.tag().map(str::to_string),
            local_uri: to.uri,
            remote_uri: from.uri,
            remote_target,
            local_cseq: 0,
            remote_cseq: Some(invite.cseq().map_err(DialogError::bad)?.seq),
            state: DialogState::Early,
            role: DialogRole::Uas,
        })
    }

    /// UAC: processes a response to our INVITE, learning the remote tag
    /// and target and confirming the dialog on 2xx.
    pub fn on_invite_response(&mut self, resp: &SipMessage) {
        if let Ok(to) = resp.to() {
            if self.remote_tag.is_none() {
                self.remote_tag = to.tag().map(str::to_string);
            }
        }
        if let Ok(contact) = resp.contact() {
            self.remote_target = contact.uri;
        }
        if let Some(status) = resp.status() {
            if status.is_success() {
                self.state = DialogState::Confirmed;
            } else if status.is_final() {
                self.state = DialogState::Terminated;
            }
        }
    }

    /// UAS: marks confirmed after we send 2xx (and the ACK arrives).
    pub fn confirm(&mut self) {
        if self.state == DialogState::Early {
            self.state = DialogState::Confirmed;
        }
    }

    /// Terminates the dialog (BYE sent or received).
    pub fn terminate(&mut self) {
        self.state = DialogState::Terminated;
    }

    /// Whether `msg` belongs to this dialog (Call-ID matches and the tags
    /// are consistent, in either direction).
    pub fn matches(&self, msg: &SipMessage) -> bool {
        let Ok(call_id) = msg.call_id() else {
            return false;
        };
        if call_id != self.call_id {
            return false;
        }
        let from_tag = msg.from_().ok().and_then(|f| f.tag().map(str::to_string));
        let to_tag = msg.to().ok().and_then(|t| t.tag().map(str::to_string));
        let local = Some(self.local_tag.clone());
        let remote = self.remote_tag.clone();
        // Either we are the recipient (remote in From) or the sender.
        (from_tag == remote || remote.is_none()) && (to_tag == local || to_tag.is_none())
            || (from_tag == local && (to_tag == remote || to_tag.is_none() || remote.is_none()))
    }

    /// Builds an in-dialog request of `method` (BYE, re-INVITE, INFO…)
    /// with the dialog's identifiers and the next CSeq.
    pub fn make_request(&mut self, method: Method, via_sent_by: &str, branch: &str) -> SipMessage {
        self.local_cseq += 1;
        let mut b = RequestBuilder::new(method, self.remote_target.clone());
        let mut from = NameAddr::new(self.local_uri.clone()).with_tag(&self.local_tag);
        from.display = None;
        let mut to = NameAddr::new(self.remote_uri.clone());
        if let Some(tag) = &self.remote_tag {
            to = to.with_tag(tag);
        }
        b.from(from)
            .to(to)
            .call_id(&self.call_id)
            .cseq(CSeq::new(self.local_cseq, method))
            .via(Via::udp(via_sent_by, branch));
        b.build()
    }

    /// UAS: validates and records the CSeq of an incoming in-dialog
    /// request; stale (non-increasing) CSeqs are rejected.
    pub fn accept_remote_cseq(&mut self, cseq: u32) -> bool {
        match self.remote_cseq {
            Some(prev) if cseq <= prev => false,
            _ => {
                self.remote_cseq = Some(cseq);
                true
            }
        }
    }
}

/// Errors constructing dialog state from a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DialogError {
    /// A dialog-forming header was missing or malformed.
    BadMessage(String),
    /// The UAC's From header carried no tag.
    MissingLocalTag,
}

impl DialogError {
    fn bad(e: impl fmt::Display) -> DialogError {
        DialogError::BadMessage(e.to_string())
    }
}

impl fmt::Display for DialogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DialogError::BadMessage(d) => write!(f, "message cannot form a dialog: {d}"),
            DialogError::MissingLocalTag => write!(f, "uac From header has no tag"),
        }
    }
}

impl std::error::Error for DialogError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::HeaderName;
    use crate::msg::response_to;
    use crate::status::StatusCode;

    fn invite() -> SipMessage {
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse().unwrap());
        b.from(NameAddr::new("sip:alice@10.0.0.1".parse().unwrap()).with_tag("a-tag"))
            .to(NameAddr::new("sip:bob@10.0.0.2".parse().unwrap()))
            .call_id("c1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bK1"))
            .contact(NameAddr::new("sip:alice@10.0.0.1:5060".parse().unwrap()));
        b.build()
    }

    #[test]
    fn uac_dialog_lifecycle() {
        let inv = invite();
        let mut dlg = Dialog::uac_from_invite(&inv).unwrap();
        assert_eq!(dlg.state, DialogState::Early);
        assert_eq!(dlg.role, DialogRole::Uac);
        assert_eq!(dlg.local_tag, "a-tag");
        assert_eq!(dlg.remote_tag, None);

        let mut ok = response_to(&inv, StatusCode::OK, Some("b-tag"));
        ok.headers.set(
            HeaderName::Contact,
            NameAddr::new("sip:bob@10.0.0.2:5062".parse().unwrap()).to_string(),
        );
        dlg.on_invite_response(&ok);
        assert_eq!(dlg.state, DialogState::Confirmed);
        assert_eq!(dlg.remote_tag.as_deref(), Some("b-tag"));
        assert_eq!(dlg.remote_target.to_string(), "sip:bob@10.0.0.2:5062");

        dlg.terminate();
        assert_eq!(dlg.state, DialogState::Terminated);
    }

    #[test]
    fn uac_final_failure_terminates() {
        let inv = invite();
        let mut dlg = Dialog::uac_from_invite(&inv).unwrap();
        let busy = response_to(&inv, StatusCode::BUSY_HERE, Some("b"));
        dlg.on_invite_response(&busy);
        assert_eq!(dlg.state, DialogState::Terminated);
    }

    #[test]
    fn provisional_stays_early() {
        let inv = invite();
        let mut dlg = Dialog::uac_from_invite(&inv).unwrap();
        let ringing = response_to(&inv, StatusCode::RINGING, Some("b"));
        dlg.on_invite_response(&ringing);
        assert_eq!(dlg.state, DialogState::Early);
        assert_eq!(dlg.remote_tag.as_deref(), Some("b"));
    }

    #[test]
    fn uas_dialog_from_invite() {
        let inv = invite();
        let mut dlg = Dialog::uas_from_invite(&inv, "b-tag").unwrap();
        assert_eq!(dlg.role, DialogRole::Uas);
        assert_eq!(dlg.remote_tag.as_deref(), Some("a-tag"));
        assert_eq!(dlg.remote_cseq, Some(1));
        assert_eq!(dlg.remote_target.to_string(), "sip:alice@10.0.0.1:5060");
        dlg.confirm();
        assert_eq!(dlg.state, DialogState::Confirmed);
    }

    #[test]
    fn make_request_increments_cseq_and_carries_dialog_ids() {
        let inv = invite();
        let mut dlg = Dialog::uac_from_invite(&inv).unwrap();
        dlg.remote_tag = Some("b-tag".to_string());
        let bye = dlg.make_request(Method::Bye, "10.0.0.1:5060", "z9hG4bK2");
        assert_eq!(bye.method(), Some(Method::Bye));
        assert_eq!(bye.call_id().unwrap(), "c1");
        assert_eq!(bye.cseq().unwrap().seq, 2);
        assert_eq!(bye.from_().unwrap().tag(), Some("a-tag"));
        assert_eq!(bye.to().unwrap().tag(), Some("b-tag"));
        let reinvite = dlg.make_request(Method::Invite, "10.0.0.1:5060", "z9hG4bK3");
        assert_eq!(reinvite.cseq().unwrap().seq, 3);
    }

    #[test]
    fn matches_in_both_directions() {
        let inv = invite();
        let mut dlg = Dialog::uac_from_invite(&inv).unwrap();
        dlg.remote_tag = Some("b-tag".to_string());
        // Request from peer: From carries remote tag, To carries ours.
        let mut peer = Dialog {
            role: DialogRole::Uas,
            local_tag: "b-tag".to_string(),
            remote_tag: Some("a-tag".to_string()),
            local_uri: dlg.remote_uri.clone(),
            remote_uri: dlg.local_uri.clone(),
            remote_target: dlg.local_uri.clone(),
            ..dlg.clone()
        };
        let bye_from_peer = peer.make_request(Method::Bye, "10.0.0.2:5060", "z9hG4bK9");
        assert!(dlg.matches(&bye_from_peer));
        // Our own request also matches.
        let our_bye = dlg.clone().make_request(Method::Bye, "x", "z9hG4bK8");
        assert!(dlg.matches(&our_bye));
        // Different call-id doesn't.
        let mut other = our_bye;
        other.headers.set(HeaderName::CallId, "other-call");
        assert!(!dlg.matches(&other));
    }

    #[test]
    fn remote_cseq_must_increase() {
        let inv = invite();
        let mut dlg = Dialog::uas_from_invite(&inv, "b").unwrap();
        assert!(!dlg.accept_remote_cseq(1)); // same as INVITE's
        assert!(dlg.accept_remote_cseq(2));
        assert!(!dlg.accept_remote_cseq(2));
        assert!(dlg.accept_remote_cseq(10));
    }

    #[test]
    fn uac_requires_from_tag() {
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@h".parse().unwrap());
        b.from(NameAddr::new("sip:a@h".parse().unwrap()))
            .to(NameAddr::new("sip:b@h".parse().unwrap()))
            .call_id("c")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("h", "z9hG4bK"));
        assert_eq!(
            Dialog::uac_from_invite(&b.build()),
            Err(DialogError::MissingLocalTag)
        );
    }
}
