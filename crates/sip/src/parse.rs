//! Wire-format parsing of SIP messages.
//!
//! The parser is strict about the framing the IDS depends on (start line,
//! header/body split, `Content-Length` consistency) and lenient about
//! header *values*, which are stored raw and interpreted on demand. That
//! mirrors how the paper's Distiller distinguishes "not SIP at all" from
//! "SIP with a bad format" — the latter is a footprint the billing-fraud
//! rule wants to see, not a parse failure.
//!
//! Two implementations share the contract:
//!
//! * [`SipMessage::parse_bytes`] — the production path: SWAR
//!   terminator scanning (see [`crate::scan`]), length + first-byte
//!   dispatch for method and header-name matching.
//! * [`SipMessage::parse_bytes_reference`] — the retained naive
//!   per-byte tokenizer. It is the *specification*: the fast path must
//!   agree with it byte-for-byte on every input, which the differential
//!   property tests (and the pipeline bench's speedup gate) enforce.

use crate::bstr::ByteStr;
use crate::header::{HeaderName, Headers};
use crate::method::Method;
use crate::msg::{SipMessage, StartLine};
use crate::scan;
use crate::status::StatusCode;
use crate::uri::SipUri;
use bytes::Bytes;
use std::fmt;

/// Error parsing bytes as a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SipParseError {
    /// Input is empty.
    Empty,
    /// Input is not UTF-8 text where headers must be.
    NotText,
    /// The first line is neither a valid request line nor status line.
    BadStartLine(String),
    /// A header line has no `:` separator.
    BadHeaderLine(String),
    /// No blank line terminates the header section.
    MissingHeaderTerminator,
    /// `Content-Length` disagrees with the actual body size.
    BodyLengthMismatch {
        /// Declared `Content-Length`.
        declared: usize,
        /// Bytes actually present after the header terminator.
        actual: usize,
    },
}

impl fmt::Display for SipParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipParseError::Empty => write!(f, "empty input"),
            SipParseError::NotText => write!(f, "header section is not utf-8 text"),
            SipParseError::BadStartLine(l) => write!(f, "bad start line: `{l}`"),
            SipParseError::BadHeaderLine(l) => write!(f, "header line without colon: `{l}`"),
            SipParseError::MissingHeaderTerminator => {
                write!(f, "no blank line terminating headers")
            }
            SipParseError::BodyLengthMismatch { declared, actual } => write!(
                f,
                "content-length {declared} disagrees with body of {actual} bytes"
            ),
        }
    }
}

impl std::error::Error for SipParseError {}

impl SipMessage {
    /// Parses a SIP message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SipParseError`] when the input is not framed as a SIP
    /// message. Messages that frame correctly but violate SIP's
    /// mandatory-header rules parse successfully; use
    /// [`SipMessage::format_violations`] to detect those.
    ///
    /// # Examples
    ///
    /// ```
    /// use scidive_sip::msg::SipMessage;
    ///
    /// let raw = b"OPTIONS sip:b@10.0.0.2 SIP/2.0\r\n\
    ///             Call-ID: x\r\n\
    ///             Content-Length: 0\r\n\r\n";
    /// let msg = SipMessage::parse(raw)?;
    /// assert!(msg.is_request());
    /// # Ok::<(), scidive_sip::parse::SipParseError>(())
    /// ```
    pub fn parse(input: &[u8]) -> Result<SipMessage, SipParseError> {
        SipMessage::parse_bytes(Bytes::copy_from_slice(input))
    }

    /// Parses a SIP message from a shared wire buffer, zero-copy: header
    /// values and the body are stored as slices of `input` (short values
    /// are inlined), so the steady-state parse path performs no
    /// per-header heap allocation.
    ///
    /// This is the fast implementation: the header/body separator is
    /// found by a SWAR scan and method/header names match by length +
    /// first-byte dispatch. Its observable behavior is byte-identical
    /// to [`SipMessage::parse_bytes_reference`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SipMessage::parse`].
    pub fn parse_bytes(input: Bytes) -> Result<SipMessage, SipParseError> {
        if input.is_empty() {
            return Err(SipParseError::Empty);
        }
        // Find the header/body separator: SWAR scan for `\r\n\r\n`
        // first, over the whole input, then the bare-LF fallback —
        // exactly the reference's search order.
        let sep = find_header_end(&input).ok_or(SipParseError::MissingHeaderTerminator)?;
        let head =
            std::str::from_utf8(&input[..sep.header_end]).map_err(|_| SipParseError::NotText)?;

        // Re-anchors a `&str` derived from `head` as a slice of the
        // shared buffer (or inlines it), without copying long values.
        // Short values inline via one fixed-size window copy when a
        // full window of `input` follows the value (the tail bytes are
        // unobservable padding); only values butting up against the end
        // of the buffer fall back to the length-dispatched copy.
        let base = head.as_ptr() as usize;
        let anchor = |s: &str| -> ByteStr {
            let off = s.as_ptr() as usize - base;
            if s.len() <= ByteStr::INLINE_CAP {
                match input.get(off..off + ByteStr::INLINE_CAP) {
                    Some(window) => {
                        ByteStr::inline_padded(window.try_into().expect("sized slice"), s.len())
                    }
                    None => ByteStr::from(s),
                }
            } else {
                // `s` is a subslice of the UTF-8-validated `head`, so
                // the slice needs no re-validation.
                ByteStr::shared_validated(input.slice(off..off + s.len()))
            }
        };

        // Tolerate bare-LF line endings alongside canonical CRLF: a
        // cursor walks LF-delimited lines, trimming a trailing CR and
        // skipping empties — the same view the reference's
        // split/strip/filter chain produces, but the line breaks are
        // located by one SWAR pass over the whole head up front
        // (per-line scanning pays loop setup on every ~40-byte line).
        let mut cursor = LineCursor::new(head);
        let start = parse_start_line(cursor.next().ok_or(SipParseError::Empty)?)?;

        let mut headers = Headers::for_parse();
        let mut pending = cursor.next();
        while let Some(line) = pending.take() {
            // Header folding: continuation lines start with SP/HT. Only
            // a folded header pays for an owned joined line. The
            // lookahead line is either consumed as a continuation or
            // carried into the next loop turn as `pending`.
            let mut folded: Option<String> = None;
            loop {
                match cursor.next() {
                    Some(cont) if matches!(cont.as_bytes().first(), Some(b' ' | b'\t')) => {
                        let joined = folded.get_or_insert_with(|| line.to_string());
                        joined.push(' ');
                        joined.push_str(cont.trim_start());
                    }
                    other => {
                        pending = other;
                        break;
                    }
                }
            }
            match folded {
                None => {
                    let colon = scan::memchr(b':', line.as_bytes())
                        .ok_or_else(|| SipParseError::BadHeaderLine(line.to_string()))?;
                    headers.push(
                        HeaderName::parse(trim_ws(&line[..colon])),
                        anchor(trim_ws(&line[colon + 1..])),
                    );
                }
                Some(joined) => {
                    let (name, value) = joined
                        .split_once(':')
                        .ok_or_else(|| SipParseError::BadHeaderLine(joined.clone()))?;
                    headers.push(HeaderName::parse(name.trim()), ByteStr::from(value.trim()));
                }
            }
        }

        let body = slice_body(&input, sep.body_start, &headers)?;
        Ok(SipMessage {
            start,
            headers,
            body,
        })
    }

    /// The retained naive tokenizer: per-byte window search for the
    /// header terminator, linear scans for method and header-name
    /// matching. Kept as the behavioral specification the fast path is
    /// differentially tested against, and as the `reference_impl`
    /// baseline the pipeline bench's speedup gate measures.
    ///
    /// # Errors
    ///
    /// Same contract as [`SipMessage::parse`].
    pub fn parse_bytes_reference(input: Bytes) -> Result<SipMessage, SipParseError> {
        if input.is_empty() {
            return Err(SipParseError::Empty);
        }
        let sep = find_header_end_reference(&input).ok_or(SipParseError::MissingHeaderTerminator)?;
        let head =
            std::str::from_utf8(&input[..sep.header_end]).map_err(|_| SipParseError::NotText)?;

        // The pre-optimization `ByteStr` inlined at most 38 bytes; the
        // reference keeps that threshold (independent of the current
        // `ByteStr::INLINE_CAP`) so it pays the shared-slice refcount
        // and re-validation costs the old parser paid. Representation
        // differs, content (and thus equality) does not.
        const REFERENCE_INLINE_CAP: usize = 38;
        let base = head.as_ptr() as usize;
        let anchor = |s: &str| -> ByteStr {
            if s.len() <= REFERENCE_INLINE_CAP {
                ByteStr::from(s)
            } else {
                let off = s.as_ptr() as usize - base;
                ByteStr::from_utf8(input.slice(off..off + s.len()))
                    .expect("substring of validated head")
            }
        };

        let mut lines = head
            .split('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .filter(|l| !l.is_empty())
            .peekable();
        let start = parse_start_line_reference(lines.next().ok_or(SipParseError::Empty)?)?;

        let mut headers = Headers::new();
        while let Some(line) = lines.next() {
            let mut folded: Option<String> = None;
            while lines
                .peek()
                .is_some_and(|next| next.starts_with([' ', '\t']))
            {
                let cont = lines.next().expect("peeked");
                let joined = folded.get_or_insert_with(|| line.to_string());
                joined.push(' ');
                joined.push_str(cont.trim_start());
            }
            match folded {
                None => {
                    let (name, value) = line
                        .split_once(':')
                        .ok_or_else(|| SipParseError::BadHeaderLine(line.to_string()))?;
                    headers.push(HeaderName::parse_reference(name.trim()), anchor(value.trim()));
                }
                Some(joined) => {
                    let (name, value) = joined
                        .split_once(':')
                        .ok_or_else(|| SipParseError::BadHeaderLine(joined.clone()))?;
                    headers.push(
                        HeaderName::parse_reference(name.trim()),
                        ByteStr::from(value.trim()),
                    );
                }
            }
        }

        let body = slice_body(&input, sep.body_start, &headers)?;
        Ok(SipMessage {
            start,
            headers,
            body,
        })
    }
}

/// `Content-Length` check when declared; the body shares `input`.
/// Common to both implementations — the rule is framing policy, not
/// scanning.
fn slice_body(input: &Bytes, body_start: usize, headers: &Headers) -> Result<Bytes, SipParseError> {
    let body_len = input.len() - body_start;
    if let Some(decl) = headers.get(&HeaderName::ContentLength) {
        match decl.trim().parse::<usize>() {
            Ok(declared) if declared == body_len => Ok(input.slice(body_start..)),
            Ok(declared) if declared < body_len => {
                // Extra trailing bytes beyond the declared body are
                // truncated, as a UDP stack would.
                Ok(input.slice(body_start..body_start + declared))
            }
            Ok(declared) => Err(SipParseError::BodyLengthMismatch {
                declared,
                actual: body_len,
            }),
            Err(_) => Ok(input.slice(body_start..)),
        }
    } else {
        Ok(input.slice(body_start..))
    }
}

/// Quick sniff: does this payload look like SIP at all? Used by the
/// Distiller's classifier before committing to a full parse. Dispatches
/// on the first byte instead of trying every method token.
pub fn looks_like_sip(payload: &[u8]) -> bool {
    if payload.starts_with(b"SIP/2.0 ") {
        return true;
    }
    let Some(&first) = payload.first() else {
        return false;
    };
    Method::by_first_byte(first).iter().any(|m| {
        let token = m.as_str().as_bytes();
        payload.starts_with(token) && payload.get(token.len()) == Some(&b' ')
    })
}

/// The retained linear-scan sniff, for differential testing.
pub fn looks_like_sip_reference(payload: &[u8]) -> bool {
    if payload.starts_with(b"SIP/2.0 ") {
        return true;
    }
    Method::ALL
        .iter()
        .any(|m| payload.starts_with(m.as_str().as_bytes()) && {
            let rest = &payload[m.as_str().len()..];
            rest.first() == Some(&b' ')
        })
}

/// Cursor over the non-empty, CR-stripped lines of a header section —
/// the same view the reference's
/// `split('\n') → strip_suffix('\r') → filter(non-empty)` chain
/// produces.
///
/// Construction locates every LF in one SWAR pass
/// ([`scan::memchr_all`]) so iteration is just table lookups; a head
/// with more line breaks than the table holds (hostile input — no real
/// message has 96+ lines) falls back to per-line [`next_line`]
/// scanning.
// The LF table makes `Indexed` large, but the cursor lives on the
// stack for the duration of one parse; boxing the table (clippy's
// suggestion) would put an allocation back on the per-message path.
#[allow(clippy::large_enum_variant)]
enum LineCursor<'a> {
    /// Line breaks pre-located; `i` indexes the next LF, `pos` is the
    /// current line start.
    Indexed {
        /// The header section.
        head: &'a str,
        /// LF positions within `head`, ascending.
        lf: [u32; scan::HIT_CAP],
        /// Number of valid entries in `lf`.
        n: usize,
        /// Index of the next unconsumed LF.
        i: usize,
        /// Byte offset of the next line start.
        pos: usize,
    },
    /// Fallback: scan for each LF as lines are consumed.
    Scan {
        /// The header section.
        head: &'a str,
        /// Byte offset of the next line start.
        pos: usize,
    },
}

impl<'a> LineCursor<'a> {
    fn new(head: &'a str) -> LineCursor<'a> {
        let mut lf = [0u32; scan::HIT_CAP];
        match scan::memchr_all(b'\n', head.as_bytes(), &mut lf) {
            Some(n) => LineCursor::Indexed {
                head,
                lf,
                n,
                i: 0,
                pos: 0,
            },
            None => LineCursor::Scan { head, pos: 0 },
        }
    }

    /// Next non-empty line, stripped of its trailing CR. LF and CR are
    /// ASCII, so the byte positions are `char` boundaries.
    #[inline]
    fn next(&mut self) -> Option<&'a str> {
        match self {
            LineCursor::Indexed {
                head,
                lf,
                n,
                i,
                pos,
                ..
            } => {
                let bytes = head.as_bytes();
                while *pos < bytes.len() {
                    let start = *pos;
                    let end_of_line = if *i < *n {
                        let p = lf[*i] as usize;
                        *i += 1;
                        p
                    } else {
                        bytes.len()
                    };
                    *pos = end_of_line + 1;
                    let mut end = end_of_line;
                    if end > start && bytes[end - 1] == b'\r' {
                        end -= 1;
                    }
                    if end > start {
                        return Some(&head[start..end]);
                    }
                }
                None
            }
            LineCursor::Scan { head, pos } => next_line(head, pos),
        }
    }
}

/// Next non-empty line of `head` starting at `*pos`, stripped of its
/// trailing CR; advances `*pos` past the line's terminating LF. Yields
/// exactly the lines of the reference's
/// `split('\n') → strip_suffix('\r') → filter(non-empty)` chain. LF and
/// CR are ASCII, so the byte positions are `char` boundaries.
#[inline]
fn next_line<'a>(head: &'a str, pos: &mut usize) -> Option<&'a str> {
    let bytes = head.as_bytes();
    while *pos < bytes.len() {
        let start = *pos;
        let end_of_line = match scan::memchr(b'\n', &bytes[start..]) {
            Some(i) => start + i,
            None => bytes.len(),
        };
        *pos = end_of_line + 1;
        let mut end = end_of_line;
        if end > start && bytes[end - 1] == b'\r' {
            end -= 1;
        }
        if end > start {
            return Some(&head[start..end]);
        }
    }
    None
}

/// Byte-level `str::trim`: strips ASCII whitespace with two byte scans,
/// deferring to the unicode-aware `trim` only when a trimmed boundary
/// byte is `>= 0x80` (every multibyte whitespace char — NBSP, NEL, the
/// U+2000 block — both starts and ends with such a byte, so the fallback
/// triggers whenever unicode whitespace could remain). The stripped
/// bytes are all ASCII, so `i` and `j` stay on `char` boundaries.
#[inline]
fn trim_ws(s: &str) -> &str {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && matches!(b[i], b'\t' | b'\n' | b'\x0B' | b'\x0C' | b'\r' | b' ') {
        i += 1;
    }
    let mut j = b.len();
    while j > i && matches!(b[j - 1], b'\t' | b'\n' | b'\x0B' | b'\x0C' | b'\r' | b' ') {
        j -= 1;
    }
    if i < j && (b[i] >= 0x80 || b[j - 1] >= 0x80) {
        return s[i..j].trim();
    }
    &s[i..j]
}

struct HeaderEnd {
    header_end: usize,
    body_start: usize,
}

fn find_header_end(input: &[u8]) -> Option<HeaderEnd> {
    if let Some(pos) = scan::find_crlf_crlf(input) {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 4,
        });
    }
    if let Some(pos) = scan::find_lf_lf(input) {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 2,
        });
    }
    None
}

fn find_header_end_reference(input: &[u8]) -> Option<HeaderEnd> {
    if let Some(pos) = window_find(input, b"\r\n\r\n") {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 4,
        });
    }
    if let Some(pos) = window_find(input, b"\n\n") {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 2,
        });
    }
    None
}

fn window_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
}

fn parse_start_line(line: &str) -> Result<StartLine, SipParseError> {
    let bad = || SipParseError::BadStartLine(line.to_string());
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        // Status line.
        let (code_str, reason) = rest.split_once(' ').unwrap_or((rest, ""));
        let code_num: u16 = code_str.parse().map_err(|_| bad())?;
        let code = StatusCode::try_from(code_num).map_err(|_| bad())?;
        return Ok(StartLine::Response {
            code,
            reason: ByteStr::from(reason),
        });
    }
    // Request line: METHOD SP uri SP SIP/2.0, split at the first two
    // spaces. Equivalent to the reference's `split(' ')` walk: a
    // doubled separator yields an empty URI (parse error), and any
    // trailing fields leave the tail != "SIP/2.0".
    let sp1 = scan::memchr(b' ', line.as_bytes()).ok_or_else(bad)?;
    let method = Method::parse_token(&line[..sp1]).ok_or_else(bad)?;
    let rest = &line[sp1 + 1..];
    let sp2 = scan::memchr(b' ', rest.as_bytes()).ok_or_else(bad)?;
    let uri: SipUri = rest[..sp2].parse().map_err(|_| bad())?;
    if &rest[sp2 + 1..] != "SIP/2.0" {
        return Err(bad());
    }
    Ok(StartLine::Request { method, uri })
}

/// The retained start-line parser: linear method scan, and the
/// allocating URI/reason construction the pre-optimization parser used
/// (`String` per reason and per URI part before wrapping) — so the
/// reference pays the same steady-state allocation costs it used to.
fn parse_start_line_reference(line: &str) -> Result<StartLine, SipParseError> {
    let bad = || SipParseError::BadStartLine(line.to_string());
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        let (code_str, reason) = rest.split_once(' ').unwrap_or((rest, ""));
        let code_num: u16 = code_str.parse().map_err(|_| bad())?;
        let code = StatusCode::try_from(code_num).map_err(|_| bad())?;
        return Ok(StartLine::Response {
            code,
            reason: ByteStr::from(reason.to_string()),
        });
    }
    let mut parts = line.split(' ');
    let method: Method = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let uri = SipUri::parse_reference(parts.next().ok_or_else(bad)?).map_err(|_| bad())?;
    let version = parts.next().ok_or_else(bad)?;
    if version != "SIP/2.0" || parts.next().is_some() {
        return Err(bad());
    }
    Ok(StartLine::Request { method, uri })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{CSeq, NameAddr, Via};
    use crate::msg::{response_to, RequestBuilder};

    fn sample_request_bytes() -> Bytes {
        RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse().unwrap())
            .from(NameAddr::new("sip:alice@10.0.0.1".parse().unwrap()).with_tag("a1"))
            .to(NameAddr::new("sip:bob@10.0.0.2".parse().unwrap()))
            .call_id("c1@10.0.0.1")
            .cseq(CSeq::new(7, Method::Invite))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bKx"))
            .body("application/sdp", "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\n")
            .build()
            .to_bytes()
    }

    #[test]
    fn roundtrip_request() {
        let bytes = sample_request_bytes();
        let msg = SipMessage::parse(&bytes).unwrap();
        assert_eq!(msg.method(), Some(Method::Invite));
        assert_eq!(msg.call_id().unwrap(), "c1@10.0.0.1");
        assert_eq!(msg.cseq().unwrap().seq, 7);
        assert_eq!(msg.body.len(), 30);
        // Re-serialize and re-parse: stable.
        let again = SipMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(again, msg);
    }

    #[test]
    fn roundtrip_response() {
        let req = SipMessage::parse(&sample_request_bytes()).unwrap();
        let resp = response_to(&req, StatusCode::UNAUTHORIZED, Some("srv"));
        let parsed = SipMessage::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status(), Some(StatusCode::UNAUTHORIZED));
        assert_eq!(parsed.to().unwrap().tag(), Some("srv"));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(SipMessage::parse(b""), Err(SipParseError::Empty));
        assert_eq!(
            SipMessage::parse(b"INVITE sip:b@h SIP/2.0\r\nCall-ID: x\r\n"),
            Err(SipParseError::MissingHeaderTerminator)
        );
        assert!(matches!(
            SipMessage::parse(b"NOTAMETHOD sip:b@h SIP/2.0\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"INVITE sip:b@h SIP/1.0\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"INVITE sip:b@h SIP/2.0\r\nbadline\r\n\r\n"),
            Err(SipParseError::BadHeaderLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"SIP/2.0 999999 Huh\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
    }

    #[test]
    fn content_length_too_large_is_error() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(
            SipMessage::parse(raw),
            Err(SipParseError::BodyLengthMismatch {
                declared: 10,
                actual: 3
            })
        );
    }

    #[test]
    fn content_length_smaller_truncates() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nContent-Length: 3\r\n\r\nabcdef";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(&msg.body[..], b"abc");
    }

    #[test]
    fn missing_content_length_takes_rest() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nCall-ID: x\r\n\r\nbody!";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(&msg.body[..], b"body!");
    }

    #[test]
    fn bare_lf_tolerated() {
        let raw = b"BYE sip:b@h SIP/2.0\nCall-ID: x\nCSeq: 2 BYE\n\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(msg.method(), Some(Method::Bye));
        assert_eq!(msg.cseq().unwrap(), CSeq::new(2, Method::Bye));
    }

    #[test]
    fn folded_header_joined() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nSubject: first\r\n second\r\nCall-ID: x\r\n\r\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(
            msg.headers.get(&HeaderName::Subject).unwrap(),
            "first second"
        );
        assert_eq!(msg.call_id().unwrap(), "x");
    }

    #[test]
    fn compact_header_forms_fold() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\ni: compact-id\r\nv: SIP/2.0/UDP h;branch=z9\r\n\r\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(msg.call_id().unwrap(), "compact-id");
        assert_eq!(msg.via_top().unwrap().branch(), Some("z9"));
    }

    #[test]
    fn sniffer_accepts_sip_rejects_rtp() {
        for sniff in [looks_like_sip, looks_like_sip_reference] {
            assert!(sniff(b"INVITE sip:b@h SIP/2.0\r\n"));
            assert!(sniff(b"SIP/2.0 200 OK\r\n"));
            assert!(!sniff(b"INVITEX sip:b@h"));
            assert!(!sniff(&[0x80, 0x00, 0x01, 0x02]));
            assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        }
    }

    #[test]
    fn trim_ws_matches_str_trim() {
        for s in [
            "",
            "   ",
            "x",
            "  spaced out  ",
            "\t\r\nmixed\x0B\x0C ",
            "\u{00A0}nbsp-led",
            "nbsp-trailed\u{00A0}",
            " \u{2003}em-space sandwich\u{2003} ",
            "inner \u{00A0} stays",
            "\u{85}",
        ] {
            assert_eq!(trim_ws(s), s.trim(), "diverged on {s:?}");
        }
    }

    #[test]
    fn binary_garbage_rejected() {
        let garbage: Vec<u8> = (0..64).map(|i| (i * 37 % 251) as u8).collect();
        assert!(SipMessage::parse(&garbage).is_err());
    }

    /// The fast parser and the retained reference must agree — result
    /// or error — on a corpus of well-formed, hostile, and truncated
    /// inputs. (The randomized version lives in the core crate's
    /// property tests.)
    #[test]
    fn fast_parser_matches_reference_on_corpus() {
        let mut corpus: Vec<Vec<u8>> = vec![
            sample_request_bytes().to_vec(),
            b"SIP/2.0 200 OK\r\nCall-ID: x\r\n\r\n".to_vec(),
            b"SIP/2.0 180\r\n\r\n".to_vec(),
            b"BYE sip:b@h SIP/2.0\nCall-ID: x\nCSeq: 2 BYE\n\n".to_vec(),
            b"INVITE sip:b@h SIP/2.0\r\nSubject: a\r\n b\r\n\tc\r\nCall-ID: x\r\n\r\n".to_vec(),
            b"INVITE sip:b@h SIP/2.0\r\nContent-Length: 99\r\n\r\nshort".to_vec(),
            b"INVITE sip:b@h SIP/2.0\r\nContent-Length: bogus\r\n\r\nrest".to_vec(),
            b"OPTIONS sip:b@h SIP/2.0\r\nX-Long: ".to_vec(),
            vec![0xff, 0x00, b'\r', b'\n', b'\r', b'\n'],
            b"\r\n\r\n".to_vec(),
            b"INVITE  sip:b@h  SIP/2.0\r\n\r\n".to_vec(),
        ];
        // Oversized value that cannot inline.
        let mut long = b"REGISTER sip:h SIP/2.0\r\nX-Pad: ".to_vec();
        long.extend(std::iter::repeat_n(b'y', 200));
        long.extend(b"\r\n\r\ntrailing");
        corpus.push(long);
        // Hostile line count: overflows the one-pass line table, so the
        // fast path takes the incremental-scan fallback.
        let mut many = b"OPTIONS sip:h SIP/2.0\r\n".to_vec();
        for k in 0..120 {
            many.extend(format!("X-{k}: v\r\n").into_bytes());
        }
        many.extend(b"\r\n");
        corpus.push(many);
        for raw in &corpus {
            // Truncation at every offset: framing decisions must agree
            // even on torn CRLFs.
            for cut in 0..=raw.len() {
                let input = Bytes::copy_from_slice(&raw[..cut]);
                let fast = SipMessage::parse_bytes(input.clone());
                let reference = SipMessage::parse_bytes_reference(input);
                assert_eq!(fast, reference, "diverged at cut {cut} of {raw:?}");
            }
        }
    }
}
