//! Wire-format parsing of SIP messages.
//!
//! The parser is strict about the framing the IDS depends on (start line,
//! header/body split, `Content-Length` consistency) and lenient about
//! header *values*, which are stored raw and interpreted on demand. That
//! mirrors how the paper's Distiller distinguishes "not SIP at all" from
//! "SIP with a bad format" — the latter is a footprint the billing-fraud
//! rule wants to see, not a parse failure.

use crate::bstr::ByteStr;
use crate::header::{HeaderName, Headers};
use crate::method::Method;
use crate::msg::{SipMessage, StartLine};
use crate::status::StatusCode;
use crate::uri::SipUri;
use bytes::Bytes;
use std::fmt;

/// Error parsing bytes as a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SipParseError {
    /// Input is empty.
    Empty,
    /// Input is not UTF-8 text where headers must be.
    NotText,
    /// The first line is neither a valid request line nor status line.
    BadStartLine(String),
    /// A header line has no `:` separator.
    BadHeaderLine(String),
    /// No blank line terminates the header section.
    MissingHeaderTerminator,
    /// `Content-Length` disagrees with the actual body size.
    BodyLengthMismatch {
        /// Declared `Content-Length`.
        declared: usize,
        /// Bytes actually present after the header terminator.
        actual: usize,
    },
}

impl fmt::Display for SipParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SipParseError::Empty => write!(f, "empty input"),
            SipParseError::NotText => write!(f, "header section is not utf-8 text"),
            SipParseError::BadStartLine(l) => write!(f, "bad start line: `{l}`"),
            SipParseError::BadHeaderLine(l) => write!(f, "header line without colon: `{l}`"),
            SipParseError::MissingHeaderTerminator => {
                write!(f, "no blank line terminating headers")
            }
            SipParseError::BodyLengthMismatch { declared, actual } => write!(
                f,
                "content-length {declared} disagrees with body of {actual} bytes"
            ),
        }
    }
}

impl std::error::Error for SipParseError {}

impl SipMessage {
    /// Parses a SIP message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SipParseError`] when the input is not framed as a SIP
    /// message. Messages that frame correctly but violate SIP's
    /// mandatory-header rules parse successfully; use
    /// [`SipMessage::format_violations`] to detect those.
    ///
    /// # Examples
    ///
    /// ```
    /// use scidive_sip::msg::SipMessage;
    ///
    /// let raw = b"OPTIONS sip:b@10.0.0.2 SIP/2.0\r\n\
    ///             Call-ID: x\r\n\
    ///             Content-Length: 0\r\n\r\n";
    /// let msg = SipMessage::parse(raw)?;
    /// assert!(msg.is_request());
    /// # Ok::<(), scidive_sip::parse::SipParseError>(())
    /// ```
    pub fn parse(input: &[u8]) -> Result<SipMessage, SipParseError> {
        SipMessage::parse_bytes(Bytes::copy_from_slice(input))
    }

    /// Parses a SIP message from a shared wire buffer, zero-copy: header
    /// values and the body are stored as slices of `input` (short values
    /// are inlined), so the steady-state parse path performs no
    /// per-header heap allocation.
    ///
    /// # Errors
    ///
    /// Same contract as [`SipMessage::parse`].
    pub fn parse_bytes(input: Bytes) -> Result<SipMessage, SipParseError> {
        if input.is_empty() {
            return Err(SipParseError::Empty);
        }
        // Find the header/body separator.
        let sep = find_header_end(&input).ok_or(SipParseError::MissingHeaderTerminator)?;
        let head =
            std::str::from_utf8(&input[..sep.header_end]).map_err(|_| SipParseError::NotText)?;

        // Re-anchors a `&str` derived from `head` as a slice of the
        // shared buffer (or inlines it), without copying long values.
        let base = head.as_ptr() as usize;
        let anchor = |s: &str| -> ByteStr {
            if s.len() <= ByteStr::INLINE_CAP {
                ByteStr::from(s)
            } else {
                let off = s.as_ptr() as usize - base;
                ByteStr::from_utf8(input.slice(off..off + s.len()))
                    .expect("substring of validated head")
            }
        };

        // Tolerate bare-LF line endings alongside canonical CRLF:
        // splitting on LF and trimming a trailing CR handles both (and
        // mixtures) identically, one line at a time — no line vector.
        let mut lines = head
            .split('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .filter(|l| !l.is_empty())
            .peekable();
        let start = parse_start_line(lines.next().ok_or(SipParseError::Empty)?)?;

        let mut headers = Headers::new();
        while let Some(line) = lines.next() {
            // Header folding: continuation lines start with SP/HT. Only
            // a folded header pays for an owned joined line.
            let mut folded: Option<String> = None;
            while lines
                .peek()
                .is_some_and(|next| next.starts_with([' ', '\t']))
            {
                let cont = lines.next().expect("peeked");
                let joined = folded.get_or_insert_with(|| line.to_string());
                joined.push(' ');
                joined.push_str(cont.trim_start());
            }
            match folded {
                None => {
                    let (name, value) = line
                        .split_once(':')
                        .ok_or_else(|| SipParseError::BadHeaderLine(line.to_string()))?;
                    headers.push(HeaderName::parse(name.trim()), anchor(value.trim()));
                }
                Some(joined) => {
                    let (name, value) = joined
                        .split_once(':')
                        .ok_or_else(|| SipParseError::BadHeaderLine(joined.clone()))?;
                    headers.push(HeaderName::parse(name.trim()), ByteStr::from(value.trim()));
                }
            }
        }

        // Content-Length check when declared. The body shares `input`.
        let body_len = input.len() - sep.body_start;
        let body = if let Some(decl) = headers.get(&HeaderName::ContentLength) {
            match decl.trim().parse::<usize>() {
                Ok(declared) if declared == body_len => input.slice(sep.body_start..),
                Ok(declared) if declared < body_len => {
                    // Extra trailing bytes beyond the declared body are
                    // truncated, as a UDP stack would.
                    input.slice(sep.body_start..sep.body_start + declared)
                }
                Ok(declared) => {
                    return Err(SipParseError::BodyLengthMismatch {
                        declared,
                        actual: body_len,
                    })
                }
                Err(_) => input.slice(sep.body_start..),
            }
        } else {
            input.slice(sep.body_start..)
        };

        Ok(SipMessage {
            start,
            headers,
            body,
        })
    }
}

/// Quick sniff: does this payload look like SIP at all? Used by the
/// Distiller's classifier before committing to a full parse.
pub fn looks_like_sip(payload: &[u8]) -> bool {
    if payload.starts_with(b"SIP/2.0 ") {
        return true;
    }
    Method::ALL
        .iter()
        .any(|m| payload.starts_with(m.as_str().as_bytes()) && {
            let rest = &payload[m.as_str().len()..];
            rest.first() == Some(&b' ')
        })
}

struct HeaderEnd {
    header_end: usize,
    body_start: usize,
}

fn find_header_end(input: &[u8]) -> Option<HeaderEnd> {
    if let Some(pos) = window_find(input, b"\r\n\r\n") {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 4,
        });
    }
    if let Some(pos) = window_find(input, b"\n\n") {
        return Some(HeaderEnd {
            header_end: pos,
            body_start: pos + 2,
        });
    }
    None
}

fn window_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
}

fn parse_start_line(line: &str) -> Result<StartLine, SipParseError> {
    let bad = || SipParseError::BadStartLine(line.to_string());
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        // Status line.
        let (code_str, reason) = rest.split_once(' ').unwrap_or((rest, ""));
        let code_num: u16 = code_str.parse().map_err(|_| bad())?;
        let code = StatusCode::try_from(code_num).map_err(|_| bad())?;
        return Ok(StartLine::Response {
            code,
            reason: reason.to_string(),
        });
    }
    // Request line: METHOD SP uri SP SIP/2.0
    let mut parts = line.split(' ');
    let method: Method = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let uri: SipUri = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let version = parts.next().ok_or_else(bad)?;
    if version != "SIP/2.0" || parts.next().is_some() {
        return Err(bad());
    }
    Ok(StartLine::Request { method, uri })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{CSeq, NameAddr, Via};
    use crate::msg::{response_to, RequestBuilder};

    fn sample_request_bytes() -> Bytes {
        RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse().unwrap())
            .from(NameAddr::new("sip:alice@10.0.0.1".parse().unwrap()).with_tag("a1"))
            .to(NameAddr::new("sip:bob@10.0.0.2".parse().unwrap()))
            .call_id("c1@10.0.0.1")
            .cseq(CSeq::new(7, Method::Invite))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bKx"))
            .body("application/sdp", "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\n")
            .build()
            .to_bytes()
    }

    #[test]
    fn roundtrip_request() {
        let bytes = sample_request_bytes();
        let msg = SipMessage::parse(&bytes).unwrap();
        assert_eq!(msg.method(), Some(Method::Invite));
        assert_eq!(msg.call_id().unwrap(), "c1@10.0.0.1");
        assert_eq!(msg.cseq().unwrap().seq, 7);
        assert_eq!(msg.body.len(), 30);
        // Re-serialize and re-parse: stable.
        let again = SipMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(again, msg);
    }

    #[test]
    fn roundtrip_response() {
        let req = SipMessage::parse(&sample_request_bytes()).unwrap();
        let resp = response_to(&req, StatusCode::UNAUTHORIZED, Some("srv"));
        let parsed = SipMessage::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status(), Some(StatusCode::UNAUTHORIZED));
        assert_eq!(parsed.to().unwrap().tag(), Some("srv"));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(SipMessage::parse(b""), Err(SipParseError::Empty));
        assert_eq!(
            SipMessage::parse(b"INVITE sip:b@h SIP/2.0\r\nCall-ID: x\r\n"),
            Err(SipParseError::MissingHeaderTerminator)
        );
        assert!(matches!(
            SipMessage::parse(b"NOTAMETHOD sip:b@h SIP/2.0\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"INVITE sip:b@h SIP/1.0\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"INVITE sip:b@h SIP/2.0\r\nbadline\r\n\r\n"),
            Err(SipParseError::BadHeaderLine(_))
        ));
        assert!(matches!(
            SipMessage::parse(b"SIP/2.0 999999 Huh\r\n\r\n"),
            Err(SipParseError::BadStartLine(_))
        ));
    }

    #[test]
    fn content_length_too_large_is_error() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(
            SipMessage::parse(raw),
            Err(SipParseError::BodyLengthMismatch {
                declared: 10,
                actual: 3
            })
        );
    }

    #[test]
    fn content_length_smaller_truncates() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nContent-Length: 3\r\n\r\nabcdef";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(&msg.body[..], b"abc");
    }

    #[test]
    fn missing_content_length_takes_rest() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nCall-ID: x\r\n\r\nbody!";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(&msg.body[..], b"body!");
    }

    #[test]
    fn bare_lf_tolerated() {
        let raw = b"BYE sip:b@h SIP/2.0\nCall-ID: x\nCSeq: 2 BYE\n\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(msg.method(), Some(Method::Bye));
        assert_eq!(msg.cseq().unwrap(), CSeq::new(2, Method::Bye));
    }

    #[test]
    fn folded_header_joined() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\nSubject: first\r\n second\r\nCall-ID: x\r\n\r\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(
            msg.headers.get(&HeaderName::Subject).unwrap(),
            "first second"
        );
        assert_eq!(msg.call_id().unwrap(), "x");
    }

    #[test]
    fn compact_header_forms_fold() {
        let raw = b"INVITE sip:b@h SIP/2.0\r\ni: compact-id\r\nv: SIP/2.0/UDP h;branch=z9\r\n\r\n";
        let msg = SipMessage::parse(raw).unwrap();
        assert_eq!(msg.call_id().unwrap(), "compact-id");
        assert_eq!(msg.via_top().unwrap().branch(), Some("z9"));
    }

    #[test]
    fn sniffer_accepts_sip_rejects_rtp() {
        assert!(looks_like_sip(b"INVITE sip:b@h SIP/2.0\r\n"));
        assert!(looks_like_sip(b"SIP/2.0 200 OK\r\n"));
        assert!(!looks_like_sip(b"INVITEX sip:b@h"));
        assert!(!looks_like_sip(&[0x80, 0x00, 0x01, 0x02]));
        assert!(!looks_like_sip(b"GET / HTTP/1.1\r\n"));
    }

    #[test]
    fn binary_garbage_rejected() {
        let garbage: Vec<u8> = (0..64).map(|i| (i * 37 % 251) as u8).collect();
        assert!(SipMessage::parse(&garbage).is_err());
    }
}
