//! Minimal SDP (RFC 4566 subset) — just enough for a VoIP call:
//! origin, connection address, and audio media lines.
//!
//! The IDS cares about SDP because cross-protocol correlation starts
//! here: the `c=`/`m=` lines of an INVITE/200-OK exchange announce where
//! the RTP flow will live, which is how a SIP trail gets linked to an RTP
//! trail (paper §3.2) and how a forged re-INVITE redirects media (§4.2.3).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// One `m=` media description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaDesc {
    /// Media type, e.g. `audio`.
    pub media: String,
    /// Transport port for the media (RTP port; RTCP is port+1).
    pub port: u16,
    /// Transport profile, e.g. `RTP/AVP`.
    pub proto: String,
    /// Payload type numbers offered (0 = PCMU/G.711 µ-law).
    pub formats: Vec<u8>,
}

impl MediaDesc {
    /// A standard G.711 µ-law audio stream on `port`.
    pub fn audio_pcmu(port: u16) -> MediaDesc {
        MediaDesc {
            media: "audio".to_string(),
            port,
            proto: "RTP/AVP".to_string(),
            formats: vec![0],
        }
    }
}

/// A session description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionDescription {
    /// Originator username (`o=` first field).
    pub origin_user: String,
    /// Session id (`o=` second field).
    pub session_id: u64,
    /// Session version (`o=` third field); bumped on re-INVITE.
    pub session_version: u64,
    /// Connection address (`c=IN IP4 <addr>`), where media should be sent.
    pub connection: Ipv4Addr,
    /// Media descriptions.
    pub media: Vec<MediaDesc>,
}

impl SessionDescription {
    /// Builds a one-stream audio offer.
    ///
    /// # Examples
    ///
    /// ```
    /// use scidive_sip::sdp::SessionDescription;
    /// use std::net::Ipv4Addr;
    ///
    /// let sdp = SessionDescription::audio_offer("alice", Ipv4Addr::new(10, 0, 0, 1), 8000);
    /// assert_eq!(sdp.rtp_target(), Some((Ipv4Addr::new(10, 0, 0, 1), 8000)));
    /// let text = sdp.to_string();
    /// assert_eq!(text.parse::<SessionDescription>()?, sdp);
    /// # Ok::<(), scidive_sip::sdp::ParseSdpError>(())
    /// ```
    pub fn audio_offer(user: impl Into<String>, addr: Ipv4Addr, rtp_port: u16) -> SessionDescription {
        SessionDescription {
            origin_user: user.into(),
            session_id: 1,
            session_version: 1,
            connection: addr,
            media: vec![MediaDesc::audio_pcmu(rtp_port)],
        }
    }

    /// The `(address, port)` where the offerer expects RTP, if an audio
    /// stream is present.
    pub fn rtp_target(&self) -> Option<(Ipv4Addr, u16)> {
        self.media
            .iter()
            .find(|m| m.media == "audio")
            .map(|m| (self.connection, m.port))
    }

    /// Returns a copy re-targeted at a new address/port with the session
    /// version bumped — what a (genuine or forged) re-INVITE carries.
    pub fn retargeted(&self, addr: Ipv4Addr, rtp_port: u16) -> SessionDescription {
        let mut next = self.clone();
        next.session_version += 1;
        next.connection = addr;
        for m in &mut next.media {
            if m.media == "audio" {
                m.port = rtp_port;
            }
        }
        next
    }
}

impl fmt::Display for SessionDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "v=0\r")?;
        writeln!(
            f,
            "o={} {} {} IN IP4 {}\r",
            self.origin_user, self.session_id, self.session_version, self.connection
        )?;
        writeln!(f, "s=-\r")?;
        writeln!(f, "c=IN IP4 {}\r", self.connection)?;
        writeln!(f, "t=0 0\r")?;
        for m in &self.media {
            let formats: Vec<String> = m.formats.iter().map(|p| p.to_string()).collect();
            writeln!(
                f,
                "m={} {} {} {}\r",
                m.media,
                m.port,
                m.proto,
                formats.join(" ")
            )?;
        }
        Ok(())
    }
}

/// Error parsing an SDP body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSdpError {
    /// Missing `v=0` version line.
    MissingVersion,
    /// `o=` line absent or malformed.
    BadOrigin,
    /// `c=` line absent or not `IN IP4`.
    BadConnection,
    /// An `m=` line was malformed.
    BadMedia(String),
}

impl fmt::Display for ParseSdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSdpError::MissingVersion => write!(f, "sdp missing v=0"),
            ParseSdpError::BadOrigin => write!(f, "sdp o= line missing or malformed"),
            ParseSdpError::BadConnection => write!(f, "sdp c= line missing or not IN IP4"),
            ParseSdpError::BadMedia(l) => write!(f, "sdp m= line malformed: `{l}`"),
        }
    }
}

impl std::error::Error for ParseSdpError {}

impl FromStr for SessionDescription {
    type Err = ParseSdpError;

    fn from_str(s: &str) -> Result<SessionDescription, ParseSdpError> {
        let mut version_seen = false;
        let mut origin: Option<(String, u64, u64)> = None;
        let mut connection: Option<Ipv4Addr> = None;
        let mut media = Vec::new();
        for line in s.lines().map(|l| l.trim_end_matches('\r')) {
            if line.is_empty() {
                continue;
            }
            let Some((kind, value)) = line.split_once('=') else {
                continue;
            };
            match kind {
                "v" => version_seen = value.trim() == "0",
                "o" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() < 3 {
                        return Err(ParseSdpError::BadOrigin);
                    }
                    let id = parts[1].parse().map_err(|_| ParseSdpError::BadOrigin)?;
                    let ver = parts[2].parse().map_err(|_| ParseSdpError::BadOrigin)?;
                    origin = Some((parts[0].to_string(), id, ver));
                }
                "c" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() != 3 || parts[0] != "IN" || parts[1] != "IP4" {
                        return Err(ParseSdpError::BadConnection);
                    }
                    connection =
                        Some(parts[2].parse().map_err(|_| ParseSdpError::BadConnection)?);
                }
                "m" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() < 3 {
                        return Err(ParseSdpError::BadMedia(line.to_string()));
                    }
                    let port = parts[1]
                        .parse()
                        .map_err(|_| ParseSdpError::BadMedia(line.to_string()))?;
                    let formats = parts[3..]
                        .iter()
                        .filter_map(|p| p.parse().ok())
                        .collect();
                    media.push(MediaDesc {
                        media: parts[0].to_string(),
                        port,
                        proto: parts[2].to_string(),
                        formats,
                    });
                }
                _ => {} // s=, t=, a=, b=, ... ignored
            }
        }
        if !version_seen {
            return Err(ParseSdpError::MissingVersion);
        }
        let (origin_user, session_id, session_version) =
            origin.ok_or(ParseSdpError::BadOrigin)?;
        let connection = connection.ok_or(ParseSdpError::BadConnection)?;
        Ok(SessionDescription {
            origin_user,
            session_id,
            session_version,
            connection,
            media,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 5)
    }

    #[test]
    fn roundtrip() {
        let sdp = SessionDescription::audio_offer("alice", addr(), 8000);
        let text = sdp.to_string();
        assert!(text.starts_with("v=0\r\n"));
        assert!(text.contains("c=IN IP4 10.0.0.5\r\n"));
        assert!(text.contains("m=audio 8000 RTP/AVP 0\r\n"));
        assert_eq!(text.parse::<SessionDescription>().unwrap(), sdp);
    }

    #[test]
    fn rtp_target() {
        let sdp = SessionDescription::audio_offer("a", addr(), 9000);
        assert_eq!(sdp.rtp_target(), Some((addr(), 9000)));
        let mut no_audio = sdp;
        no_audio.media.clear();
        assert_eq!(no_audio.rtp_target(), None);
    }

    #[test]
    fn retarget_bumps_version() {
        let sdp = SessionDescription::audio_offer("a", addr(), 9000);
        let new_addr = Ipv4Addr::new(10, 0, 0, 66);
        let moved = sdp.retargeted(new_addr, 7000);
        assert_eq!(moved.rtp_target(), Some((new_addr, 7000)));
        assert_eq!(moved.session_version, sdp.session_version + 1);
        assert_eq!(moved.session_id, sdp.session_id);
    }

    #[test]
    fn parse_ignores_unknown_lines() {
        let text = "v=0\r\no=bob 3 4 IN IP4 10.0.0.7\r\ns=call\r\nc=IN IP4 10.0.0.7\r\nt=0 0\r\na=sendrecv\r\nm=audio 12000 RTP/AVP 0 8\r\n";
        let sdp: SessionDescription = text.parse().unwrap();
        assert_eq!(sdp.origin_user, "bob");
        assert_eq!(sdp.session_version, 4);
        assert_eq!(sdp.media[0].formats, vec![0, 8]);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "o=a 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\n".parse::<SessionDescription>(),
            Err(ParseSdpError::MissingVersion)
        );
        assert_eq!(
            "v=0\r\nc=IN IP4 10.0.0.1\r\n".parse::<SessionDescription>(),
            Err(ParseSdpError::BadOrigin)
        );
        assert_eq!(
            "v=0\r\no=a 1 1 IN IP4 10.0.0.1\r\n".parse::<SessionDescription>(),
            Err(ParseSdpError::BadConnection)
        );
        assert_eq!(
            "v=0\r\no=a 1 1 IN IP4 x\r\nc=IN IP6 ::1\r\n".parse::<SessionDescription>(),
            Err(ParseSdpError::BadConnection)
        );
        assert!(matches!(
            "v=0\r\no=a 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\nm=audio xyz RTP/AVP 0\r\n"
                .parse::<SessionDescription>(),
            Err(ParseSdpError::BadMedia(_))
        ));
    }
}
