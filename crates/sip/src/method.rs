//! SIP request methods.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A SIP request method (RFC 3261 §7.1, plus MESSAGE from RFC 3428 for
/// instant messaging and INFO from RFC 2976).
///
/// # Examples
///
/// ```
/// use scidive_sip::method::Method;
///
/// let m: Method = "INVITE".parse()?;
/// assert_eq!(m, Method::Invite);
/// assert_eq!(m.as_str(), "INVITE");
/// # Ok::<(), scidive_sip::method::ParseMethodError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Initiates (or, inside a dialog, modifies — "re-INVITE") a session.
    Invite,
    /// Confirms receipt of a final response to an INVITE.
    Ack,
    /// Terminates a session.
    Bye,
    /// Cancels a pending request.
    Cancel,
    /// Registers a contact binding with a registrar.
    Register,
    /// Queries capabilities.
    Options,
    /// Carries an instant message (RFC 3428).
    Message,
    /// Carries mid-session information (RFC 2976).
    Info,
}

impl Method {
    /// All methods, in a stable order.
    pub const ALL: [Method; 8] = [
        Method::Invite,
        Method::Ack,
        Method::Bye,
        Method::Cancel,
        Method::Register,
        Method::Options,
        Method::Message,
        Method::Info,
    ];

    /// The canonical token, e.g. `"INVITE"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Register => "REGISTER",
            Method::Options => "OPTIONS",
            Method::Message => "MESSAGE",
            Method::Info => "INFO",
        }
    }

    /// Whether a transaction for this method establishes/modifies a
    /// session (the INVITE transaction has distinct state machines).
    pub fn is_invite(self) -> bool {
        self == Method::Invite
    }

    /// Branch-lean token match: dispatch on `(length, first byte)` —
    /// unique for every method except INVITE/INFO, which lengths
    /// disambiguate — then one exact compare (methods are
    /// case-sensitive tokens). Behavior is identical to the linear
    /// [`FromStr`] scan, which is retained as the reference.
    ///
    /// # Examples
    ///
    /// ```
    /// use scidive_sip::method::Method;
    ///
    /// assert_eq!(Method::parse_token("CANCEL"), Some(Method::Cancel));
    /// assert_eq!(Method::parse_token("cancel"), None);
    /// ```
    #[inline]
    pub fn parse_token(s: &str) -> Option<Method> {
        let candidate = match (s.len(), s.as_bytes().first()?) {
            (6, b'I') => Method::Invite,
            (3, b'A') => Method::Ack,
            (3, b'B') => Method::Bye,
            (6, b'C') => Method::Cancel,
            (8, b'R') => Method::Register,
            (7, b'O') => Method::Options,
            (7, b'M') => Method::Message,
            (4, b'I') => Method::Info,
            _ => return None,
        };
        (candidate.as_str() == s).then_some(candidate)
    }

    /// The methods whose token starts with `b`, for sniffing a payload
    /// without trying all eight (`I` yields both INVITE and INFO).
    #[inline]
    pub fn by_first_byte(b: u8) -> &'static [Method] {
        match b {
            b'I' => &[Method::Invite, Method::Info],
            b'A' => &[Method::Ack],
            b'B' => &[Method::Bye],
            b'C' => &[Method::Cancel],
            b'R' => &[Method::Register],
            b'O' => &[Method::Options],
            b'M' => &[Method::Message],
            _ => &[],
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`Method`] token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    token: String,
}

impl ParseMethodError {
    /// The token that failed to parse.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sip method `{}`", self.token)
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for Method {
    type Err = ParseMethodError;

    fn from_str(s: &str) -> Result<Method, ParseMethodError> {
        // Methods are case-sensitive tokens in SIP; accept canonical form
        // only, which is what conforming stacks emit.
        Method::ALL
            .into_iter()
            .find(|m| m.as_str() == s)
            .ok_or_else(|| ParseMethodError {
                token: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        for m in Method::ALL {
            assert_eq!(m.as_str().parse::<Method>().unwrap(), m);
        }
    }

    #[test]
    fn unknown_method_errors() {
        let err = "SUBSCRIBE".parse::<Method>().unwrap_err();
        assert_eq!(err.token(), "SUBSCRIBE");
        assert!(err.to_string().contains("SUBSCRIBE"));
    }

    #[test]
    fn lowercase_is_rejected() {
        assert!("invite".parse::<Method>().is_err());
    }

    #[test]
    fn invite_flag() {
        assert!(Method::Invite.is_invite());
        assert!(!Method::Bye.is_invite());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(Method::Register.to_string(), "REGISTER");
    }

    #[test]
    fn parse_token_matches_from_str() {
        let tokens = [
            "INVITE", "ACK", "BYE", "CANCEL", "REGISTER", "OPTIONS", "MESSAGE", "INFO", "invite",
            "Info", "INVIT", "INVITEE", "I", "", "SUBSCRIBE", "ACKX", "AC", "\u{e9}CK",
        ];
        for tok in tokens {
            assert_eq!(
                Method::parse_token(tok),
                tok.parse::<Method>().ok(),
                "token {tok:?}"
            );
        }
    }

    #[test]
    fn by_first_byte_covers_all() {
        for m in Method::ALL {
            let first = m.as_str().as_bytes()[0];
            assert!(Method::by_first_byte(first).contains(&m));
        }
        assert!(Method::by_first_byte(b'X').is_empty());
    }
}
