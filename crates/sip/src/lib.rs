//! # scidive-sip — a SIP stack for the SCIDIVE reproduction
//!
//! Implements the RFC 3261 subset the paper's testbed exercises: message
//! grammar and wire parsing, the INVITE/REGISTER/BYE/CANCEL/MESSAGE
//! method set (MESSAGE per RFC 3428 for the fake-IM attack), digest
//! authentication (RFC 2617, with a self-contained MD5), transaction and
//! dialog state machines, and a minimal SDP (RFC 4566) for negotiating
//! the RTP flows that the IDS's cross-protocol correlation hinges on.
//!
//! The crate is transport-agnostic: it produces and consumes bytes, and
//! expresses all protocol timing in plain milliseconds, so it works
//! identically under `scidive-netsim`'s virtual clock and in unit tests.
//!
//! ## Example: build, serialize, re-parse an INVITE
//!
//! ```
//! use scidive_sip::prelude::*;
//!
//! let mut builder = RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse()?);
//! builder
//!     .from(NameAddr::new("sip:alice@10.0.0.1".parse()?).with_tag("a1"))
//!     .to(NameAddr::new("sip:bob@10.0.0.2".parse()?))
//!     .call_id("c1@10.0.0.1")
//!     .cseq(CSeq::new(1, Method::Invite))
//!     .via(Via::udp("10.0.0.1:5060", "z9hG4bK1"));
//! let invite = builder.build();
//!
//! let parsed = SipMessage::parse(&invite.to_bytes())?;
//! assert_eq!(parsed.method(), Some(Method::Invite));
//! assert!(parsed.format_violations().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auth;
pub mod bstr;
pub mod dialog;
pub mod header;
pub mod md5;
pub mod method;
pub mod msg;
pub mod parse;
pub mod scan;
pub mod sdp;
pub mod status;
pub mod txn;
pub mod uri;

/// Convenient glob import of the common SIP types.
pub mod prelude {
    pub use crate::auth::{DigestChallenge, DigestCredentials};
    pub use crate::bstr::ByteStr;
    pub use crate::dialog::{Dialog, DialogRole, DialogState};
    pub use crate::header::{CSeq, Header, HeaderName, Headers, NameAddr, Via};
    pub use crate::method::Method;
    pub use crate::msg::{response_to, RequestBuilder, SipMessage, StartLine};
    pub use crate::parse::{looks_like_sip, SipParseError};
    pub use crate::sdp::{MediaDesc, SessionDescription};
    pub use crate::status::StatusCode;
    pub use crate::txn::{ClientTransaction, ClientTxnAction, ClientTxnState, ServerTransaction};
    pub use crate::uri::SipUri;
}
