//! SIP headers: names, the ordered header collection, and typed values.

use crate::bstr::ByteStr;
use crate::method::Method;
use crate::uri::SipUri;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A SIP header field name.
///
/// Known names are interned as variants; anything else is carried in
/// `Extension`. Comparison is case-insensitive per RFC 3261 §7.3.1, and
/// the RFC's compact forms (`v`, `f`, `t`, `i`, `m`, `c`, `l`, `s`, `k`)
/// are folded into their canonical names at parse time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderName {
    /// `Via` (compact `v`).
    Via,
    /// `From` (compact `f`).
    From,
    /// `To` (compact `t`).
    To,
    /// `Call-ID` (compact `i`).
    CallId,
    /// `CSeq`.
    CSeq,
    /// `Contact` (compact `m`).
    Contact,
    /// `Max-Forwards`.
    MaxForwards,
    /// `Expires`.
    Expires,
    /// `Content-Type` (compact `c`).
    ContentType,
    /// `Content-Length` (compact `l`).
    ContentLength,
    /// `Authorization`.
    Authorization,
    /// `WWW-Authenticate`.
    WwwAuthenticate,
    /// `User-Agent`.
    UserAgent,
    /// `Subject` (compact `s`).
    Subject,
    /// `Route`.
    Route,
    /// `Record-Route`.
    RecordRoute,
    /// Any other header.
    Extension(ByteStr),
}

impl HeaderName {
    /// Creates an extension (non-standard) header name.
    pub fn extension(name: impl Into<ByteStr>) -> HeaderName {
        HeaderName::Extension(name.into())
    }

    /// The canonical field name.
    pub fn as_str(&self) -> &str {
        match self {
            HeaderName::Via => "Via",
            HeaderName::From => "From",
            HeaderName::To => "To",
            HeaderName::CallId => "Call-ID",
            HeaderName::CSeq => "CSeq",
            HeaderName::Contact => "Contact",
            HeaderName::MaxForwards => "Max-Forwards",
            HeaderName::Expires => "Expires",
            HeaderName::ContentType => "Content-Type",
            HeaderName::ContentLength => "Content-Length",
            HeaderName::Authorization => "Authorization",
            HeaderName::WwwAuthenticate => "WWW-Authenticate",
            HeaderName::UserAgent => "User-Agent",
            HeaderName::Subject => "Subject",
            HeaderName::Route => "Route",
            HeaderName::RecordRoute => "Record-Route",
            HeaderName::Extension(s) => s.as_str(),
        }
    }

    /// Parses a field name, folding compact forms and casing. Known
    /// names (and compact forms) match case-insensitively without
    /// allocating; only genuinely unknown extension headers build an
    /// owned name.
    ///
    /// This is the branch-lean dispatch: `(length, lowercased first
    /// byte)` selects at most two candidates (only `Call-ID`/`Contact`
    /// collide), each confirmed by one case-insensitive compare. Exactly
    /// equivalent to the linear table scan retained as
    /// [`HeaderName::parse_reference`] — full-name confirmation makes
    /// table order irrelevant.
    pub fn parse(s: &str) -> HeaderName {
        let Some(first) = s.as_bytes().first().map(u8::to_ascii_lowercase) else {
            return HeaderName::Extension(ByteStr::from(s));
        };
        // Single-letter compact forms need no confirm: length 1 plus a
        // matching lowercased byte pins the string down completely.
        // Confirms a dispatch candidate: an exact compare against the
        // canonical capitalization first (a straight `memcmp` the
        // compiler vectorizes, and what well-formed traffic sends),
        // falling back to the per-byte case-folding compare.
        #[inline]
        fn confirm(s: &str, canonical: &str, lower: &str) -> bool {
            s == canonical || s.eq_ignore_ascii_case(lower)
        }
        let known = match (s.len(), first) {
            (1, b'v') => Some(HeaderName::Via),
            (3, b'v') if confirm(s, "Via", "via") => Some(HeaderName::Via),
            (1, b'f') => Some(HeaderName::From),
            (4, b'f') if confirm(s, "From", "from") => Some(HeaderName::From),
            (1, b't') => Some(HeaderName::To),
            (2, b't') if confirm(s, "To", "to") => Some(HeaderName::To),
            (1, b'i') => Some(HeaderName::CallId),
            (7, b'c') if confirm(s, "Call-ID", "call-id") => Some(HeaderName::CallId),
            (7, b'c') if confirm(s, "Contact", "contact") => Some(HeaderName::Contact),
            (1, b'm') => Some(HeaderName::Contact),
            (4, b'c') if confirm(s, "CSeq", "cseq") => Some(HeaderName::CSeq),
            (12, b'm') if confirm(s, "Max-Forwards", "max-forwards") => {
                Some(HeaderName::MaxForwards)
            }
            (7, b'e') if confirm(s, "Expires", "expires") => Some(HeaderName::Expires),
            (1, b'c') => Some(HeaderName::ContentType),
            (12, b'c') if confirm(s, "Content-Type", "content-type") => {
                Some(HeaderName::ContentType)
            }
            (1, b'l') => Some(HeaderName::ContentLength),
            (14, b'c') if confirm(s, "Content-Length", "content-length") => {
                Some(HeaderName::ContentLength)
            }
            (13, b'a') if confirm(s, "Authorization", "authorization") => {
                Some(HeaderName::Authorization)
            }
            (16, b'w') if confirm(s, "WWW-Authenticate", "www-authenticate") => {
                Some(HeaderName::WwwAuthenticate)
            }
            (10, b'u') if confirm(s, "User-Agent", "user-agent") => Some(HeaderName::UserAgent),
            (1, b's') => Some(HeaderName::Subject),
            (7, b's') if confirm(s, "Subject", "subject") => Some(HeaderName::Subject),
            (5, b'r') if confirm(s, "Route", "route") => Some(HeaderName::Route),
            (12, b'r') if confirm(s, "Record-Route", "record-route") => {
                Some(HeaderName::RecordRoute)
            }
            _ => None,
        };
        known.unwrap_or_else(|| HeaderName::Extension(ByteStr::from(s)))
    }

    /// The retained linear-scan name matcher, for differential testing
    /// against [`HeaderName::parse`].
    pub fn parse_reference(s: &str) -> HeaderName {
        const KNOWN: &[(&str, HeaderName)] = &[
            ("via", HeaderName::Via),
            ("v", HeaderName::Via),
            ("from", HeaderName::From),
            ("f", HeaderName::From),
            ("to", HeaderName::To),
            ("t", HeaderName::To),
            ("call-id", HeaderName::CallId),
            ("i", HeaderName::CallId),
            ("cseq", HeaderName::CSeq),
            ("contact", HeaderName::Contact),
            ("m", HeaderName::Contact),
            ("max-forwards", HeaderName::MaxForwards),
            ("expires", HeaderName::Expires),
            ("content-type", HeaderName::ContentType),
            ("c", HeaderName::ContentType),
            ("content-length", HeaderName::ContentLength),
            ("l", HeaderName::ContentLength),
            ("authorization", HeaderName::Authorization),
            ("www-authenticate", HeaderName::WwwAuthenticate),
            ("user-agent", HeaderName::UserAgent),
            ("subject", HeaderName::Subject),
            ("s", HeaderName::Subject),
            ("route", HeaderName::Route),
            ("record-route", HeaderName::RecordRoute),
        ];
        for (name, variant) in KNOWN {
            if s.eq_ignore_ascii_case(name) {
                return variant.clone();
            }
        }
        HeaderName::Extension(ByteStr::from(s))
    }
}

impl fmt::Display for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One header field: a name and its raw value text.
///
/// The value is a [`ByteStr`]: parsing a message from wire bytes slices
/// the shared packet buffer (or inlines short values) instead of
/// allocating a `String` per header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Field name.
    pub name: HeaderName,
    /// Raw field value (typed values are parsed on demand).
    pub value: ByteStr,
}

impl Header {
    /// Creates a header.
    pub fn new(name: HeaderName, value: impl Into<ByteStr>) -> Header {
        Header {
            name,
            value: value.into(),
        }
    }
}

/// An ordered collection of headers, preserving duplicates and order
/// (both matter in SIP, e.g. for `Via` stacks).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headers {
    fields: Vec<Header>,
}

/// Thread-local freelist of header vectors. A parsed message's `Vec`
/// backing is returned here when the [`Headers`] drop, so the
/// steady-state parse path reuses capacity instead of allocating per
/// message. Bounded: beyond [`POOL_CAP`] retired vectors (or for
/// trivially small ones) the memory goes back to the allocator.
const POOL_CAP: usize = 64;

thread_local! {
    static HEADER_POOL: std::cell::RefCell<Vec<Vec<Header>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Headers {
    /// Creates an empty collection.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Creates an empty collection backed by a recycled vector from the
    /// thread-local pool when one is available. Behaviorally identical
    /// to [`Headers::new`]; only the allocator traffic differs.
    pub fn for_parse() -> Headers {
        let fields = HEADER_POOL
            .with_borrow_mut(|pool| pool.pop())
            .unwrap_or_default();
        Headers { fields }
    }

    /// Appends a header.
    pub fn push(&mut self, name: HeaderName, value: impl Into<ByteStr>) {
        self.fields.push(Header::new(name, value));
    }

    /// Prepends a header (proxies push `Via` on top).
    pub fn push_front(&mut self, name: HeaderName, value: impl Into<ByteStr>) {
        self.fields.insert(0, Header::new(name, value));
    }

    /// First value for `name`, if present.
    pub fn get(&self, name: &HeaderName) -> Option<&str> {
        self.fields
            .iter()
            .find(|h| &h.name == name)
            .map(|h| h.value.as_str())
    }

    /// All values for `name`, in order, lazily — no `Vec` is built.
    pub fn get_all<'a>(
        &'a self,
        name: &'a HeaderName,
    ) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |h| &h.name == name)
            .map(|h| h.value.as_str())
    }

    /// Replaces all values of `name` with a single value.
    pub fn set(&mut self, name: HeaderName, value: impl Into<ByteStr>) {
        self.fields.retain(|h| h.name != name);
        self.push(name, value);
    }

    /// Removes all values of `name`, returning whether any were removed.
    pub fn remove(&mut self, name: &HeaderName) -> bool {
        let before = self.fields.len();
        self.fields.retain(|h| &h.name != name);
        self.fields.len() != before
    }

    /// Removes the topmost (first) value of `name`, returning it.
    pub fn remove_front(&mut self, name: &HeaderName) -> Option<ByteStr> {
        let idx = self.fields.iter().position(|h| &h.name == name)?;
        Some(self.fields.remove(idx).value)
    }

    /// All fields in order.
    pub fn iter(&self) -> impl Iterator<Item = &Header> {
        self.fields.iter()
    }

    /// Number of header fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl Drop for Headers {
    fn drop(&mut self) {
        // Recycle the backing vector. Clearing first drops the header
        // values now (they'd be dropped here regardless); only the raw
        // capacity is retained.
        if self.fields.capacity() >= 4 {
            // `try_with`: during thread teardown the pool may already be
            // gone, in which case the vector just frees normally.
            let _ = HEADER_POOL.try_with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < POOL_CAP {
                    self.fields.clear();
                    pool.push(std::mem::take(&mut self.fields));
                }
            });
        }
    }
}

impl FromIterator<Header> for Headers {
    fn from_iter<T: IntoIterator<Item = Header>>(iter: T) -> Headers {
        Headers {
            fields: iter.into_iter().collect(),
        }
    }
}

impl Extend<Header> for Headers {
    fn extend<T: IntoIterator<Item = Header>>(&mut self, iter: T) {
        self.fields.extend(iter);
    }
}

/// A `name-addr` value as used in `From`, `To`, and `Contact`:
/// `"Display" <sip:uri>;param=value`.
///
/// # Examples
///
/// ```
/// use scidive_sip::header::NameAddr;
///
/// let na: NameAddr = "\"Alice\" <sip:alice@10.0.0.1>;tag=abc".parse()?;
/// assert_eq!(na.display.as_deref(), Some("Alice"));
/// assert_eq!(na.tag(), Some("abc"));
/// # Ok::<(), scidive_sip::header::ParseHeaderError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameAddr {
    /// Optional display name (without quotes).
    pub display: Option<ByteStr>,
    /// The SIP URI.
    pub uri: SipUri,
    /// Header parameters after the URI, e.g. `tag`.
    pub params: Vec<(ByteStr, ByteStr)>,
}

impl NameAddr {
    /// Creates a bare `<uri>` value.
    pub fn new(uri: SipUri) -> NameAddr {
        NameAddr {
            display: None,
            uri,
            params: Vec::new(),
        }
    }

    /// Sets the display name (builder-style).
    pub fn with_display(mut self, display: impl Into<ByteStr>) -> NameAddr {
        self.display = Some(display.into());
        self
    }

    /// Adds a parameter (builder-style).
    pub fn with_param(mut self, name: impl Into<ByteStr>, value: impl Into<ByteStr>) -> NameAddr {
        self.params.push((name.into(), value.into()));
        self
    }

    /// Adds/replaces the `tag` parameter (builder-style).
    pub fn with_tag(mut self, tag: impl Into<ByteStr>) -> NameAddr {
        self.params.retain(|(n, _)| n != "tag");
        self.params.push((ByteStr::from_static("tag"), tag.into()));
        self
    }

    /// The `tag` parameter, if present.
    pub fn tag(&self) -> Option<&str> {
        self.param("tag")
    }

    /// A parameter value by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for NameAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = &self.display {
            write!(f, "\"{d}\" ")?;
        }
        write!(f, "<{}>", self.uri)?;
        for (n, v) in &self.params {
            if v.is_empty() {
                write!(f, ";{n}")?;
            } else {
                write!(f, ";{n}={v}")?;
            }
        }
        Ok(())
    }
}

/// Error parsing a typed header value.
///
/// The detail is a `Cow` so the common fixed messages ("header missing",
/// "missing sent-by", ...) are carried without allocating; only details
/// that genuinely interpolate data pay for a `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHeaderError {
    header: &'static str,
    detail: std::borrow::Cow<'static, str>,
}

impl ParseHeaderError {
    /// Creates an error for the named header kind.
    pub fn new(
        header: &'static str,
        detail: impl Into<std::borrow::Cow<'static, str>>,
    ) -> ParseHeaderError {
        ParseHeaderError {
            header,
            detail: detail.into(),
        }
    }

    /// Which typed value failed to parse.
    pub fn header(&self) -> &str {
        self.header
    }
}

impl fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} value: {}", self.header, self.detail)
    }
}

impl std::error::Error for ParseHeaderError {}

impl FromStr for NameAddr {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<NameAddr, ParseHeaderError> {
        let s = s.trim();
        let (display, rest) = if let Some(stripped) = s.strip_prefix('"') {
            let end = stripped
                .find('"')
                .ok_or_else(|| ParseHeaderError::new("name-addr", "unterminated display name"))?;
            (
                Some(ByteStr::from(&stripped[..end])),
                stripped[end + 1..].trim_start(),
            )
        } else {
            (None, s)
        };
        if let Some(start) = rest.find('<') {
            let end = rest[start..]
                .find('>')
                .map(|i| start + i)
                .ok_or_else(|| ParseHeaderError::new("name-addr", "missing `>`"))?;
            // An unquoted token display name may precede `<`.
            let display = display.or_else(|| {
                let token = rest[..start].trim();
                (!token.is_empty()).then(|| ByteStr::from(token))
            });
            let uri: SipUri = rest[start + 1..end]
                .parse()
                .map_err(|e| ParseHeaderError::new("name-addr", format!("{e}")))?;
            let params = parse_params(rest[end + 1..].trim_start());
            Ok(NameAddr {
                display,
                uri,
                params,
            })
        } else {
            // addr-spec form: everything up to the first `;` is the URI.
            let (uri_part, params_part) = match rest.split_once(';') {
                Some((u, p)) => (u, p),
                None => (rest, ""),
            };
            let uri: SipUri = uri_part
                .trim()
                .parse()
                .map_err(|e| ParseHeaderError::new("name-addr", format!("{e}")))?;
            let params = parse_params_str(params_part);
            Ok(NameAddr {
                display,
                uri,
                params,
            })
        }
    }
}

fn parse_params(s: &str) -> Vec<(ByteStr, ByteStr)> {
    parse_params_str(s.strip_prefix(';').unwrap_or(s))
}

fn parse_params_str(s: &str) -> Vec<(ByteStr, ByteStr)> {
    if s.trim().is_empty() {
        return Vec::new(); // `Vec::new` never allocates
    }
    s.split(';')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((n, v)) => (ByteStr::from(n.trim()), ByteStr::from(v.trim())),
            None => (ByteStr::from(p), ByteStr::EMPTY),
        })
        .collect()
}

/// A `CSeq` value: sequence number and method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CSeq {
    /// The sequence number.
    pub seq: u32,
    /// The request method this sequence number applies to.
    pub method: Method,
}

impl CSeq {
    /// Creates a CSeq value.
    pub fn new(seq: u32, method: Method) -> CSeq {
        CSeq { seq, method }
    }

    /// The next CSeq for the same method.
    pub fn next(self) -> CSeq {
        CSeq {
            seq: self.seq + 1,
            ..self
        }
    }
}

impl fmt::Display for CSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.seq, self.method)
    }
}

impl FromStr for CSeq {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<CSeq, ParseHeaderError> {
        let mut parts = s.split_whitespace();
        let seq = parts
            .next()
            .ok_or_else(|| ParseHeaderError::new("CSeq", "empty"))?
            .parse::<u32>()
            .map_err(|_| ParseHeaderError::new("CSeq", "sequence number not a u32"))?;
        let method = parts
            .next()
            .ok_or_else(|| ParseHeaderError::new("CSeq", "missing method"))?
            .parse::<Method>()
            .map_err(|e| ParseHeaderError::new("CSeq", e.to_string()))?;
        if parts.next().is_some() {
            return Err(ParseHeaderError::new("CSeq", "trailing tokens"));
        }
        Ok(CSeq { seq, method })
    }
}

/// A `Via` value: `SIP/2.0/UDP host:port;branch=...`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Via {
    /// Transport token, e.g. `UDP`.
    pub transport: ByteStr,
    /// The `sent-by` host (and optional `:port`).
    pub sent_by: ByteStr,
    /// Via parameters (`branch`, `received`, ...).
    pub params: Vec<(ByteStr, ByteStr)>,
}

impl Via {
    /// Creates a UDP Via with the RFC 3261 magic-cookie branch.
    pub fn udp(sent_by: impl Into<ByteStr>, branch: impl Into<ByteStr>) -> Via {
        Via {
            transport: ByteStr::from_static("UDP"),
            sent_by: sent_by.into(),
            params: vec![(ByteStr::from_static("branch"), branch.into())],
        }
    }

    /// The `branch` parameter, if present.
    pub fn branch(&self) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == "branch")
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIP/2.0/{} {}", self.transport, self.sent_by)?;
        for (n, v) in &self.params {
            if v.is_empty() {
                write!(f, ";{n}")?;
            } else {
                write!(f, ";{n}={v}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for Via {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Via, ParseHeaderError> {
        let rest = s
            .trim()
            .strip_prefix("SIP/2.0/")
            .ok_or_else(|| ParseHeaderError::new("Via", "missing SIP/2.0/ prefix"))?;
        let (transport, rest) = rest
            .split_once(' ')
            .ok_or_else(|| ParseHeaderError::new("Via", "missing sent-by"))?;
        let (sent_by, params_part) = match rest.split_once(';') {
            Some((sb, p)) => (sb, p),
            None => (rest, ""),
        };
        if sent_by.trim().is_empty() {
            return Err(ParseHeaderError::new("Via", "empty sent-by"));
        }
        Ok(Via {
            transport: ByteStr::from(transport),
            sent_by: ByteStr::from(sent_by.trim()),
            params: parse_params_str(params_part),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dispatch matcher must agree with the retained linear scan on
    /// every canonical name, compact form, case mutation, and a pile of
    /// near-misses.
    #[test]
    fn header_name_dispatch_matches_reference() {
        let mut corpus: Vec<String> = Vec::new();
        for name in [
            "Via", "From", "To", "Call-ID", "CSeq", "Contact", "Max-Forwards", "Expires",
            "Content-Type", "Content-Length", "Authorization", "WWW-Authenticate", "User-Agent",
            "Subject", "Route", "Record-Route", "v", "f", "t", "i", "m", "c", "l", "s",
        ] {
            corpus.push(name.to_string());
            corpus.push(name.to_lowercase());
            corpus.push(name.to_uppercase());
            // Swap-case mutation.
            corpus.push(
                name.chars()
                    .map(|ch| {
                        if ch.is_ascii_uppercase() {
                            ch.to_ascii_lowercase()
                        } else {
                            ch.to_ascii_uppercase()
                        }
                    })
                    .collect(),
            );
            // Near-misses: truncated, extended, first-byte collision.
            corpus.push(name[..name.len() - 1].to_string());
            corpus.push(format!("{name}x"));
            corpus.push(format!("C{}", &name[1..]));
        }
        corpus.extend(
            ["", "x", "e", "r", "u", "w", "a", "Callxid", "Contacx", "\u{e9}ia", "I\u{e9}"]
                .map(String::from),
        );
        for s in &corpus {
            assert_eq!(
                HeaderName::parse(s),
                HeaderName::parse_reference(s),
                "diverged on {s:?}"
            );
        }
    }

    #[test]
    fn pooled_headers_behave_like_fresh() {
        // Retire a populated collection, then reuse the pool: the
        // recycled vector must present as empty and equal to new().
        for _ in 0..3 {
            let mut h = Headers::for_parse();
            h.push(HeaderName::CallId, "x");
            h.push(HeaderName::Via, "SIP/2.0/UDP h;branch=z9");
            drop(h);
            let reused = Headers::for_parse();
            assert!(reused.is_empty());
            assert_eq!(reused, Headers::new());
        }
    }

    #[test]
    fn header_name_folding() {
        assert_eq!(HeaderName::parse("VIA"), HeaderName::Via);
        assert_eq!(HeaderName::parse("v"), HeaderName::Via);
        assert_eq!(HeaderName::parse("call-id"), HeaderName::CallId);
        assert_eq!(HeaderName::parse("i"), HeaderName::CallId);
        assert_eq!(
            HeaderName::parse("X-Custom"),
            HeaderName::extension("X-Custom")
        );
    }

    #[test]
    fn headers_ordering_and_duplicates() {
        let mut h = Headers::new();
        h.push(HeaderName::Via, "SIP/2.0/UDP a;branch=1");
        h.push(HeaderName::Via, "SIP/2.0/UDP b;branch=2");
        h.push_front(HeaderName::Via, "SIP/2.0/UDP top;branch=0");
        assert_eq!(h.get_all(&HeaderName::Via).count(), 3);
        assert_eq!(h.get(&HeaderName::Via).unwrap(), "SIP/2.0/UDP top;branch=0");
        let popped = h.remove_front(&HeaderName::Via).unwrap();
        assert!(popped.contains("top"));
        assert_eq!(h.get_all(&HeaderName::Via).count(), 2);
    }

    #[test]
    fn headers_set_replaces() {
        let mut h = Headers::new();
        h.push(HeaderName::Expires, "3600");
        h.push(HeaderName::Expires, "7200");
        h.set(HeaderName::Expires, "60");
        assert_eq!(h.get_all(&HeaderName::Expires).collect::<Vec<_>>(), vec!["60"]);
        assert!(h.remove(&HeaderName::Expires));
        assert!(!h.remove(&HeaderName::Expires));
        assert!(h.is_empty());
    }

    #[test]
    fn name_addr_quoted_display() {
        let na: NameAddr = "\"Alice W\" <sip:alice@h.com:5060>;tag=99;x".parse().unwrap();
        assert_eq!(na.display.as_deref(), Some("Alice W"));
        assert_eq!(na.uri.to_string(), "sip:alice@h.com:5060");
        assert_eq!(na.tag(), Some("99"));
        assert_eq!(na.param("x"), Some(""));
    }

    #[test]
    fn name_addr_token_display() {
        let na: NameAddr = "Bob <sip:bob@h.com>".parse().unwrap();
        assert_eq!(na.display.as_deref(), Some("Bob"));
    }

    #[test]
    fn name_addr_addr_spec_form() {
        let na: NameAddr = "sip:bob@h.com;tag=7".parse().unwrap();
        assert_eq!(na.display, None);
        assert_eq!(na.uri.to_string(), "sip:bob@h.com");
        assert_eq!(na.tag(), Some("7"));
    }

    #[test]
    fn name_addr_display_roundtrip() {
        let na = NameAddr::new(SipUri::new("a", "h.com"))
            .with_display("A")
            .with_tag("t1");
        let s = na.to_string();
        assert_eq!(s, "\"A\" <sip:a@h.com>;tag=t1");
        assert_eq!(s.parse::<NameAddr>().unwrap(), na);
    }

    #[test]
    fn with_tag_replaces_existing() {
        let na = NameAddr::new(SipUri::new("a", "h")).with_tag("1").with_tag("2");
        assert_eq!(na.tag(), Some("2"));
        assert_eq!(na.params.len(), 1);
    }

    #[test]
    fn name_addr_errors() {
        assert!("\"unterminated <sip:a@h>".parse::<NameAddr>().is_err());
        assert!("<sip:a@h".parse::<NameAddr>().is_err());
        assert!("<http://x>".parse::<NameAddr>().is_err());
    }

    #[test]
    fn cseq_roundtrip() {
        let c: CSeq = "314159 INVITE".parse().unwrap();
        assert_eq!(c, CSeq::new(314159, Method::Invite));
        assert_eq!(c.to_string(), "314159 INVITE");
        assert_eq!(c.next().seq, 314160);
    }

    #[test]
    fn cseq_errors() {
        assert!("".parse::<CSeq>().is_err());
        assert!("x INVITE".parse::<CSeq>().is_err());
        assert!("1".parse::<CSeq>().is_err());
        assert!("1 NOPE".parse::<CSeq>().is_err());
        assert!("1 INVITE extra".parse::<CSeq>().is_err());
    }

    #[test]
    fn via_roundtrip() {
        let v: Via = "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK77asjd".parse().unwrap();
        assert_eq!(v.transport, "UDP");
        assert_eq!(v.sent_by, "10.0.0.1:5060");
        assert_eq!(v.branch(), Some("z9hG4bK77asjd"));
        assert_eq!(v.to_string(), "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK77asjd");
    }

    #[test]
    fn via_errors() {
        assert!("UDP 10.0.0.1".parse::<Via>().is_err());
        assert!("SIP/2.0/UDP".parse::<Via>().is_err());
    }

    #[test]
    fn via_udp_ctor() {
        let v = Via::udp("10.0.0.1:5060", "z9hG4bK1");
        assert_eq!(v.branch(), Some("z9hG4bK1"));
    }
}
