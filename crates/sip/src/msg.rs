//! SIP messages: start lines, the message type, builders and serialization.

use crate::bstr::ByteStr;
use crate::header::{CSeq, HeaderName, Headers, NameAddr, ParseHeaderError, Via};
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::SipUri;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The first line of a SIP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartLine {
    /// `METHOD uri SIP/2.0`
    Request {
        /// The request method.
        method: Method,
        /// The request URI.
        uri: SipUri,
    },
    /// `SIP/2.0 code reason`
    Response {
        /// The status code.
        code: StatusCode,
        /// The reason phrase as transmitted. A [`ByteStr`]: building a
        /// response from a [`crate::status::StatusCode`] uses the static
        /// default phrase and parsing inlines short phrases, so neither
        /// allocates.
        reason: ByteStr,
    },
}

/// A parsed SIP message.
///
/// Headers are stored as raw text and interpreted on demand through the
/// typed accessors ([`SipMessage::cseq`], [`SipMessage::from_`], ...), so
/// a message re-serializes byte-faithfully even when it carries values we
/// do not model.
///
/// # Examples
///
/// ```
/// use scidive_sip::prelude::*;
///
/// let msg = RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse()?)
///     .from(NameAddr::new("sip:alice@10.0.0.1".parse()?).with_tag("a1"))
///     .to(NameAddr::new("sip:bob@10.0.0.2".parse()?))
///     .call_id("call-1@10.0.0.1")
///     .cseq(CSeq::new(1, Method::Invite))
///     .via(Via::udp("10.0.0.1:5060", "z9hG4bK1"))
///     .build();
/// assert!(msg.is_request());
/// assert_eq!(msg.cseq()?.seq, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SipMessage {
    /// The start line.
    pub start: StartLine,
    /// All header fields in order.
    pub headers: Headers,
    /// The message body (e.g. SDP), possibly empty.
    pub body: Bytes,
}

impl SipMessage {
    /// Whether this is a request.
    pub fn is_request(&self) -> bool {
        matches!(self.start, StartLine::Request { .. })
    }

    /// Whether this is a response.
    pub fn is_response(&self) -> bool {
        !self.is_request()
    }

    /// The request method, if a request.
    pub fn method(&self) -> Option<Method> {
        match &self.start {
            StartLine::Request { method, .. } => Some(*method),
            StartLine::Response { .. } => None,
        }
    }

    /// The request URI, if a request.
    pub fn request_uri(&self) -> Option<&SipUri> {
        match &self.start {
            StartLine::Request { uri, .. } => Some(uri),
            StartLine::Response { .. } => None,
        }
    }

    /// The status code, if a response.
    pub fn status(&self) -> Option<StatusCode> {
        match &self.start {
            StartLine::Response { code, .. } => Some(*code),
            StartLine::Request { .. } => None,
        }
    }

    /// The `From` header, parsed.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing or malformed.
    pub fn from_(&self) -> Result<NameAddr, ParseHeaderError> {
        self.name_addr(&HeaderName::From, "From")
    }

    /// The `To` header, parsed.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing or malformed.
    pub fn to(&self) -> Result<NameAddr, ParseHeaderError> {
        self.name_addr(&HeaderName::To, "To")
    }

    /// The first `Contact` header, parsed.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing or malformed.
    pub fn contact(&self) -> Result<NameAddr, ParseHeaderError> {
        self.name_addr(&HeaderName::Contact, "Contact")
    }

    fn name_addr(
        &self,
        name: &HeaderName,
        label: &'static str,
    ) -> Result<NameAddr, ParseHeaderError> {
        self.headers
            .get(name)
            .ok_or_else(|| ParseHeaderError::new(label, "header missing"))?
            .parse()
    }

    /// The `Call-ID` header value.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing.
    pub fn call_id(&self) -> Result<&str, ParseHeaderError> {
        self.headers
            .get(&HeaderName::CallId)
            .ok_or_else(|| ParseHeaderError::new("Call-ID", "header missing"))
    }

    /// The `CSeq` header, parsed.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing or malformed.
    pub fn cseq(&self) -> Result<CSeq, ParseHeaderError> {
        self.headers
            .get(&HeaderName::CSeq)
            .ok_or_else(|| ParseHeaderError::new("CSeq", "header missing"))?
            .parse()
    }

    /// The topmost `Via` header, parsed.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing or malformed.
    pub fn via_top(&self) -> Result<Via, ParseHeaderError> {
        self.headers
            .get(&HeaderName::Via)
            .ok_or_else(|| ParseHeaderError::new("Via", "header missing"))?
            .parse()
    }

    /// The `Expires` value in seconds, if present and numeric.
    pub fn expires(&self) -> Option<u32> {
        self.headers
            .get(&HeaderName::Expires)
            .and_then(|v| v.trim().parse().ok())
    }

    /// The `Content-Type` value, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get(&HeaderName::ContentType)
    }

    /// Checks the mandatory-header discipline of RFC 3261 §8.1.1: every
    /// request must carry `To`, `From`, `CSeq`, `Call-ID`, `Max-Forwards`
    /// and `Via`; responses all but `Max-Forwards`. Returns each missing
    /// or malformed item — the billing-fraud rule (paper §3.2, condition
    /// 1: "the SIP message should follow the correct format") keys on a
    /// non-empty result.
    pub fn format_violations(&self) -> Vec<String> {
        // The clean path — the overwhelmingly common one — must not
        // allocate: the mandatory-header table is const and `Vec::new`
        // defers its first heap allocation until a violation is pushed.
        const NEED: &[(HeaderName, &str)] = &[
            (HeaderName::To, "To"),
            (HeaderName::From, "From"),
            (HeaderName::CSeq, "CSeq"),
            (HeaderName::CallId, "Call-ID"),
            (HeaderName::Via, "Via"),
            (HeaderName::MaxForwards, "Max-Forwards"),
        ];
        let need = if self.is_request() {
            NEED
        } else {
            &NEED[..NEED.len() - 1] // responses don't need Max-Forwards
        };
        let mut violations = Vec::new();
        for (name, label) in need {
            if self.headers.get(name).is_none() {
                violations.push(format!("missing mandatory header {label}"));
            }
        }
        if self.headers.get(&HeaderName::From).is_some() {
            if let Err(e) = self.from_() {
                violations.push(e.to_string());
            }
        }
        if self.headers.get(&HeaderName::To).is_some() {
            if let Err(e) = self.to() {
                violations.push(e.to_string());
            }
        }
        if self.headers.get(&HeaderName::CSeq).is_some() {
            if let Err(e) = self.cseq() {
                violations.push(e.to_string());
            }
        }
        if self.headers.get(&HeaderName::Via).is_some() {
            if let Err(e) = self.via_top() {
                violations.push(e.to_string());
            }
        }
        if let (StartLine::Request { method, .. }, Ok(cseq)) = (&self.start, self.cseq()) {
            if cseq.method != *method && *method != Method::Ack && *method != Method::Cancel {
                violations.push(format!(
                    "CSeq method {} disagrees with request method {method}",
                    cseq.method
                ));
            }
        }
        violations
    }

    /// A one-line summary for ladder diagrams, e.g. `INVITE` or `200 OK`.
    pub fn summary(&self) -> String {
        match &self.start {
            StartLine::Request { method, .. } => method.to_string(),
            StartLine::Response { code, reason } => format!("{} {}", code.code(), reason),
        }
    }

    /// Serializes to wire bytes, setting `Content-Length` from the body.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(self.to_string().into_bytes())
    }
}

impl fmt::Display for SipMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            StartLine::Request { method, uri } => writeln!(f, "{method} {uri} SIP/2.0\r")?,
            StartLine::Response { code, reason } => {
                writeln!(f, "SIP/2.0 {} {reason}\r", code.code())?
            }
        }
        for h in self.headers.iter() {
            if h.name == HeaderName::ContentLength {
                continue; // always recomputed below
            }
            writeln!(f, "{}: {}\r", h.name, h.value)?;
        }
        writeln!(f, "Content-Length: {}\r", self.body.len())?;
        writeln!(f, "\r")?;
        if !self.body.is_empty() {
            f.write_str(&String::from_utf8_lossy(&self.body))?;
        }
        Ok(())
    }
}

/// Builder for SIP requests.
///
/// The builder is non-consuming so call flows can conditionally add
/// headers before [`RequestBuilder::build`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    method: Method,
    uri: SipUri,
    headers: Headers,
    body: Bytes,
}

impl RequestBuilder {
    /// Starts a request for `method` on `uri`.
    pub fn new(method: Method, uri: SipUri) -> RequestBuilder {
        let mut headers = Headers::new();
        headers.push(HeaderName::MaxForwards, "70");
        RequestBuilder {
            method,
            uri,
            headers,
            body: Bytes::new(),
        }
    }

    /// Sets the `From` header.
    pub fn from(&mut self, from: NameAddr) -> &mut RequestBuilder {
        self.headers.set(HeaderName::From, from.to_string());
        self
    }

    /// Sets the `To` header.
    pub fn to(&mut self, to: NameAddr) -> &mut RequestBuilder {
        self.headers.set(HeaderName::To, to.to_string());
        self
    }

    /// Sets the `Call-ID` header.
    pub fn call_id(&mut self, call_id: impl Into<String>) -> &mut RequestBuilder {
        self.headers.set(HeaderName::CallId, call_id.into());
        self
    }

    /// Sets the `CSeq` header.
    pub fn cseq(&mut self, cseq: CSeq) -> &mut RequestBuilder {
        self.headers.set(HeaderName::CSeq, cseq.to_string());
        self
    }

    /// Pushes a `Via` header on top.
    pub fn via(&mut self, via: Via) -> &mut RequestBuilder {
        self.headers.push_front(HeaderName::Via, via.to_string());
        self
    }

    /// Sets the `Contact` header.
    pub fn contact(&mut self, contact: NameAddr) -> &mut RequestBuilder {
        self.headers.set(HeaderName::Contact, contact.to_string());
        self
    }

    /// Sets the `Expires` header.
    pub fn expires(&mut self, seconds: u32) -> &mut RequestBuilder {
        self.headers.set(HeaderName::Expires, seconds.to_string());
        self
    }

    /// Adds an arbitrary header.
    pub fn header(
        &mut self,
        name: HeaderName,
        value: impl Into<crate::bstr::ByteStr>,
    ) -> &mut RequestBuilder {
        self.headers.push(name, value);
        self
    }

    /// Removes a header set by default or earlier (used to craft the
    /// malformed messages of the billing-fraud attack).
    pub fn without(&mut self, name: &HeaderName) -> &mut RequestBuilder {
        self.headers.remove(name);
        self
    }

    /// Sets the body and its `Content-Type`.
    pub fn body(&mut self, content_type: &str, body: impl Into<Bytes>) -> &mut RequestBuilder {
        self.headers.set(HeaderName::ContentType, content_type);
        self.body = body.into();
        self
    }

    /// Builds the message.
    pub fn build(&self) -> SipMessage {
        SipMessage {
            start: StartLine::Request {
                method: self.method,
                uri: self.uri.clone(),
            },
            headers: self.headers.clone(),
            body: self.body.clone(),
        }
    }
}

/// Builds a response to `req`, copying the dialog-identifying headers
/// (`Via` stack, `From`, `To`, `Call-ID`, `CSeq`) per RFC 3261 §8.2.6.
///
/// `to_tag`, when given, is appended to the `To` header if it has no tag
/// yet (the UAS contributes its dialog tag this way).
pub fn response_to(req: &SipMessage, code: StatusCode, to_tag: Option<&str>) -> SipMessage {
    let mut headers = Headers::new();
    for via in req.headers.get_all(&HeaderName::Via) {
        headers.push(HeaderName::Via, via);
    }
    if let Some(from) = req.headers.get(&HeaderName::From) {
        headers.push(HeaderName::From, from);
    }
    if let Some(to) = req.headers.get(&HeaderName::To) {
        let to_value = match (to_tag, to.contains("tag=")) {
            (Some(tag), false) => format!("{to};tag={tag}"),
            _ => to.to_string(),
        };
        headers.push(HeaderName::To, to_value);
    }
    if let Some(call_id) = req.headers.get(&HeaderName::CallId) {
        headers.push(HeaderName::CallId, call_id);
    }
    if let Some(cseq) = req.headers.get(&HeaderName::CSeq) {
        headers.push(HeaderName::CSeq, cseq);
    }
    SipMessage {
        start: StartLine::Response {
            code,
            reason: ByteStr::from_static(code.default_reason()),
        },
        headers,
        body: Bytes::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invite() -> SipMessage {
        RequestBuilder::new(Method::Invite, "sip:bob@10.0.0.2".parse().unwrap())
            .from(
                NameAddr::new("sip:alice@10.0.0.1".parse().unwrap())
                    .with_display("Alice")
                    .with_tag("a1"),
            )
            .to(NameAddr::new("sip:bob@10.0.0.2".parse().unwrap()))
            .call_id("call-1@10.0.0.1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.1:5060", "z9hG4bK1"))
            .contact(NameAddr::new("sip:alice@10.0.0.1:5060".parse().unwrap()))
            .body("application/sdp", "v=0\r\n")
            .build()
    }

    #[test]
    fn request_accessors() {
        let msg = invite();
        assert!(msg.is_request());
        assert!(!msg.is_response());
        assert_eq!(msg.method(), Some(Method::Invite));
        assert_eq!(msg.request_uri().unwrap().to_string(), "sip:bob@10.0.0.2");
        assert_eq!(msg.status(), None);
        assert_eq!(msg.call_id().unwrap(), "call-1@10.0.0.1");
        assert_eq!(msg.cseq().unwrap(), CSeq::new(1, Method::Invite));
        assert_eq!(msg.from_().unwrap().tag(), Some("a1"));
        assert_eq!(msg.to().unwrap().tag(), None);
        assert_eq!(msg.via_top().unwrap().branch(), Some("z9hG4bK1"));
        assert_eq!(msg.content_type(), Some("application/sdp"));
        assert_eq!(msg.summary(), "INVITE");
    }

    #[test]
    fn wellformed_request_has_no_violations() {
        assert!(invite().format_violations().is_empty());
    }

    #[test]
    fn missing_headers_are_violations() {
        let msg = RequestBuilder::new(Method::Invite, "sip:bob@h".parse().unwrap())
            .without(&HeaderName::MaxForwards)
            .build();
        let v = msg.format_violations();
        assert!(v.iter().any(|s| s.contains("To")));
        assert!(v.iter().any(|s| s.contains("From")));
        assert!(v.iter().any(|s| s.contains("CSeq")));
        assert!(v.iter().any(|s| s.contains("Call-ID")));
        assert!(v.iter().any(|s| s.contains("Via")));
        assert!(v.iter().any(|s| s.contains("Max-Forwards")));
    }

    #[test]
    fn cseq_method_mismatch_is_violation() {
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@h".parse().unwrap());
        b.from(NameAddr::new("sip:a@h".parse().unwrap()))
            .to(NameAddr::new("sip:b@h".parse().unwrap()))
            .call_id("c1")
            .cseq(CSeq::new(1, Method::Bye))
            .via(Via::udp("h:5060", "z9hG4bK2"));
        let v = b.build().format_violations();
        assert!(v.iter().any(|s| s.contains("disagrees")), "{v:?}");
    }

    #[test]
    fn serialization_sets_content_length() {
        let text = invite().to_string();
        assert!(text.starts_with("INVITE sip:bob@10.0.0.2 SIP/2.0\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nv=0\r\n"));
    }

    #[test]
    fn response_copies_dialog_headers_and_adds_to_tag() {
        let req = invite();
        let resp = response_to(&req, StatusCode::OK, Some("b1"));
        assert!(resp.is_response());
        assert_eq!(resp.status(), Some(StatusCode::OK));
        assert_eq!(resp.call_id().unwrap(), req.call_id().unwrap());
        assert_eq!(resp.cseq().unwrap(), req.cseq().unwrap());
        assert_eq!(resp.to().unwrap().tag(), Some("b1"));
        assert_eq!(resp.from_().unwrap().tag(), Some("a1"));
        assert_eq!(resp.summary(), "200 OK");
    }

    #[test]
    fn response_keeps_existing_to_tag() {
        let req = invite();
        let r1 = response_to(&req, StatusCode::OK, Some("b1"));
        // Treat r1's To (with tag) as if it were in a new request.
        let mut req2 = req;
        req2.headers
            .set(HeaderName::To, r1.headers.get(&HeaderName::To).unwrap());
        let r2 = response_to(&req2, StatusCode::OK, Some("XXX"));
        assert_eq!(r2.to().unwrap().tag(), Some("b1"));
    }

    #[test]
    fn response_accessors() {
        let resp = response_to(&invite(), StatusCode::RINGING, None);
        assert_eq!(resp.method(), None);
        assert_eq!(resp.request_uri(), None);
        assert!(resp.status().unwrap().is_provisional());
        // Responses don't need Max-Forwards.
        assert!(resp.format_violations().is_empty());
    }
}
