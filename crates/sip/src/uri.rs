//! SIP URIs.

use crate::bstr::ByteStr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A SIP URI: `sip:user@host[:port][;param[=value]]*`.
///
/// The host may be a domain name or an IPv4 literal; URI parameters are
/// preserved verbatim. This is the subset a VoIP LAN testbed exercises —
/// no `sips:`, telephone-subscriber syntax, or headers-in-URI.
///
/// # Examples
///
/// ```
/// use scidive_sip::uri::SipUri;
///
/// let uri: SipUri = "sip:alice@10.0.0.1:5060".parse()?;
/// assert_eq!(uri.user.as_ref().map(|u| u.as_str()), Some("alice"));
/// assert_eq!(uri.port, Some(5060));
/// assert_eq!(uri.to_string(), "sip:alice@10.0.0.1:5060");
/// # Ok::<(), scidive_sip::uri::ParseUriError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SipUri {
    /// The user part, if present. A [`ByteStr`]: real user parts fit
    /// the inline representation, so parsing a request line does not
    /// allocate for them.
    pub user: Option<ByteStr>,
    /// The host part (domain or IPv4 literal).
    pub host: ByteStr,
    /// Explicit port, if present.
    pub port: Option<u16>,
    /// URI parameters as `(name, value)` pairs; valueless params have an
    /// empty value.
    pub params: Vec<(ByteStr, ByteStr)>,
}

impl SipUri {
    /// Builds `sip:user@host`.
    pub fn new(user: impl Into<ByteStr>, host: impl Into<ByteStr>) -> SipUri {
        SipUri {
            user: Some(user.into()),
            host: host.into(),
            port: None,
            params: Vec::new(),
        }
    }

    /// Builds a host-only URI `sip:host`.
    pub fn host_only(host: impl Into<ByteStr>) -> SipUri {
        SipUri {
            user: None,
            host: host.into(),
            port: None,
            params: Vec::new(),
        }
    }

    /// Sets the port (builder-style).
    pub fn with_port(mut self, port: u16) -> SipUri {
        self.port = Some(port);
        self
    }

    /// Adds a URI parameter (builder-style).
    pub fn with_param(mut self, name: impl Into<ByteStr>, value: impl Into<ByteStr>) -> SipUri {
        self.params.push((name.into(), value.into()));
        self
    }

    /// The host parsed as an IPv4 address, if it is a literal.
    pub fn host_ip(&self) -> Option<Ipv4Addr> {
        self.host.as_str().parse().ok()
    }

    /// The port, defaulting to 5060.
    pub fn port_or_default(&self) -> u16 {
        self.port.unwrap_or(5060)
    }

    /// The address-of-record string `user@host` used as a registrar key
    /// (port and params are not part of an AOR).
    pub fn aor(&self) -> String {
        match &self.user {
            Some(u) => format!("{u}@{}", self.host),
            None => self.host.as_str().to_string(),
        }
    }

    /// The retained allocating parser: materializes the user, host, and
    /// parameter parts as owned `String`s before wrapping them, exactly
    /// as the pre-optimization `FromStr` did. Kept so the reference
    /// start-line parser pays the same per-URI allocation costs the
    /// production path used to, and as a differential oracle for
    /// [`SipUri::from_str`].
    ///
    /// # Errors
    ///
    /// Same contract as `from_str`.
    pub fn parse_reference(s: &str) -> Result<SipUri, ParseUriError> {
        let rest = s.strip_prefix("sip:").ok_or(ParseUriError::BadScheme)?;
        let mut parts = rest.split(';');
        let core = parts.next().unwrap_or("");
        let params: Vec<(String, String)> = parts
            .map(|p| match p.split_once('=') {
                Some((n, v)) => (n.to_string(), v.to_string()),
                None => (p.to_string(), String::new()),
            })
            .collect();
        let (user, hostport) = match core.split_once('@') {
            Some((u, hp)) => (Some(u.to_string()), hp),
            None => (None, core),
        };
        let (host, port) = match hostport.split_once(':') {
            Some((h, p)) => {
                let port = p
                    .parse::<u16>()
                    .map_err(|_| ParseUriError::BadPort(p.to_string()))?;
                (h.to_string(), Some(port))
            }
            None => (hostport.to_string(), None),
        };
        if host.is_empty() {
            return Err(ParseUriError::EmptyHost);
        }
        Ok(SipUri {
            user: user.filter(|u| !u.is_empty()).map(ByteStr::from),
            host: ByteStr::from(host),
            port,
            params: params
                .into_iter()
                .map(|(n, v)| (ByteStr::from(n), ByteStr::from(v)))
                .collect(),
        })
    }
}

impl fmt::Display for SipUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sip:")?;
        if let Some(user) = &self.user {
            write!(f, "{user}@")?;
        }
        f.write_str(self.host.as_str())?;
        if let Some(port) = self.port {
            write!(f, ":{port}")?;
        }
        for (name, value) in &self.params {
            if value.is_empty() {
                write!(f, ";{name}")?;
            } else {
                write!(f, ";{name}={value}")?;
            }
        }
        Ok(())
    }
}

/// Error parsing a [`SipUri`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseUriError {
    /// The scheme was not `sip:`.
    BadScheme,
    /// The host part was empty.
    EmptyHost,
    /// The port was not a number in range.
    BadPort(String),
}

impl fmt::Display for ParseUriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUriError::BadScheme => write!(f, "uri scheme is not `sip:`"),
            ParseUriError::EmptyHost => write!(f, "uri host part is empty"),
            ParseUriError::BadPort(p) => write!(f, "invalid uri port `{p}`"),
        }
    }
}

impl std::error::Error for ParseUriError {}

impl FromStr for SipUri {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<SipUri, ParseUriError> {
        let rest = s.strip_prefix("sip:").ok_or(ParseUriError::BadScheme)?;
        // Split off URI parameters. Most request URIs carry none, so the
        // split iterator is only set up when a `;` is actually present.
        let (core, params) = match crate::scan::memchr(b';', rest.as_bytes()) {
            None => (rest, Vec::new()),
            Some(i) => (
                &rest[..i],
                rest[i + 1..]
                    .split(';')
                    .map(|p| match p.split_once('=') {
                        Some((n, v)) => (ByteStr::from(n), ByteStr::from(v)),
                        None => (ByteStr::from(p), ByteStr::EMPTY),
                    })
                    .collect(),
            ),
        };
        let (user, hostport) = match core.split_once('@') {
            Some((u, hp)) => (Some(u), hp),
            None => (None, core),
        };
        let (host, port) = match hostport.split_once(':') {
            Some((h, p)) => {
                let port = p
                    .parse::<u16>()
                    .map_err(|_| ParseUriError::BadPort(p.to_string()))?;
                (h, Some(port))
            }
            None => (hostport, None),
        };
        if host.is_empty() {
            return Err(ParseUriError::EmptyHost);
        }
        Ok(SipUri {
            user: user.filter(|u| !u.is_empty()).map(ByteStr::from),
            host: ByteStr::from(host),
            port,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_uri() {
        let uri: SipUri = "sip:bob@example.com:5070;transport=udp;lr".parse().unwrap();
        assert_eq!(uri.user.as_ref().map(|u| u.as_str()), Some("bob"));
        assert_eq!(uri.host, "example.com");
        assert_eq!(uri.port, Some(5070));
        assert_eq!(
            uri.params,
            vec![
                (ByteStr::from("transport"), ByteStr::from("udp")),
                (ByteStr::from("lr"), ByteStr::EMPTY)
            ]
        );
    }

    #[test]
    fn parse_minimal() {
        let uri: SipUri = "sip:example.com".parse().unwrap();
        assert_eq!(uri.user, None);
        assert_eq!(uri.port, None);
        assert_eq!(uri.port_or_default(), 5060);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "sip:alice@10.0.0.1",
            "sip:alice@10.0.0.1:5062",
            "sip:proxy.example.com",
            "sip:bob@h.com;transport=udp",
            "sip:bob@h.com:5060;lr",
        ] {
            let uri: SipUri = s.parse().unwrap();
            assert_eq!(uri.to_string(), s);
        }
    }

    #[test]
    fn host_ip_literal() {
        let uri: SipUri = "sip:a@10.0.0.9".parse().unwrap();
        assert_eq!(uri.host_ip(), Some(Ipv4Addr::new(10, 0, 0, 9)));
        let uri: SipUri = "sip:a@example.com".parse().unwrap();
        assert_eq!(uri.host_ip(), None);
    }

    #[test]
    fn aor_ignores_port() {
        let uri: SipUri = "sip:alice@example.com:5099".parse().unwrap();
        assert_eq!(uri.aor(), "alice@example.com");
        let uri: SipUri = "sip:example.com".parse().unwrap();
        assert_eq!(uri.aor(), "example.com");
    }

    #[test]
    fn errors() {
        assert_eq!("http://x".parse::<SipUri>(), Err(ParseUriError::BadScheme));
        assert_eq!("sip:".parse::<SipUri>(), Err(ParseUriError::EmptyHost));
        assert_eq!("sip:a@".parse::<SipUri>(), Err(ParseUriError::EmptyHost));
        assert!(matches!(
            "sip:a@h:99999".parse::<SipUri>(),
            Err(ParseUriError::BadPort(_))
        ));
    }

    #[test]
    fn builder_helpers() {
        let uri = SipUri::new("alice", "10.0.0.1")
            .with_port(5060)
            .with_param("transport", "udp");
        assert_eq!(uri.to_string(), "sip:alice@10.0.0.1:5060;transport=udp");
        assert_eq!(SipUri::host_only("h.com").to_string(), "sip:h.com");
    }

    #[test]
    fn empty_user_is_none() {
        let uri: SipUri = "sip:@h.com".parse().unwrap();
        assert_eq!(uri.user, None);
    }

    /// `from_str` (production) and `parse_reference` (retained
    /// allocating parser) must agree — result or error — on every input.
    #[test]
    fn reference_parser_matches_from_str() {
        for s in [
            "sip:bob@example.com:5070;transport=udp;lr",
            "sip:example.com",
            "sip:alice@10.0.0.1",
            "sip:@h.com",
            "sip:a@h:99999",
            "sip:",
            "sip:a@",
            "http://x",
            "sip:h;=;a=;=b;;x",
            "sip:u@h:5060;p",
            "",
        ] {
            assert_eq!(
                s.parse::<SipUri>(),
                SipUri::parse_reference(s),
                "diverged on `{s}`"
            );
        }
    }
}
