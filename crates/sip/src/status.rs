//! SIP response status codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A SIP response status code (RFC 3261 §7.2).
///
/// # Examples
///
/// ```
/// use scidive_sip::status::StatusCode;
///
/// assert!(StatusCode::OK.is_success());
/// assert_eq!(StatusCode::UNAUTHORIZED.code(), 401);
/// assert_eq!(StatusCode::UNAUTHORIZED.class(), 4);
/// assert_eq!(StatusCode::TRYING.default_reason(), "Trying");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(u16);

impl StatusCode {
    /// 100 Trying.
    pub const TRYING: StatusCode = StatusCode(100);
    /// 180 Ringing.
    pub const RINGING: StatusCode = StatusCode(180);
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 202 Accepted.
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Moved Temporarily.
    pub const MOVED_TEMPORARILY: StatusCode = StatusCode(302);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized — carries the registrar's digest challenge.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 481 Call/Transaction Does Not Exist.
    pub const CALL_DOES_NOT_EXIST: StatusCode = StatusCode(481);
    /// 486 Busy Here.
    pub const BUSY_HERE: StatusCode = StatusCode(486);
    /// 487 Request Terminated.
    pub const REQUEST_TERMINATED: StatusCode = StatusCode(487);
    /// 500 Server Internal Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 603 Decline.
    pub const DECLINE: StatusCode = StatusCode(603);

    /// Creates a status code.
    ///
    /// # Panics
    ///
    /// Panics if `code` is outside `100..=699`.
    pub fn new(code: u16) -> StatusCode {
        assert!(
            (100..=699).contains(&code),
            "sip status code out of range: {code}"
        );
        StatusCode(code)
    }

    /// The numeric code.
    pub fn code(self) -> u16 {
        self.0
    }

    /// The class digit (1–6).
    pub fn class(self) -> u8 {
        (self.0 / 100) as u8
    }

    /// Whether this is a 1xx provisional response.
    pub fn is_provisional(self) -> bool {
        self.class() == 1
    }

    /// Whether this is a 2xx success response.
    pub fn is_success(self) -> bool {
        self.class() == 2
    }

    /// Whether this is a final (non-1xx) response.
    pub fn is_final(self) -> bool {
        !self.is_provisional()
    }

    /// Whether this is a 4xx client-error response — the class the
    /// paper's §3.3 stateful-detection example keys on.
    pub fn is_client_error(self) -> bool {
        self.class() == 4
    }

    /// The RFC 3261 default reason phrase, or `"Unknown"` for codes
    /// without one.
    pub fn default_reason(self) -> &'static str {
        match self.0 {
            100 => "Trying",
            180 => "Ringing",
            181 => "Call Is Being Forwarded",
            183 => "Session Progress",
            200 => "OK",
            202 => "Accepted",
            301 => "Moved Permanently",
            302 => "Moved Temporarily",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            407 => "Proxy Authentication Required",
            408 => "Request Timeout",
            415 => "Unsupported Media Type",
            420 => "Bad Extension",
            481 => "Call/Transaction Does Not Exist",
            482 => "Loop Detected",
            486 => "Busy Here",
            487 => "Request Terminated",
            488 => "Not Acceptable Here",
            500 => "Server Internal Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            600 => "Busy Everywhere",
            603 => "Decline",
            604 => "Does Not Exist Anywhere",
            606 => "Not Acceptable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.default_reason())
    }
}

impl TryFrom<u16> for StatusCode {
    type Error = InvalidStatusCode;

    fn try_from(code: u16) -> Result<StatusCode, InvalidStatusCode> {
        if (100..=699).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(InvalidStatusCode { code })
        }
    }
}

/// Error constructing a [`StatusCode`] from an out-of-range number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStatusCode {
    /// The rejected code.
    pub code: u16,
}

impl fmt::Display for InvalidStatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sip status code out of range: {}", self.code)
    }
}

impl std::error::Error for InvalidStatusCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(StatusCode::TRYING.class(), 1);
        assert_eq!(StatusCode::OK.class(), 2);
        assert_eq!(StatusCode::MOVED_TEMPORARILY.class(), 3);
        assert_eq!(StatusCode::UNAUTHORIZED.class(), 4);
        assert_eq!(StatusCode::SERVER_ERROR.class(), 5);
        assert_eq!(StatusCode::DECLINE.class(), 6);
    }

    #[test]
    fn predicates() {
        assert!(StatusCode::TRYING.is_provisional());
        assert!(!StatusCode::TRYING.is_final());
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::OK.is_final());
        assert!(StatusCode::UNAUTHORIZED.is_client_error());
        assert!(!StatusCode::OK.is_client_error());
    }

    #[test]
    fn try_from_range() {
        assert!(StatusCode::try_from(99).is_err());
        assert!(StatusCode::try_from(700).is_err());
        assert_eq!(StatusCode::try_from(486).unwrap(), StatusCode::BUSY_HERE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        StatusCode::new(42);
    }

    #[test]
    fn display_includes_reason() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode::new(499).to_string(), "499 Unknown");
    }
}
