//! SIP transaction state machines (RFC 3261 §17, UDP profile,
//! simplified).
//!
//! Transactions give the UA retransmission over unreliable UDP and give
//! servers absorption of retransmitted requests. Timings follow the RFC's
//! T1-based schedule but are expressed as plain milliseconds so this
//! crate stays independent of the simulator's clock; callers translate to
//! their own timer API.

use crate::method::Method;
use crate::status::StatusCode;
use serde::{Deserialize, Serialize};

/// RFC 3261 T1: RTT estimate, the base retransmission interval (ms).
pub const T1_MS: u64 = 500;
/// RFC 3261 T2: cap for non-INVITE retransmission intervals (ms).
pub const T2_MS: u64 = 4_000;
/// Timer B/F: transaction timeout, `64 * T1` (ms).
pub const TIMEOUT_MS: u64 = 64 * T1_MS;

/// Client transaction state (merged INVITE/non-INVITE view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientTxnState {
    /// Request sent, nothing heard.
    Trying,
    /// Provisional received; retransmissions stop (INVITE) or slow down.
    Proceeding,
    /// Final response received.
    Completed,
    /// Done (timed out or finished).
    Terminated,
}

/// What a client transaction asks its owner to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientTxnAction {
    /// Retransmit the request and re-arm the timer for `next_in_ms`.
    Retransmit {
        /// Delay until the next retransmission check, in milliseconds.
        next_in_ms: u64,
    },
    /// Do not retransmit, but keep the overall-timeout watchdog armed
    /// (INVITE transactions stop retransmitting once Proceeding).
    Rearm {
        /// Delay until the next check, in milliseconds.
        next_in_ms: u64,
    },
    /// Give up: no final response within `64*T1`.
    TimedOut,
    /// Nothing to do (transaction no longer active).
    Idle,
}

/// A client transaction: drives retransmission of one request.
///
/// # Examples
///
/// ```
/// use scidive_sip::txn::{ClientTransaction, ClientTxnAction, ClientTxnState};
/// use scidive_sip::method::Method;
/// use scidive_sip::status::StatusCode;
///
/// let mut txn = ClientTransaction::new(Method::Register, "z9hG4bK1");
/// // 500 ms pass with no response:
/// match txn.on_timer(500) {
///     ClientTxnAction::Retransmit { next_in_ms } => assert_eq!(next_in_ms, 1000),
///     other => panic!("{other:?}"),
/// }
/// txn.on_response(StatusCode::OK);
/// assert_eq!(txn.state(), ClientTxnState::Completed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientTransaction {
    method: Method,
    branch: String,
    state: ClientTxnState,
    /// Time since transaction start, advanced by the owner (ms).
    elapsed_ms: u64,
    /// Current retransmission interval (ms).
    interval_ms: u64,
    retransmissions: u32,
}

impl ClientTransaction {
    /// Starts a transaction for a request just sent with `branch`.
    pub fn new(method: Method, branch: impl Into<String>) -> ClientTransaction {
        ClientTransaction {
            method,
            branch: branch.into(),
            state: ClientTxnState::Trying,
            elapsed_ms: 0,
            interval_ms: T1_MS,
            retransmissions: 0,
        }
    }

    /// The transaction's Via branch (its identifier).
    pub fn branch(&self) -> &str {
        &self.branch
    }

    /// The request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Current state.
    pub fn state(&self) -> ClientTxnState {
        self.state
    }

    /// How many times the request was retransmitted.
    pub fn retransmissions(&self) -> u32 {
        self.retransmissions
    }

    /// Whether the transaction still wants timer callbacks.
    pub fn is_active(&self) -> bool {
        matches!(
            self.state,
            ClientTxnState::Trying | ClientTxnState::Proceeding
        )
    }

    /// The delay (ms) after which the owner should call
    /// [`ClientTransaction::on_timer`], or `None` if inactive.
    pub fn next_timer_ms(&self) -> Option<u64> {
        self.is_active().then_some(self.interval_ms)
    }

    /// Advances the transaction clock by `delta_ms` and reports what to
    /// do. The owner calls this when the timer it armed fires.
    pub fn on_timer(&mut self, delta_ms: u64) -> ClientTxnAction {
        if !self.is_active() {
            return ClientTxnAction::Idle;
        }
        self.elapsed_ms += delta_ms;
        if self.elapsed_ms >= TIMEOUT_MS {
            self.state = ClientTxnState::Terminated;
            return ClientTxnAction::TimedOut;
        }
        // INVITE transactions stop retransmitting once Proceeding.
        if self.method.is_invite() && self.state == ClientTxnState::Proceeding {
            return ClientTxnAction::Rearm {
                // Keep a watchdog armed for the overall timeout only.
                next_in_ms: TIMEOUT_MS - self.elapsed_ms,
            };
        }
        self.retransmissions += 1;
        self.interval_ms = (self.interval_ms * 2).min(T2_MS);
        ClientTxnAction::Retransmit {
            next_in_ms: self.interval_ms,
        }
    }

    /// Feeds a response with a matching branch.
    pub fn on_response(&mut self, code: StatusCode) {
        if !self.is_active() {
            return;
        }
        if code.is_provisional() {
            self.state = ClientTxnState::Proceeding;
        } else {
            self.state = ClientTxnState::Completed;
        }
    }
}

/// A server transaction: absorbs request retransmissions and replays the
/// last response.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerTransaction {
    branch: String,
    /// Serialized last response, replayed on retransmitted requests.
    last_response: Option<Vec<u8>>,
    requests_seen: u32,
}

impl ServerTransaction {
    /// Creates a server transaction for a request with `branch`.
    pub fn new(branch: impl Into<String>) -> ServerTransaction {
        ServerTransaction {
            branch: branch.into(),
            last_response: None,
            requests_seen: 1,
        }
    }

    /// The transaction branch.
    pub fn branch(&self) -> &str {
        &self.branch
    }

    /// Number of copies of the request seen (1 = no retransmissions).
    pub fn requests_seen(&self) -> u32 {
        self.requests_seen
    }

    /// Records the response we sent so it can be replayed.
    pub fn record_response(&mut self, wire: impl Into<Vec<u8>>) {
        self.last_response = Some(wire.into());
    }

    /// Handles a retransmitted copy of the request: returns the response
    /// to replay, if we already answered.
    pub fn on_retransmitted_request(&mut self) -> Option<&[u8]> {
        self.requests_seen += 1;
        self.last_response.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_invite_backoff_doubles_to_t2() {
        let mut txn = ClientTransaction::new(Method::Register, "b1");
        assert_eq!(txn.next_timer_ms(), Some(500));
        let mut intervals = Vec::new();
        let mut wait = 500;
        for _ in 0..6 {
            match txn.on_timer(wait) {
                ClientTxnAction::Retransmit { next_in_ms } => {
                    intervals.push(next_in_ms);
                    wait = next_in_ms;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(intervals, vec![1000, 2000, 4000, 4000, 4000, 4000]);
        assert_eq!(txn.retransmissions(), 6);
    }

    #[test]
    fn times_out_at_64_t1() {
        let mut txn = ClientTransaction::new(Method::Register, "b1");
        let mut wait = 500;
        let mut total = 0u64;
        loop {
            match txn.on_timer(wait) {
                ClientTxnAction::Retransmit { next_in_ms } => {
                    total += wait;
                    wait = next_in_ms;
                }
                ClientTxnAction::TimedOut => {
                    total += wait;
                    break;
                }
                ClientTxnAction::Idle | ClientTxnAction::Rearm { .. } => {
                    panic!("unexpected action before timeout")
                }
            }
        }
        assert!(total >= TIMEOUT_MS);
        assert_eq!(txn.state(), ClientTxnState::Terminated);
        assert_eq!(txn.on_timer(500), ClientTxnAction::Idle);
    }

    #[test]
    fn response_completes() {
        let mut txn = ClientTransaction::new(Method::Bye, "b2");
        txn.on_response(StatusCode::OK);
        assert_eq!(txn.state(), ClientTxnState::Completed);
        assert!(!txn.is_active());
        assert_eq!(txn.next_timer_ms(), None);
    }

    #[test]
    fn provisional_moves_to_proceeding() {
        let mut txn = ClientTransaction::new(Method::Invite, "b3");
        txn.on_response(StatusCode::RINGING);
        assert_eq!(txn.state(), ClientTxnState::Proceeding);
        // INVITE in Proceeding: no more retransmissions, just watchdog.
        match txn.on_timer(500) {
            ClientTxnAction::Rearm { next_in_ms } => {
                assert_eq!(next_in_ms, TIMEOUT_MS - 500);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(txn.retransmissions(), 0);
        txn.on_response(StatusCode::OK);
        assert_eq!(txn.state(), ClientTxnState::Completed);
    }

    #[test]
    fn non_invite_proceeding_keeps_retransmitting() {
        let mut txn = ClientTransaction::new(Method::Register, "b4");
        txn.on_response(StatusCode::TRYING);
        assert_eq!(txn.state(), ClientTxnState::Proceeding);
        assert!(matches!(
            txn.on_timer(500),
            ClientTxnAction::Retransmit { next_in_ms: 1000 }
        ));
        assert_eq!(txn.retransmissions(), 1);
    }

    #[test]
    fn late_response_ignored() {
        let mut txn = ClientTransaction::new(Method::Bye, "b5");
        txn.on_response(StatusCode::OK);
        txn.on_response(StatusCode::SERVER_ERROR);
        assert_eq!(txn.state(), ClientTxnState::Completed);
    }

    #[test]
    fn server_txn_replays_response() {
        let mut txn = ServerTransaction::new("b6");
        assert_eq!(txn.requests_seen(), 1);
        assert_eq!(txn.on_retransmitted_request(), None);
        txn.record_response(b"SIP/2.0 200 OK\r\n\r\n".to_vec());
        assert_eq!(
            txn.on_retransmitted_request(),
            Some(b"SIP/2.0 200 OK\r\n\r\n".as_ref())
        );
        assert_eq!(txn.requests_seen(), 3);
        assert_eq!(txn.branch(), "b6");
    }
}
