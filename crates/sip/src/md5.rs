//! Self-contained MD5 (RFC 1321), used only for SIP digest authentication.
//!
//! MD5 is cryptographically broken and must not be used for new security
//! designs; it is implemented here because RFC 2617 digest access
//! authentication — which SIP registration used in the paper's era —
//! specifies it, and the allowed dependency set contains no hash crate.

/// Computes the MD5 digest of `data`.
///
/// # Examples
///
/// ```
/// use scidive_sip::md5::{md5, md5_hex};
///
/// assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
/// assert_eq!(md5(b"abc")[0], 0x90);
/// ```
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

/// Computes the MD5 digest of `data` as a lowercase hex string (the form
/// RFC 2617 uses in digest responses).
pub fn md5_hex(data: &[u8]) -> String {
    to_hex(&md5(data))
}

/// Renders bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Md5 {
    fn default() -> Md5 {
        Md5::new()
    }
}

impl Md5 {
    /// Creates a fresh hasher.
    pub fn new() -> Md5 {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Feeds data into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process(&block);
            data = &data[64..];
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length goes in directly (not via update, which would recount).
        self.buffer[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buffer;
        self.process(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn process(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let vectors = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in vectors {
            assert_eq!(md5_hex(input.as_bytes()), expected, "input={input}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let oneshot = md5(&data);
        for chunk_size in [1, 3, 63, 64, 65, 128, 999] {
            let mut ctx = Md5::new();
            for chunk in data.chunks(chunk_size) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), oneshot, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Padding edge cases: 55, 56, 57, 63, 64, 65 bytes.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![b'x'; len];
            // Compare against incremental-by-1 to self-check padding path.
            let mut ctx = Md5::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), md5(&data), "len={len}");
        }
    }

    #[test]
    fn rfc2617_example_ha1() {
        // The classic RFC 2617 example: HA1 for Mufasa.
        let ha1 = md5_hex(b"Mufasa:testrealm@host.com:Circle Of Life");
        assert_eq!(ha1, "939e7578ed9e3c518a452acee763bce9");
    }

    #[test]
    fn to_hex_renders() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }
}
