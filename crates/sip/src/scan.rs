//! Word-at-a-time byte scanning primitives for the SIP hot path.
//!
//! The crate forbids `unsafe`, so these are SWAR (SIMD within a
//! register) routines over `u64` lanes built with `chunks_exact` +
//! `from_le_bytes` — the compiler lowers them to aligned vector loads
//! and the classic zero-byte trick, giving memchr-like throughput
//! without platform intrinsics. They back [`crate::parse`]'s
//! CRLF/terminator scanning and the UTF-8-validated slicing in
//! [`crate::bstr`].
//!
//! The zero-byte trick: for a word `w`, `(w - 0x0101..01) & !w &
//! 0x8080..80` has the high bit set in exactly the lanes that were
//! zero. XORing `w` with a broadcast of the target byte first turns
//! "find byte `b`" into "find zero".

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts a byte into all eight lanes of a word.
#[inline]
const fn broadcast(b: u8) -> u64 {
    LO * b as u64
}

/// A word with the high bit set in every lane equal to `b` (given
/// `x = w ^ broadcast(b)`), and clear elsewhere.
#[inline]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the first occurrence of `needle` in `haystack`, if any.
///
/// Equivalent to `haystack.iter().position(|&b| b == needle)`, scanning
/// eight bytes per step.
///
/// # Examples
///
/// ```
/// use scidive_sip::scan::memchr;
///
/// assert_eq!(memchr(b'\n', b"Call-ID: x\nVia: y"), Some(10));
/// assert_eq!(memchr(b'\n', b"no newline"), None);
/// ```
#[inline]
pub fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    let bcast = broadcast(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hits = zero_lanes(word ^ bcast);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Index of the first occurrence of `a` or `b` in `haystack`, if any.
///
/// # Examples
///
/// ```
/// use scidive_sip::scan::memchr2;
///
/// assert_eq!(memchr2(b'\r', b'\n', b"abc\ndef"), Some(3));
/// ```
#[inline]
pub fn memchr2(a: u8, b: u8, haystack: &[u8]) -> Option<usize> {
    let bcast_a = broadcast(a);
    let bcast_b = broadcast(b);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hits = zero_lanes(word ^ bcast_a) | zero_lanes(word ^ bcast_b);
        if hits != 0 {
            return Some(offset + (hits.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b)
        .map(|i| offset + i)
}

/// Index of the first `\r\n\r\n` in `haystack`, if any — the CRLF
/// header/body separator scan. Word-at-a-time over `\r` candidates:
/// almost every byte of a SIP header section is not `\r`, so the scan
/// runs at memchr speed and confirms the 4-byte window only at
/// candidates.
///
/// # Examples
///
/// ```
/// use scidive_sip::scan::find_crlf_crlf;
///
/// assert_eq!(find_crlf_crlf(b"a: b\r\n\r\nbody"), Some(4));
/// assert_eq!(find_crlf_crlf(b"a: b\r\n"), None);
/// ```
#[inline]
pub fn find_crlf_crlf(haystack: &[u8]) -> Option<usize> {
    find_seq(haystack, b'\r', b"\r\n\r\n")
}

/// Index of the first `\n\n` in `haystack`, if any — the bare-LF
/// fallback separator.
#[inline]
pub fn find_lf_lf(haystack: &[u8]) -> Option<usize> {
    find_seq(haystack, b'\n', b"\n\n")
}

/// Capacity of the caller-provided table [`memchr_all`] fills: enough
/// for every header section a VoIP endpoint emits (a line per entry,
/// and real messages stay under ~40 lines), while keeping the table a
/// small fixed stack buffer — it is zero-initialized per parse, so
/// oversizing it is a real per-message cost.
pub const HIT_CAP: usize = 48;

/// Positions of every occurrence of `needle` in `haystack`, collected
/// into `out` in one word-at-a-time pass. Returns the hit count, or
/// `None` when there are more than [`HIT_CAP`] occurrences — the caller
/// falls back to incremental scanning for such outliers.
///
/// One call replaces a per-line [`memchr`] cursor: the repeated calls
/// each pay loop setup and remainder handling on a ~40-byte line,
/// where a single pass over the header section amortizes both.
///
/// # Examples
///
/// ```
/// use scidive_sip::scan::{memchr_all, HIT_CAP};
///
/// let mut out = [0u32; HIT_CAP];
/// assert_eq!(memchr_all(b'\n', b"a\nbc\nd", &mut out), Some(2));
/// assert_eq!(&out[..2], &[1, 4]);
/// ```
#[inline]
pub fn memchr_all(needle: u8, haystack: &[u8], out: &mut [u32; HIT_CAP]) -> Option<usize> {
    let bcast = broadcast(needle);
    let mut n = 0usize;
    let mut chunks = haystack.chunks_exact(16);
    let mut offset = 0u32;
    for chunk in &mut chunks {
        let w0 = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte half"));
        let w1 = u64::from_le_bytes(chunk[8..].try_into().expect("8-byte half"));
        let h0 = zero_lanes(w0 ^ bcast);
        let h1 = zero_lanes(w1 ^ bcast);
        if h0 | h1 != 0 {
            for (word_off, mut hits) in [(offset, h0), (offset + 8, h1)] {
                while hits != 0 {
                    if n == HIT_CAP {
                        return None;
                    }
                    out[n] = word_off + hits.trailing_zeros() / 8;
                    n += 1;
                    hits &= hits - 1;
                }
            }
        }
        offset += 16;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == needle {
            if n == HIT_CAP {
                return None;
            }
            out[n] = offset + i as u32;
            n += 1;
        }
    }
    Some(n)
}

/// Capacity of the second (`b`) table [`memchr2_all`] fills. Colons are
/// dense in SIP header sections — every `Via`, `Contact`, and URI value
/// carries several — so this table is deliberately larger than
/// [`HIT_CAP`].
pub const DENSE_HIT_CAP: usize = 192;

/// Positions of every `a` and every `b` in `haystack`, collected into
/// two tables in one word-at-a-time pass. Returns the two hit counts,
/// or `None` when either table would overflow — the caller falls back
/// to incremental scanning.
///
/// This exists for the parser's line/colon structure scan: one pass
/// over the header section replaces a [`memchr`] call per line.
///
/// # Examples
///
/// ```
/// use scidive_sip::scan::{memchr2_all, DENSE_HIT_CAP, HIT_CAP};
///
/// let mut lf = [0u32; HIT_CAP];
/// let mut colon = [0u32; DENSE_HIT_CAP];
/// let n = memchr2_all(b'\n', b':', b"a: b\nc: d", &mut lf, &mut colon);
/// assert_eq!(n, Some((1, 2)));
/// assert_eq!(&lf[..1], &[4]);
/// assert_eq!(&colon[..2], &[1, 6]);
/// ```
#[inline]
pub fn memchr2_all(
    a: u8,
    b: u8,
    haystack: &[u8],
    out_a: &mut [u32; HIT_CAP],
    out_b: &mut [u32; DENSE_HIT_CAP],
) -> Option<(usize, usize)> {
    debug_assert_ne!(a, b, "needles must differ");
    let bcast_a = broadcast(a);
    let bcast_b = broadcast(b);
    let mut na = 0usize;
    let mut nb = 0usize;
    let mut chunks = haystack.chunks_exact(16);
    let mut offset = 0u32;
    for chunk in &mut chunks {
        let w0 = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte half"));
        let w1 = u64::from_le_bytes(chunk[8..].try_into().expect("8-byte half"));
        let ha0 = zero_lanes(w0 ^ bcast_a);
        let ha1 = zero_lanes(w1 ^ bcast_a);
        let hb0 = zero_lanes(w0 ^ bcast_b);
        let hb1 = zero_lanes(w1 ^ bcast_b);
        if (ha0 | ha1 | hb0 | hb1) != 0 {
            for (word_off, mut hits) in [(offset, ha0), (offset + 8, ha1)] {
                while hits != 0 {
                    if na == HIT_CAP {
                        return None;
                    }
                    out_a[na] = word_off + hits.trailing_zeros() / 8;
                    na += 1;
                    hits &= hits - 1;
                }
            }
            for (word_off, mut hits) in [(offset, hb0), (offset + 8, hb1)] {
                while hits != 0 {
                    if nb == DENSE_HIT_CAP {
                        return None;
                    }
                    out_b[nb] = word_off + hits.trailing_zeros() / 8;
                    nb += 1;
                    hits &= hits - 1;
                }
            }
        }
        offset += 16;
    }
    for (i, &x) in chunks.remainder().iter().enumerate() {
        if x == a {
            if na == HIT_CAP {
                return None;
            }
            out_a[na] = offset + i as u32;
            na += 1;
        } else if x == b {
            if nb == DENSE_HIT_CAP {
                return None;
            }
            out_b[nb] = offset + i as u32;
            nb += 1;
        }
    }
    Some((na, nb))
}

/// First occurrence of `needle` (which starts with `first`) in
/// `haystack`: one word-at-a-time pass over lead-byte candidates, each
/// confirmed with a slice compare. Every candidate lane in a word is
/// drained (`hits &= hits - 1` clears the lowest) before the scan
/// advances, so line endings — where lead bytes cluster — cost one
/// load, not a rescan per candidate.
#[inline]
fn find_seq(haystack: &[u8], first: u8, needle: &[u8]) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    // Candidate starts past this index cannot fit the needle.
    let last = haystack.len() - needle.len();
    let bcast = broadcast(first);
    // 16 bytes per step: two words checked with one combined branch.
    // Header sections are hundreds of bytes of non-`\r`, so the no-hit
    // path dominates and halving its branch count is what matters.
    let mut chunks = haystack.chunks_exact(16);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w0 = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte half"));
        let w1 = u64::from_le_bytes(chunk[8..].try_into().expect("8-byte half"));
        let h0 = zero_lanes(w0 ^ bcast);
        let h1 = zero_lanes(w1 ^ bcast);
        if h0 | h1 != 0 {
            for (word_off, mut hits) in [(offset, h0), (offset + 8, h1)] {
                while hits != 0 {
                    let pos = word_off + (hits.trailing_zeros() / 8) as usize;
                    if pos > last {
                        return None;
                    }
                    if haystack[pos..pos + needle.len()] == *needle {
                        return Some(pos);
                    }
                    hits &= hits - 1;
                }
            }
        }
        offset += 16;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        let pos = offset + i;
        if pos > last {
            break;
        }
        if b == first && haystack[pos..pos + needle.len()] == *needle {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (no `rand` dep here).
    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn memchr_matches_naive_on_noise() {
        for seed in 0..50 {
            for len in [0, 1, 7, 8, 9, 15, 16, 63, 200] {
                let hay = noise(len, seed * 1000 + len as u64);
                for needle in [0u8, b'\r', b'\n', b':', 0xff, hay.first().copied().unwrap_or(1)] {
                    assert_eq!(
                        memchr(needle, &hay),
                        hay.iter().position(|&b| b == needle),
                        "needle {needle:#x} in {hay:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn memchr2_matches_naive_on_noise() {
        for seed in 0..50 {
            let hay = noise(100, seed);
            assert_eq!(
                memchr2(b'\r', b'\n', &hay),
                hay.iter().position(|&b| b == b'\r' || b == b'\n')
            );
        }
    }

    #[test]
    fn finds_each_position() {
        for pos in 0..40 {
            let mut hay = vec![b'x'; 48];
            hay[pos] = b'\n';
            assert_eq!(memchr(b'\n', &hay), Some(pos));
        }
    }

    #[test]
    fn crlf_crlf_positions() {
        let naive = |hay: &[u8]| hay.windows(4).position(|w| w == b"\r\n\r\n");
        for pos in 0..30 {
            let mut hay = vec![b'a'; 40];
            hay[pos..pos + 4].copy_from_slice(b"\r\n\r\n");
            assert_eq!(find_crlf_crlf(&hay), naive(&hay));
        }
        // Overlapping decoys: lone CRs, CRLF without the second pair.
        let tricky = b"\r\ra\r\nb\r\n\r\r\n\r\n\r\n";
        assert_eq!(find_crlf_crlf(tricky), naive(tricky));
        assert_eq!(find_crlf_crlf(b"\r\n\r"), None);
        assert_eq!(find_crlf_crlf(b""), None);
    }

    #[test]
    fn memchr_all_matches_naive() {
        let mut out = [0u32; HIT_CAP];
        for seed in 0..30 {
            for len in [0, 1, 15, 16, 17, 31, 200] {
                let hay = noise(len, seed * 7 + len as u64);
                let naive: Vec<u32> = hay
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i as u32)
                    .collect();
                if naive.len() > HIT_CAP {
                    assert_eq!(memchr_all(b'\n', &hay, &mut out), None);
                } else {
                    assert_eq!(memchr_all(b'\n', &hay, &mut out), Some(naive.len()));
                    assert_eq!(&out[..naive.len()], &naive[..]);
                }
            }
        }
        // Overflow: more hits than the table holds.
        let dense = vec![b'\n'; HIT_CAP + 1];
        assert_eq!(memchr_all(b'\n', &dense, &mut out), None);
        let exact = vec![b'\n'; HIT_CAP];
        assert_eq!(memchr_all(b'\n', &exact, &mut out), Some(HIT_CAP));
    }

    #[test]
    fn memchr2_all_matches_naive() {
        let mut lf = [0u32; HIT_CAP];
        let mut colon = [0u32; DENSE_HIT_CAP];
        let heads: Vec<Vec<u8>> = vec![
            b"Via: SIP/2.0/UDP 10.0.0.1:5060\r\nTo: <sip:b@h>\r\nX: y".to_vec(),
            b"".to_vec(),
            b"::::\n\n::::".to_vec(),
            noise(333, 9),
        ];
        for hay in &heads {
            let want_lf: Vec<u32> = hay
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i as u32)
                .collect();
            let want_colon: Vec<u32> = hay
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b':')
                .map(|(i, _)| i as u32)
                .collect();
            let got = memchr2_all(b'\n', b':', hay, &mut lf, &mut colon);
            assert_eq!(got, Some((want_lf.len(), want_colon.len())));
            assert_eq!(&lf[..want_lf.len()], &want_lf[..]);
            assert_eq!(&colon[..want_colon.len()], &want_colon[..]);
        }
        // Overflow of either table reports `None`.
        assert_eq!(
            memchr2_all(b'\n', b':', &[b'\n'; HIT_CAP + 1], &mut lf, &mut colon),
            None
        );
        assert_eq!(
            memchr2_all(b'\n', b':', &[b':'; DENSE_HIT_CAP + 1], &mut lf, &mut colon),
            None
        );
    }

    #[test]
    fn lf_lf_positions() {
        let naive = |hay: &[u8]| hay.windows(2).position(|w| w == b"\n\n");
        for hay in [&b"a\nb\n\nc"[..], b"\n\n", b"\n", b"", b"x\ny\nz"] {
            assert_eq!(find_lf_lf(hay), naive(hay));
        }
    }
}
