//! Sequence-number arithmetic and source validation (RFC 3550 §A.1).
//!
//! The paper's RTP-attack rule is exactly a sequence-number discipline:
//! "if we see two consecutive packets whose sequence numbers have a
//! difference greater than 100, the IDS will signal an alarm" (§4.2.4).
//! [`seq_delta`] provides the wrapping difference that rule needs, and
//! [`SeqTracker`] implements the RFC's probation/dropout/misorder
//! validation used by well-behaved receivers.

use serde::{Deserialize, Serialize};

/// Wrapping difference `b - a` interpreted in the shortest direction,
/// in `-32768..=32767`.
///
/// # Examples
///
/// ```
/// use scidive_rtp::seq::seq_delta;
///
/// assert_eq!(seq_delta(10, 11), 1);
/// assert_eq!(seq_delta(11, 10), -1);
/// assert_eq!(seq_delta(65_535, 0), 1); // wrap-around
/// assert_eq!(seq_delta(0, 65_535), -1);
/// ```
pub fn seq_delta(a: u16, b: u16) -> i32 {
    let diff = b.wrapping_sub(a);
    if diff < 0x8000 {
        diff as i32
    } else {
        diff as i32 - 0x10000
    }
}

/// Packets of reordering tolerated before treating a packet as from a
/// restarted/new source (RFC 3550 suggested value).
pub const MAX_MISORDER: u16 = 100;
/// Forward jump tolerated before suspecting a bad source.
pub const MAX_DROPOUT: u16 = 3000;
/// Sequential packets required to declare a source valid.
pub const MIN_SEQUENTIAL: u32 = 2;

/// The verdict for one received sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqVerdict {
    /// In order (or tolerably reordered); counted as received.
    Valid,
    /// Source still in probation; packet dropped by a strict receiver.
    Probation,
    /// Jump beyond [`MAX_DROPOUT`]: possible attack or source restart.
    BigJump {
        /// The wrapping delta from the previous highest sequence.
        delta: i32,
    },
    /// Duplicate or very late packet.
    Duplicate,
}

/// Per-source sequence state, after RFC 3550 appendix A.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqTracker {
    max_seq: u16,
    /// Shifted count of sequence cycles (per RFC: `cycles` is the count
    /// of wraps times 2^16).
    cycles: u32,
    base_seq: u16,
    probation: u32,
    received: u64,
    bad_seq: Option<u16>,
}

impl SeqTracker {
    /// Starts tracking at the first observed sequence number.
    pub fn new(first_seq: u16) -> SeqTracker {
        SeqTracker {
            max_seq: first_seq,
            cycles: 0,
            base_seq: first_seq,
            probation: MIN_SEQUENTIAL - 1,
            received: 1,
            bad_seq: None,
        }
    }

    /// Packets accepted as valid so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The extended highest sequence number (cycles × 2^16 + max_seq).
    pub fn extended_highest(&self) -> u64 {
        (self.cycles as u64) << 16 | self.max_seq as u64
    }

    /// Number of 2^16 wraps observed.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Whether the source has cleared probation.
    pub fn is_validated(&self) -> bool {
        self.probation == 0
    }

    /// Feeds the next observed sequence number.
    pub fn update(&mut self, seq: u16) -> SeqVerdict {
        let delta = seq_delta(self.max_seq, seq);
        if self.probation > 0 {
            // Source not yet valid: require sequential packets.
            if seq == self.max_seq.wrapping_add(1) {
                self.probation -= 1;
                self.max_seq = seq;
                if self.probation == 0 {
                    self.received += 1;
                    return SeqVerdict::Valid;
                }
            } else {
                self.probation = MIN_SEQUENTIAL - 1;
                self.max_seq = seq;
            }
            return SeqVerdict::Probation;
        }
        if delta > 0 && delta < MAX_DROPOUT as i32 {
            if seq < self.max_seq {
                self.cycles += 1;
            }
            self.max_seq = seq;
            self.received += 1;
            SeqVerdict::Valid
        } else if delta <= 0 && -delta < MAX_MISORDER as i32 {
            if delta == 0 {
                SeqVerdict::Duplicate
            } else {
                // Reordered but acceptable.
                self.received += 1;
                SeqVerdict::Valid
            }
        } else {
            // Big jump (forward or far backward).
            if let Some(bad) = self.bad_seq {
                if seq == bad.wrapping_add(1) {
                    // Two sequential packets at the new offset: the
                    // source restarted; resync.
                    *self = SeqTracker::new(seq);
                    self.probation = 0;
                    return SeqVerdict::Valid;
                }
            }
            self.bad_seq = Some(seq);
            SeqVerdict::BigJump { delta }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_shortest_path() {
        assert_eq!(seq_delta(0, 0), 0);
        assert_eq!(seq_delta(100, 200), 100);
        assert_eq!(seq_delta(200, 100), -100);
        assert_eq!(seq_delta(65_000, 100), 636);
        assert_eq!(seq_delta(100, 65_000), -636);
        assert_eq!(seq_delta(0, 0x8000), -32768);
    }

    #[test]
    fn probation_then_valid() {
        let mut t = SeqTracker::new(10);
        assert!(!t.is_validated());
        assert_eq!(t.update(11), SeqVerdict::Valid); // MIN_SEQUENTIAL=2
        assert!(t.is_validated());
        assert_eq!(t.update(12), SeqVerdict::Valid);
        assert_eq!(t.received(), 3);
    }

    #[test]
    fn probation_resets_on_gap() {
        let mut t = SeqTracker::new(10);
        assert_eq!(t.update(20), SeqVerdict::Probation); // not sequential
        assert_eq!(t.update(21), SeqVerdict::Valid); // now sequential
        assert!(t.is_validated());
    }

    #[test]
    fn small_dropout_tolerated() {
        let mut t = validated_at(100);
        assert_eq!(t.update(150), SeqVerdict::Valid); // 49 lost packets
        assert_eq!(t.extended_highest(), 150);
    }

    #[test]
    fn duplicate_detected() {
        let mut t = validated_at(100);
        assert_eq!(t.update(100), SeqVerdict::Duplicate);
    }

    #[test]
    fn reorder_tolerated() {
        let mut t = validated_at(100);
        assert_eq!(t.update(98), SeqVerdict::Valid);
        assert_eq!(t.extended_highest(), 100); // max unchanged
    }

    #[test]
    fn wraparound_counts_cycle() {
        let mut t = validated_at(65_534);
        assert_eq!(t.update(65_535), SeqVerdict::Valid);
        assert_eq!(t.update(3), SeqVerdict::Valid); // wraps
        assert_eq!(t.cycles(), 1);
        assert_eq!(t.extended_highest(), (1 << 16) | 3);
    }

    #[test]
    fn attack_jump_flags_big_jump() {
        let mut t = validated_at(100);
        match t.update(10_000) {
            SeqVerdict::BigJump { delta } => assert_eq!(delta, 9_900),
            other => panic!("unexpected {other:?}"),
        }
        // A second unrelated wild value stays suspicious.
        assert!(matches!(t.update(30_000), SeqVerdict::BigJump { .. }));
    }

    #[test]
    fn source_restart_resyncs() {
        let mut t = validated_at(100);
        assert!(matches!(t.update(50_000), SeqVerdict::BigJump { .. }));
        assert_eq!(t.update(50_001), SeqVerdict::Valid); // sequential at new offset
        assert!(t.is_validated());
        assert_eq!(t.extended_highest() & 0xffff, 50_001);
    }

    fn validated_at(seq: u16) -> SeqTracker {
        let mut t = SeqTracker::new(seq.wrapping_sub(1));
        t.update(seq);
        assert!(t.is_validated());
        t
    }
}
