//! Interarrival jitter estimation (RFC 3550 §6.4.1 / §A.8).
//!
//! The paper notes the RTP attack "leads to degradation in QoS (jitter)";
//! this estimator is what both the receiving UA (for its RTCP reports)
//! and the IDS (as a QoS-degradation signal) run.

use serde::{Deserialize, Serialize};

/// Running interarrival-jitter estimator.
///
/// Arrival times and RTP timestamps are both expressed in timestamp
/// units (e.g. 1/8000 s for PCMU); the caller converts wall-clock arrival
/// to units via the clock rate.
///
/// # Examples
///
/// ```
/// use scidive_rtp::jitter::JitterEstimator;
///
/// let mut j = JitterEstimator::new();
/// // Perfectly paced stream: zero jitter.
/// for i in 0..10u32 {
///     j.observe(i * 160, i * 160);
/// }
/// assert_eq!(j.jitter(), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JitterEstimator {
    prev_transit: Option<i64>,
    jitter: f64,
    observations: u64,
}

impl JitterEstimator {
    /// Creates a zeroed estimator.
    pub fn new() -> JitterEstimator {
        JitterEstimator::default()
    }

    /// Feeds one packet: its arrival time and its RTP timestamp, both in
    /// timestamp units. Returns the updated jitter estimate.
    pub fn observe(&mut self, arrival_units: u32, rtp_timestamp: u32) -> f64 {
        let transit = arrival_units as i64 - rtp_timestamp as i64;
        if let Some(prev) = self.prev_transit {
            let d = (transit - prev).abs() as f64;
            self.jitter += (d - self.jitter) / 16.0;
        }
        self.prev_transit = Some(transit);
        self.observations += 1;
        self.jitter
    }

    /// Current jitter estimate in timestamp units.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Jitter in milliseconds given the media clock rate in Hz.
    pub fn jitter_ms(&self, clock_rate: u32) -> f64 {
        if clock_rate == 0 {
            return 0.0;
        }
        self.jitter * 1_000.0 / clock_rate as f64
    }

    /// Packets observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_zero_jitter() {
        let mut j = JitterEstimator::new();
        for i in 0..100u32 {
            j.observe(1000 + i * 160, i * 160);
        }
        assert_eq!(j.jitter(), 0.0);
        assert_eq!(j.observations(), 100);
    }

    #[test]
    fn single_displaced_packet_decays() {
        let mut j = JitterEstimator::new();
        for i in 0..10u32 {
            j.observe(i * 160, i * 160);
        }
        // One packet arrives 80 units (10 ms at 8 kHz) late.
        let spike = j.observe(10 * 160 + 80, 10 * 160);
        assert!(spike > 0.0);
        // Estimate decays as stream settles (subsequent transit constant
        // except for one more change back).
        let mut last = j.observe(11 * 160, 11 * 160);
        for i in 12..100u32 {
            last = j.observe(i * 160, i * 160);
        }
        assert!(last < spike / 4.0, "spike={spike} last={last}");
    }

    #[test]
    fn noisy_stream_has_positive_jitter() {
        let mut j = JitterEstimator::new();
        for i in 0..50u32 {
            let wobble = if i % 2 == 0 { 0 } else { 40 };
            j.observe(i * 160 + wobble, i * 160);
        }
        // Alternating ±40 transit → jitter approaches 40 * (asymptote < 40).
        assert!(j.jitter() > 10.0);
        assert!(j.jitter() <= 40.0);
    }

    #[test]
    fn jitter_ms_conversion() {
        let mut j = JitterEstimator::new();
        j.observe(0, 0);
        j.observe(160 + 16, 160); // 16 units late = 2 ms at 8 kHz
        assert!((j.jitter_ms(8000) - j.jitter() / 8.0).abs() < 1e-9);
        assert_eq!(j.jitter_ms(0), 0.0);
    }

    #[test]
    fn garbage_timestamps_blow_up_jitter() {
        // The paper's RTP attack: random bytes → wild timestamps.
        let mut j = JitterEstimator::new();
        for i in 0..10u32 {
            j.observe(i * 160, i * 160);
        }
        let baseline = j.jitter();
        j.observe(10 * 160, 0x9e3779b9); // garbage timestamp
        assert!(j.jitter() > baseline + 1_000_000.0);
    }
}
