//! RTP packet encoding and decoding (RFC 3550 §5.1).

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fixed RTP header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpHeader {
    /// Protocol version; always 2 on the wire.
    pub version: u8,
    /// Padding flag.
    pub padding: bool,
    /// Extension flag.
    pub extension: bool,
    /// Marker bit (first packet of a talkspurt for audio).
    pub marker: bool,
    /// Payload type (0 = PCMU/G.711 µ-law).
    pub payload_type: u8,
    /// Sequence number, increments by one per packet, wraps at 2^16.
    pub seq: u16,
    /// Media timestamp in clock-rate units (8000 Hz for PCMU).
    pub timestamp: u32,
    /// Synchronisation source identifier.
    pub ssrc: u32,
    /// Contributing sources (from mixers); usually empty.
    pub csrc: Vec<u32>,
}

impl RtpHeader {
    /// Byte length of this header on the wire.
    pub fn wire_len(&self) -> usize {
        12 + 4 * self.csrc.len()
    }

    /// Creates a v2 header with the common defaults.
    pub fn new(payload_type: u8, seq: u16, timestamp: u32, ssrc: u32) -> RtpHeader {
        RtpHeader {
            version: 2,
            padding: false,
            extension: false,
            marker: false,
            payload_type,
            seq,
            timestamp,
            ssrc,
            csrc: Vec::new(),
        }
    }
}

/// A full RTP packet.
///
/// # Examples
///
/// ```
/// use scidive_rtp::packet::{RtpHeader, RtpPacket};
///
/// let pkt = RtpPacket::new(RtpHeader::new(0, 7, 1600, 0xdeadbeef), vec![0u8; 160]);
/// let wire = pkt.encode();
/// let back = RtpPacket::decode(&wire)?;
/// assert_eq!(back, pkt);
/// # Ok::<(), scidive_rtp::packet::RtpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpPacket {
    /// The header.
    pub header: RtpHeader,
    /// The media payload.
    pub payload: Bytes,
}

impl RtpPacket {
    /// Creates a packet.
    pub fn new(header: RtpHeader, payload: impl Into<Bytes>) -> RtpPacket {
        RtpPacket {
            header,
            payload: payload.into(),
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let h = &self.header;
        let mut buf = BytesMut::with_capacity(h.wire_len() + self.payload.len());
        let b0 = (h.version << 6)
            | ((h.padding as u8) << 5)
            | ((h.extension as u8) << 4)
            | (h.csrc.len() as u8 & 0x0f);
        let b1 = ((h.marker as u8) << 7) | (h.payload_type & 0x7f);
        buf.put_u8(b0);
        buf.put_u8(b1);
        buf.put_u16(h.seq);
        buf.put_u32(h.timestamp);
        buf.put_u32(h.ssrc);
        for c in &h.csrc {
            buf.put_u32(*c);
        }
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RtpError::Truncated`] if shorter than the header
    /// demands, or [`RtpError::BadVersion`] if the version field is not 2
    /// — which is how the Distiller rejects the paper's garbage-RTP
    /// packets that fail even version parsing.
    pub fn decode(bytes: &[u8]) -> Result<RtpPacket, RtpError> {
        let (header, need) = Self::parse_header(bytes)?;
        Ok(RtpPacket {
            header,
            payload: Bytes::copy_from_slice(&bytes[need..]),
        })
    }

    /// Like [`RtpPacket::decode`], but the payload is a zero-copy slice
    /// of the shared buffer. This is the IDS hot path: media dominates a
    /// call's frame count, and the detector only inspects the header.
    ///
    /// # Errors
    ///
    /// Same as [`RtpPacket::decode`].
    pub fn decode_shared(bytes: &Bytes) -> Result<RtpPacket, RtpError> {
        let (header, need) = Self::parse_header(bytes)?;
        Ok(RtpPacket {
            header,
            payload: bytes.slice(need..),
        })
    }

    /// Header parsing shared by both decode paths; returns the header
    /// and the offset where the payload begins.
    fn parse_header(bytes: &[u8]) -> Result<(RtpHeader, usize), RtpError> {
        if bytes.len() < 12 {
            return Err(RtpError::Truncated {
                need: 12,
                have: bytes.len(),
            });
        }
        let version = bytes[0] >> 6;
        if version != 2 {
            return Err(RtpError::BadVersion(version));
        }
        let cc = (bytes[0] & 0x0f) as usize;
        let need = 12 + 4 * cc;
        if bytes.len() < need {
            return Err(RtpError::Truncated {
                need,
                have: bytes.len(),
            });
        }
        let csrc = (0..cc)
            .map(|i| {
                u32::from_be_bytes([
                    bytes[12 + 4 * i],
                    bytes[13 + 4 * i],
                    bytes[14 + 4 * i],
                    bytes[15 + 4 * i],
                ])
            })
            .collect();
        let header = RtpHeader {
            version,
            padding: bytes[0] & 0x20 != 0,
            extension: bytes[0] & 0x10 != 0,
            marker: bytes[1] & 0x80 != 0,
            payload_type: bytes[1] & 0x7f,
            seq: u16::from_be_bytes([bytes[2], bytes[3]]),
            timestamp: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ssrc: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            csrc,
        };
        Ok((header, need))
    }
}

impl fmt::Display for RtpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTP pt={} seq={} ts={} ssrc={:#010x} len={}",
            self.header.payload_type,
            self.header.seq,
            self.header.timestamp,
            self.header.ssrc,
            self.payload.len()
        )
    }
}

/// Errors decoding RTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtpError {
    /// Too few bytes for the header (incl. CSRC list).
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Version field is not 2.
    BadVersion(u8),
}

impl fmt::Display for RtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtpError::Truncated { need, have } => {
                write!(f, "rtp packet truncated: need {need} bytes, have {have}")
            }
            RtpError::BadVersion(v) => write!(f, "rtp version is {v}, expected 2"),
        }
    }
}

impl std::error::Error for RtpError {}

/// Quick sniff used by the Distiller: ≥12 bytes and version bits == 2.
pub fn looks_like_rtp(payload: &[u8]) -> bool {
    payload.len() >= 12 && payload[0] >> 6 == 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RtpPacket {
        RtpPacket::new(
            RtpHeader::new(0, 1234, 160_000, 0xcafebabe),
            (0u8..160).collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn roundtrip_plain() {
        let pkt = sample();
        assert_eq!(RtpPacket::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn roundtrip_flags_and_csrc() {
        let mut pkt = sample();
        pkt.header.marker = true;
        pkt.header.padding = true;
        pkt.header.extension = true;
        pkt.header.payload_type = 96;
        pkt.header.csrc = vec![1, 2, 3];
        let back = RtpPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(back, pkt);
        assert_eq!(back.header.wire_len(), 24);
    }

    #[test]
    fn truncated_rejected() {
        let pkt = sample();
        let wire = pkt.encode();
        assert_eq!(
            RtpPacket::decode(&wire[..8]),
            Err(RtpError::Truncated { need: 12, have: 8 })
        );
        // CSRC promises more than present
        let mut short = wire[..12].to_vec();
        short[0] |= 0x03; // cc = 3 → need 24
        assert_eq!(
            RtpPacket::decode(&short),
            Err(RtpError::Truncated { need: 24, have: 12 })
        );
    }

    #[test]
    fn bad_version_rejected() {
        let pkt = sample();
        let mut wire = pkt.encode().to_vec();
        wire[0] = 0x40; // version 1
        assert_eq!(RtpPacket::decode(&wire), Err(RtpError::BadVersion(1)));
    }

    #[test]
    fn sniffer() {
        assert!(looks_like_rtp(&sample().encode()));
        assert!(!looks_like_rtp(b"INVITE sip:b@h SIP/2.0"));
        assert!(!looks_like_rtp(&[0x80, 0x00])); // too short
    }

    #[test]
    fn empty_payload_ok() {
        let pkt = RtpPacket::new(RtpHeader::new(0, 1, 0, 7), Bytes::new());
        let back = RtpPacket::decode(&pkt.encode()).unwrap();
        assert!(back.payload.is_empty());
    }

    #[test]
    fn seq_wraps_in_header() {
        let pkt = RtpPacket::new(RtpHeader::new(0, u16::MAX, 0, 7), Bytes::new());
        assert_eq!(RtpPacket::decode(&pkt.encode()).unwrap().header.seq, 65535);
    }

    #[test]
    fn display_summary() {
        let s = sample().to_string();
        assert!(s.contains("seq=1234"));
        assert!(s.contains("0xcafebabe"));
    }
}
