//! Minimal RTCP (RFC 3550 §6): SR, RR and BYE packets.
//!
//! RTCP rides on the RTP port + 1. The paper lists RTCP among the
//! protocols a cross-protocol rule may chain over ("a pattern in a SIP
//! packet followed by one in a succeeding RTP packet followed by one in
//! an RTCP packet"), so the Distiller must classify and decode it.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// RTCP packet type: sender report.
pub const PT_SR: u8 = 200;
/// RTCP packet type: receiver report.
pub const PT_RR: u8 = 201;
/// RTCP packet type: goodbye.
pub const PT_BYE: u8 = 203;

/// One reception report block (inside SR/RR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportBlock {
    /// SSRC the report is about.
    pub ssrc: u32,
    /// Fraction of packets lost since the last report (fixed-point /256).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in timestamp units.
    pub jitter: u32,
}

/// A decoded RTCP packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RtcpPacket {
    /// Sender report.
    SenderReport {
        /// Reporting source.
        ssrc: u32,
        /// RTP timestamp corresponding to this report.
        rtp_timestamp: u32,
        /// Packets sent so far.
        packet_count: u32,
        /// Payload octets sent so far.
        octet_count: u32,
        /// Reception reports about remote sources.
        reports: Vec<ReportBlock>,
    },
    /// Receiver report.
    ReceiverReport {
        /// Reporting source.
        ssrc: u32,
        /// Reception reports about remote sources.
        reports: Vec<ReportBlock>,
    },
    /// Goodbye: the source is leaving the session.
    Bye {
        /// Sources saying goodbye.
        ssrcs: Vec<u32>,
    },
}

impl RtcpPacket {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            RtcpPacket::SenderReport {
                ssrc,
                rtp_timestamp,
                packet_count,
                octet_count,
                reports,
            } => {
                put_header(&mut buf, reports.len() as u8, PT_SR, 6 + 6 * reports.len());
                buf.put_u32(*ssrc);
                buf.put_u64(0); // NTP timestamp unused in the simulation
                buf.put_u32(*rtp_timestamp);
                buf.put_u32(*packet_count);
                buf.put_u32(*octet_count);
                for r in reports {
                    put_report(&mut buf, r);
                }
            }
            RtcpPacket::ReceiverReport { ssrc, reports } => {
                put_header(&mut buf, reports.len() as u8, PT_RR, 1 + 6 * reports.len());
                buf.put_u32(*ssrc);
                for r in reports {
                    put_report(&mut buf, r);
                }
            }
            RtcpPacket::Bye { ssrcs } => {
                put_header(&mut buf, ssrcs.len() as u8, PT_BYE, ssrcs.len());
                for s in ssrcs {
                    buf.put_u32(*s);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RtcpError`] on truncation, bad version, or an
    /// unsupported packet type.
    pub fn decode(bytes: &[u8]) -> Result<RtcpPacket, RtcpError> {
        if bytes.len() < 4 {
            return Err(RtcpError::Truncated);
        }
        if bytes[0] >> 6 != 2 {
            return Err(RtcpError::BadVersion(bytes[0] >> 6));
        }
        let count = (bytes[0] & 0x1f) as usize;
        let pt = bytes[1];
        let words = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let total = 4 * (words + 1);
        if bytes.len() < total {
            return Err(RtcpError::Truncated);
        }
        let body = &bytes[4..total];
        match pt {
            PT_SR => {
                if body.len() < 24 + 24 * count {
                    return Err(RtcpError::Truncated);
                }
                let reports = (0..count)
                    .map(|i| read_report(&body[24 + 24 * i..]))
                    .collect();
                Ok(RtcpPacket::SenderReport {
                    ssrc: read_u32(body, 0),
                    rtp_timestamp: read_u32(body, 12),
                    packet_count: read_u32(body, 16),
                    octet_count: read_u32(body, 20),
                    reports,
                })
            }
            PT_RR => {
                if body.len() < 4 + 24 * count {
                    return Err(RtcpError::Truncated);
                }
                let reports = (0..count)
                    .map(|i| read_report(&body[4 + 24 * i..]))
                    .collect();
                Ok(RtcpPacket::ReceiverReport {
                    ssrc: read_u32(body, 0),
                    reports,
                })
            }
            PT_BYE => {
                if body.len() < 4 * count {
                    return Err(RtcpError::Truncated);
                }
                Ok(RtcpPacket::Bye {
                    ssrcs: (0..count).map(|i| read_u32(body, 4 * i)).collect(),
                })
            }
            other => Err(RtcpError::UnsupportedType(other)),
        }
    }
}

/// Quick sniff: version 2 and a known RTCP packet type.
pub fn looks_like_rtcp(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[0] >> 6 == 2 && matches!(payload[1], PT_SR | PT_RR | PT_BYE)
}

fn put_header(buf: &mut BytesMut, count: u8, pt: u8, body_words: usize) {
    buf.put_u8(0x80 | (count & 0x1f));
    buf.put_u8(pt);
    buf.put_u16(body_words as u16);
}

fn put_report(buf: &mut BytesMut, r: &ReportBlock) {
    buf.put_u32(r.ssrc);
    buf.put_u8(r.fraction_lost);
    buf.put_u8(((r.cumulative_lost >> 16) & 0xff) as u8);
    buf.put_u8(((r.cumulative_lost >> 8) & 0xff) as u8);
    buf.put_u8((r.cumulative_lost & 0xff) as u8);
    buf.put_u32(r.highest_seq);
    buf.put_u32(r.jitter);
    buf.put_u32(0); // LSR
    buf.put_u32(0); // DLSR
}

fn read_report(b: &[u8]) -> ReportBlock {
    ReportBlock {
        ssrc: read_u32(b, 0),
        fraction_lost: b[4],
        cumulative_lost: ((b[5] as u32) << 16) | ((b[6] as u32) << 8) | b[7] as u32,
        highest_seq: read_u32(b, 8),
        jitter: read_u32(b, 12),
    }
}

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Errors decoding RTCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtcpError {
    /// Not enough bytes for the declared structure.
    Truncated,
    /// Version field is not 2.
    BadVersion(u8),
    /// Packet type we do not model.
    UnsupportedType(u8),
}

impl fmt::Display for RtcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtcpError::Truncated => write!(f, "rtcp packet truncated"),
            RtcpError::BadVersion(v) => write!(f, "rtcp version is {v}, expected 2"),
            RtcpError::UnsupportedType(t) => write!(f, "unsupported rtcp packet type {t}"),
        }
    }
}

impl std::error::Error for RtcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: 12,
            cumulative_lost: 0x01_0203,
            highest_seq: 99_999,
            jitter: 42,
        }
    }

    #[test]
    fn sr_roundtrip() {
        let sr = RtcpPacket::SenderReport {
            ssrc: 1,
            rtp_timestamp: 1600,
            packet_count: 10,
            octet_count: 1600,
            reports: vec![block(2)],
        };
        assert_eq!(RtcpPacket::decode(&sr.encode()).unwrap(), sr);
    }

    #[test]
    fn rr_roundtrip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 5,
            reports: vec![block(6), block(7)],
        };
        assert_eq!(RtcpPacket::decode(&rr.encode()).unwrap(), rr);
    }

    #[test]
    fn rr_empty_roundtrip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 5,
            reports: vec![],
        };
        assert_eq!(RtcpPacket::decode(&rr.encode()).unwrap(), rr);
    }

    #[test]
    fn bye_roundtrip() {
        let bye = RtcpPacket::Bye { ssrcs: vec![1, 2] };
        assert_eq!(RtcpPacket::decode(&bye.encode()).unwrap(), bye);
    }

    #[test]
    fn errors() {
        assert_eq!(RtcpPacket::decode(&[0x80]), Err(RtcpError::Truncated));
        assert_eq!(
            RtcpPacket::decode(&[0x40, 200, 0, 0]),
            Err(RtcpError::BadVersion(1))
        );
        assert_eq!(
            RtcpPacket::decode(&[0x80, 204, 0, 0]),
            Err(RtcpError::UnsupportedType(204))
        );
        // Declared length beyond the buffer.
        assert_eq!(
            RtcpPacket::decode(&[0x80, 200, 0, 10, 0, 0, 0, 0]),
            Err(RtcpError::Truncated)
        );
    }

    #[test]
    fn sniffer() {
        let bye = RtcpPacket::Bye { ssrcs: vec![9] };
        assert!(looks_like_rtcp(&bye.encode()));
        // RTP packet: pt-with-marker byte is not 200/201/203.
        let rtp = crate::packet::RtpPacket::new(
            crate::packet::RtpHeader::new(0, 1, 0, 9),
            vec![0u8; 160],
        );
        assert!(!looks_like_rtcp(&rtp.encode()));
    }

    #[test]
    fn cumulative_lost_24bit_roundtrip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 5,
            reports: vec![ReportBlock {
                cumulative_lost: 0xff_ffff,
                ..block(1)
            }],
        };
        match RtcpPacket::decode(&rr.encode()).unwrap() {
            RtcpPacket::ReceiverReport { reports, .. } => {
                assert_eq!(reports[0].cumulative_lost, 0xff_ffff)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
