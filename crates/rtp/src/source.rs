//! A paced media source: G.711 µ-law audio framed per RFC 3551.
//!
//! Softphones in the testbed send one 160-byte PCMU frame every 20 ms
//! (8 kHz × 0.02 s). The 20 ms period is the constant at the heart of the
//! paper's §4.3 delay model (`D = 20 + N_rtp − G_sip + N_sip`).

use crate::packet::{RtpHeader, RtpPacket};
use serde::{Deserialize, Serialize};

/// PCMU payload type number (RFC 3551).
pub const PT_PCMU: u8 = 0;
/// PCMU clock rate in Hz.
pub const PCMU_CLOCK_HZ: u32 = 8_000;
/// Frame period in milliseconds.
pub const FRAME_PERIOD_MS: u64 = 20;
/// Samples (= payload bytes) per 20 ms PCMU frame.
pub const SAMPLES_PER_FRAME: u32 = 160;

/// Generates a paced stream of RTP packets for one talkspurt.
///
/// # Examples
///
/// ```
/// use scidive_rtp::source::MediaSource;
///
/// let mut src = MediaSource::new(0x1234_5678, 100, 0);
/// let first = src.next_packet();
/// let second = src.next_packet();
/// assert!(first.header.marker);           // start of talkspurt
/// assert_eq!(second.header.seq, 101);
/// assert_eq!(second.header.timestamp, 160);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaSource {
    ssrc: u32,
    next_seq: u16,
    next_timestamp: u32,
    sent: u64,
}

impl MediaSource {
    /// Creates a source with the given SSRC and initial sequence number /
    /// timestamp (real stacks randomise these; the simulation's scenario
    /// layer passes values drawn from its seeded RNG).
    pub fn new(ssrc: u32, first_seq: u16, first_timestamp: u32) -> MediaSource {
        MediaSource {
            ssrc,
            next_seq: first_seq,
            next_timestamp: first_timestamp,
            sent: 0,
        }
    }

    /// The source's SSRC.
    pub fn ssrc(&self) -> u32 {
        self.ssrc
    }

    /// Packets generated so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Produces the next 20 ms frame.
    pub fn next_packet(&mut self) -> RtpPacket {
        let mut header = RtpHeader::new(PT_PCMU, self.next_seq, self.next_timestamp, self.ssrc);
        header.marker = self.sent == 0;
        // Deterministic µ-law-ish payload: a tone derived from position.
        let base = self.next_timestamp;
        let payload: Vec<u8> = (0..SAMPLES_PER_FRAME)
            .map(|i| (((base.wrapping_add(i)) * 31) % 251) as u8)
            .collect();
        self.next_seq = self.next_seq.wrapping_add(1);
        self.next_timestamp = self.next_timestamp.wrapping_add(SAMPLES_PER_FRAME);
        self.sent += 1;
        RtpPacket::new(header, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_fields_advance() {
        let mut src = MediaSource::new(7, 0, 0);
        let p0 = src.next_packet();
        let p1 = src.next_packet();
        let p2 = src.next_packet();
        assert_eq!(p0.header.seq, 0);
        assert_eq!(p1.header.seq, 1);
        assert_eq!(p2.header.seq, 2);
        assert_eq!(p1.header.timestamp - p0.header.timestamp, SAMPLES_PER_FRAME);
        assert_eq!(p2.header.timestamp - p1.header.timestamp, SAMPLES_PER_FRAME);
        assert_eq!(src.sent(), 3);
    }

    #[test]
    fn marker_only_on_first() {
        let mut src = MediaSource::new(7, 10, 0);
        assert!(src.next_packet().header.marker);
        assert!(!src.next_packet().header.marker);
    }

    #[test]
    fn payload_is_full_frame() {
        let mut src = MediaSource::new(7, 0, 0);
        assert_eq!(src.next_packet().payload.len(), 160);
    }

    #[test]
    fn seq_wraps() {
        let mut src = MediaSource::new(7, u16::MAX, 0);
        assert_eq!(src.next_packet().header.seq, u16::MAX);
        assert_eq!(src.next_packet().header.seq, 0);
    }

    #[test]
    fn ssrc_constant() {
        let mut src = MediaSource::new(0xabcd, 0, 0);
        assert_eq!(src.next_packet().header.ssrc, 0xabcd);
        assert_eq!(src.next_packet().header.ssrc, 0xabcd);
        assert_eq!(src.ssrc(), 0xabcd);
    }

    #[test]
    fn deterministic_payloads() {
        let mut a = MediaSource::new(1, 0, 0);
        let mut b = MediaSource::new(1, 0, 0);
        assert_eq!(a.next_packet(), b.next_packet());
    }
}
