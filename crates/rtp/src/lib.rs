//! # scidive-rtp — RTP/RTCP media transport for the SCIDIVE reproduction
//!
//! Implements the RFC 3550/3551 subset the paper's testbed exercises:
//! RTP packet encode/decode, sequence-number validation (appendix A.1),
//! interarrival jitter estimation, a receiver jitter buffer with an
//! explicit corruption model (the target of the paper's §4.2.4 RTP
//! attack), a paced G.711 media source, and minimal RTCP (SR/RR/BYE).
//!
//! ## Example: a receiver processing a paced stream
//!
//! ```
//! use scidive_rtp::prelude::*;
//!
//! let mut src = MediaSource::new(0xabc, 0, 0);
//! let mut jb = JitterBuffer::new(32, 2);
//! for _ in 0..5 {
//!     let pkt = src.next_packet();
//!     let wire = pkt.encode();
//!     jb.insert(RtpPacket::decode(&wire)?);
//! }
//! assert_eq!(jb.stats().queued, 5);
//! assert!(jb.pop_ready().is_some());
//! # Ok::<(), scidive_rtp::packet::RtpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod jitter;
pub mod packet;
pub mod rtcp;
pub mod seq;
pub mod source;

/// Convenient glob import of the common RTP types.
pub mod prelude {
    pub use crate::buffer::{BufferStats, InsertOutcome, JitterBuffer};
    pub use crate::jitter::JitterEstimator;
    pub use crate::packet::{looks_like_rtp, RtpError, RtpHeader, RtpPacket};
    pub use crate::rtcp::{looks_like_rtcp, ReportBlock, RtcpError, RtcpPacket};
    pub use crate::seq::{seq_delta, SeqTracker, SeqVerdict};
    pub use crate::source::{
        MediaSource, FRAME_PERIOD_MS, PCMU_CLOCK_HZ, PT_PCMU, SAMPLES_PER_FRAME,
    };
}
