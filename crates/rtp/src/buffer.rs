//! A receiver-side jitter buffer with an explicit corruption model.
//!
//! The paper's RTP attack (§4.2.4) works because "garbage packets will
//! corrupt the jitter buffer in the IP Phone client ... this attack could
//! result in intermittent voice conversation or in crashing the client"
//! (X-Lite crashed; Windows Messenger glitched). This buffer makes that
//! observable: undecodable or wildly out-of-sequence packets count as
//! *disruptions*, and the owning user agent decides — by its fragility —
//! whether enough disruptions mean glitching or a crash.

use crate::packet::RtpPacket;
use crate::seq::{SeqTracker, SeqVerdict};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What happened to an inserted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertOutcome {
    /// Queued for playout.
    Queued,
    /// Dropped: duplicate of a queued/played packet.
    Duplicate,
    /// Dropped: arrived after its playout point.
    Late,
    /// Counted as a disruption: sequence number far outside the window.
    Disruptive,
    /// Counted as a disruption: buffer overflowed and was reset.
    Overflow,
}

/// Statistics kept by the buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Packets queued successfully.
    pub queued: u64,
    /// Packets played out.
    pub played: u64,
    /// Playout attempts that found no packet (gap → audible glitch).
    pub underruns: u64,
    /// Duplicates dropped.
    pub duplicates: u64,
    /// Late packets dropped.
    pub late: u64,
    /// Disruptions: wild sequence numbers, undecodable payloads,
    /// overflow resets — the corruption events of the paper's attack.
    pub disruptions: u64,
}

/// A sequence-ordered jitter buffer.
///
/// # Examples
///
/// ```
/// use scidive_rtp::buffer::JitterBuffer;
/// use scidive_rtp::packet::{RtpHeader, RtpPacket};
///
/// let mut jb = JitterBuffer::new(32, 2);
/// for seq in 0..4u16 {
///     jb.insert(RtpPacket::new(RtpHeader::new(0, seq, seq as u32 * 160, 1), vec![0; 160]));
/// }
/// assert!(jb.pop_ready().is_some()); // depth reached, playout starts
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JitterBuffer {
    capacity: usize,
    /// Packets to accumulate before playout begins.
    prefill: usize,
    queue: BTreeMap<u64, RtpPacket>,
    tracker: Option<SeqTracker>,
    next_playout: Option<u64>,
    stats: BufferStats,
    started: bool,
}

impl JitterBuffer {
    /// Creates a buffer holding at most `capacity` packets, starting
    /// playout after `prefill` packets are queued.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `prefill > capacity`.
    pub fn new(capacity: usize, prefill: usize) -> JitterBuffer {
        assert!(capacity > 0, "capacity must be positive");
        assert!(prefill <= capacity, "prefill cannot exceed capacity");
        JitterBuffer {
            capacity,
            prefill,
            queue: BTreeMap::new(),
            tracker: None,
            next_playout: None,
            stats: BufferStats::default(),
            started: false,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Packets currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Records a payload that failed to decode as RTP at all (the
    /// garbage-bytes case): pure disruption, nothing queued.
    pub fn record_undecodable(&mut self) {
        self.stats.disruptions += 1;
    }

    /// Offers a decoded packet to the buffer.
    pub fn insert(&mut self, pkt: RtpPacket) -> InsertOutcome {
        let tracker = match &mut self.tracker {
            Some(t) => t,
            None => {
                self.tracker = Some(SeqTracker::new(pkt.header.seq));
                let ext = pkt.header.seq as u64;
                self.queue.insert(ext, pkt);
                self.stats.queued += 1;
                return InsertOutcome::Queued;
            }
        };
        match tracker.update(pkt.header.seq) {
            SeqVerdict::Duplicate => {
                self.stats.duplicates += 1;
                InsertOutcome::Duplicate
            }
            SeqVerdict::BigJump { .. } => {
                self.stats.disruptions += 1;
                InsertOutcome::Disruptive
            }
            SeqVerdict::Probation | SeqVerdict::Valid => {
                let ext = extended(tracker, pkt.header.seq);
                if let Some(next) = self.next_playout {
                    if ext < next {
                        self.stats.late += 1;
                        return InsertOutcome::Late;
                    }
                }
                if self.queue.contains_key(&ext) {
                    self.stats.duplicates += 1;
                    return InsertOutcome::Duplicate;
                }
                if self.queue.len() >= self.capacity {
                    // Overflow: drop everything, count the corruption.
                    self.queue.clear();
                    self.started = false;
                    self.next_playout = None;
                    self.stats.disruptions += 1;
                    self.stats.queued += 1;
                    self.queue.insert(ext, pkt);
                    return InsertOutcome::Overflow;
                }
                self.queue.insert(ext, pkt);
                self.stats.queued += 1;
                InsertOutcome::Queued
            }
        }
    }

    /// Pulls the next packet due for playout, if playout has started
    /// (prefill reached). A missing expected packet counts an underrun
    /// and advances the playout point.
    pub fn pop_ready(&mut self) -> Option<RtpPacket> {
        if !self.started {
            if self.queue.len() < self.prefill.max(1) {
                return None;
            }
            self.started = true;
            self.next_playout = self.queue.keys().next().copied();
        }
        let next = self.next_playout?;
        match self.queue.remove(&next) {
            Some(pkt) => {
                self.next_playout = Some(next + 1);
                self.stats.played += 1;
                Some(pkt)
            }
            None => {
                // Gap at the playout point.
                if let Some(&first) = self.queue.keys().next() {
                    self.stats.underruns += 1;
                    self.next_playout = Some(first);
                    self.pop_ready()
                } else {
                    self.stats.underruns += 1;
                    None
                }
            }
        }
    }
}

fn extended(tracker: &SeqTracker, seq: u16) -> u64 {
    // Reconstruct the extended sequence for a possibly-reordered packet:
    // take the tracker's cycle count, adjusting when the packet is from
    // the previous cycle (seq near the top while max is near the bottom).
    let cycles = tracker.cycles() as u64;
    let max = (tracker.extended_highest() & 0xffff) as u16;
    let delta = crate::seq::seq_delta(max, seq);
    let candidate_cycle = if delta > 0 && seq < max {
        cycles + 1 // this packet caused/will cause a wrap (already counted)
    } else if delta < 0 && seq > max {
        cycles.saturating_sub(1)
    } else {
        cycles
    };
    candidate_cycle << 16 | seq as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RtpHeader;

    fn pkt(seq: u16) -> RtpPacket {
        RtpPacket::new(RtpHeader::new(0, seq, seq as u32 * 160, 42), vec![seq as u8; 4])
    }

    #[test]
    fn in_order_playout() {
        let mut jb = JitterBuffer::new(16, 2);
        assert_eq!(jb.insert(pkt(5)), InsertOutcome::Queued);
        assert!(jb.pop_ready().is_none()); // prefill not reached
        assert_eq!(jb.insert(pkt(6)), InsertOutcome::Queued);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 5);
        assert_eq!(jb.insert(pkt(7)), InsertOutcome::Queued);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 6);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 7);
        assert!(jb.pop_ready().is_none());
        let s = jb.stats();
        assert_eq!(s.queued, 3);
        assert_eq!(s.played, 3);
    }

    #[test]
    fn reordered_packets_play_in_order() {
        let mut jb = JitterBuffer::new(16, 3);
        jb.insert(pkt(10));
        jb.insert(pkt(12));
        jb.insert(pkt(11));
        assert_eq!(jb.pop_ready().unwrap().header.seq, 10);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 11);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 12);
    }

    #[test]
    fn gap_counts_underrun_and_skips() {
        let mut jb = JitterBuffer::new(16, 2);
        jb.insert(pkt(1));
        jb.insert(pkt(2));
        assert_eq!(jb.pop_ready().unwrap().header.seq, 1);
        // 3 never arrives; 4 does.
        jb.insert(pkt(4));
        assert_eq!(jb.pop_ready().unwrap().header.seq, 2);
        let p = jb.pop_ready().unwrap();
        assert_eq!(p.header.seq, 4);
        assert_eq!(jb.stats().underruns, 1);
    }

    #[test]
    fn duplicates_dropped() {
        let mut jb = JitterBuffer::new(16, 1);
        jb.insert(pkt(1));
        jb.insert(pkt(2));
        assert_eq!(jb.insert(pkt(2)), InsertOutcome::Duplicate);
        assert_eq!(jb.stats().duplicates, 1);
    }

    #[test]
    fn late_packet_dropped() {
        let mut jb = JitterBuffer::new(16, 1);
        jb.insert(pkt(10));
        jb.insert(pkt(11));
        assert_eq!(jb.pop_ready().unwrap().header.seq, 10);
        assert_eq!(jb.pop_ready().unwrap().header.seq, 11);
        assert_eq!(jb.insert(pkt(9)), InsertOutcome::Late);
        assert_eq!(jb.stats().late, 1);
    }

    #[test]
    fn attack_seq_jump_is_disruption_not_queued() {
        let mut jb = JitterBuffer::new(16, 2);
        jb.insert(pkt(100));
        jb.insert(pkt(101));
        // Attacker injects seq 40000.
        assert_eq!(jb.insert(pkt(40_000)), InsertOutcome::Disruptive);
        assert_eq!(jb.stats().disruptions, 1);
        // Legit stream continues unharmed.
        assert_eq!(jb.insert(pkt(102)), InsertOutcome::Queued);
    }

    #[test]
    fn undecodable_counts_disruption() {
        let mut jb = JitterBuffer::new(16, 2);
        jb.record_undecodable();
        jb.record_undecodable();
        assert_eq!(jb.stats().disruptions, 2);
    }

    #[test]
    fn overflow_resets_and_counts() {
        let mut jb = JitterBuffer::new(4, 1);
        // Insert 1,3,5,7 — pop_ready not called, so queue fills.
        for seq in [1u16, 3, 5, 7] {
            jb.insert(pkt(seq));
        }
        assert_eq!(jb.depth(), 4);
        assert_eq!(jb.insert(pkt(9)), InsertOutcome::Overflow);
        assert_eq!(jb.depth(), 1);
        assert_eq!(jb.stats().disruptions, 1);
    }

    #[test]
    fn wraparound_playout_order() {
        let mut jb = JitterBuffer::new(16, 2);
        jb.insert(pkt(65_534));
        jb.insert(pkt(65_535));
        jb.insert(pkt(0));
        jb.insert(pkt(1));
        let seqs: Vec<u16> = std::iter::from_fn(|| jb.pop_ready().map(|p| p.header.seq)).collect();
        assert_eq!(seqs, vec![65_534, 65_535, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        JitterBuffer::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "prefill cannot exceed capacity")]
    fn prefill_over_capacity_panics() {
        JitterBuffer::new(2, 3);
    }
}
