//! Property-based tests for RTP: wire roundtrips, sequence arithmetic,
//! tracker robustness, jitter-buffer conservation laws.

use proptest::prelude::*;
use scidive_rtp::buffer::JitterBuffer;
use scidive_rtp::jitter::JitterEstimator;
use scidive_rtp::packet::{RtpHeader, RtpPacket};
use scidive_rtp::rtcp::{ReportBlock, RtcpPacket};
use scidive_rtp::seq::{seq_delta, SeqTracker};

fn header() -> impl Strategy<Value = RtpHeader> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..128,
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(|(padding, extension, marker, pt, seq, ts, ssrc, csrc)| {
            let mut h = RtpHeader::new(pt, seq, ts, ssrc);
            h.padding = padding;
            h.extension = extension;
            h.marker = marker;
            h.csrc = csrc;
            h
        })
}

proptest! {
    #[test]
    fn rtp_wire_roundtrip(h in header(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let pkt = RtpPacket::new(h, payload);
        let back = RtpPacket::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn rtp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RtpPacket::decode(&bytes);
    }

    #[test]
    fn rtcp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RtcpPacket::decode(&bytes);
    }

    #[test]
    fn rtcp_rr_roundtrip(
        ssrc in any::<u32>(),
        blocks in proptest::collection::vec(
            (any::<u32>(), any::<u8>(), 0u32..0x100_0000, any::<u32>(), any::<u32>()),
            0..4,
        ),
    ) {
        let rr = RtcpPacket::ReceiverReport {
            ssrc,
            reports: blocks
                .into_iter()
                .map(|(s, fl, cl, hs, j)| ReportBlock {
                    ssrc: s,
                    fraction_lost: fl,
                    cumulative_lost: cl,
                    highest_seq: hs,
                    jitter: j,
                })
                .collect(),
        };
        prop_assert_eq!(RtcpPacket::decode(&rr.encode()).unwrap(), rr);
    }

    // ------------------------------------------------------------------
    // Sequence arithmetic
    // ------------------------------------------------------------------

    #[test]
    fn seq_delta_antisymmetric(a in any::<u16>(), b in any::<u16>()) {
        let d = seq_delta(a, b);
        prop_assert!((-32768..=32767).contains(&d));
        if d != -32768 {
            prop_assert_eq!(seq_delta(b, a), -d);
        }
        prop_assert_eq!(a.wrapping_add(d as u16), b);
    }

    #[test]
    fn seq_delta_of_increment_is_positive(a in any::<u16>(), step in 1u16..0x7fff) {
        prop_assert_eq!(seq_delta(a, a.wrapping_add(step)), step as i32);
    }

    #[test]
    fn tracker_never_panics_and_counts_sanely(
        first in any::<u16>(),
        seqs in proptest::collection::vec(any::<u16>(), 0..200),
    ) {
        let mut t = SeqTracker::new(first);
        for s in &seqs {
            t.update(*s);
        }
        // Can never claim more receptions than packets offered (+1 for
        // the constructor's first packet).
        prop_assert!(t.received() <= seqs.len() as u64 + 1);
    }

    #[test]
    fn tracker_accepts_perfect_stream(first in any::<u16>(), n in 1u16..500) {
        let mut t = SeqTracker::new(first);
        for i in 1..=n {
            t.update(first.wrapping_add(i));
        }
        // Everything after probation is received; probation costs 0
        // packets here because the stream is perfectly sequential.
        prop_assert_eq!(t.received(), u64::from(n) + 1);
        prop_assert!(t.is_validated());
    }

    // ------------------------------------------------------------------
    // Jitter
    // ------------------------------------------------------------------

    #[test]
    fn jitter_is_nonnegative_and_finite(
        obs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..100),
    ) {
        let mut j = JitterEstimator::new();
        for (arrival, ts) in obs {
            let v = j.observe(arrival, ts);
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    // ------------------------------------------------------------------
    // Jitter buffer conservation
    // ------------------------------------------------------------------

    #[test]
    fn buffer_conserves_packets(
        seqs in proptest::collection::vec(any::<u16>(), 1..200),
        capacity in 1usize..64,
        drain in any::<bool>(),
    ) {
        let mut jb = JitterBuffer::new(capacity, 1.min(capacity));
        let mut popped = 0u64;
        for s in &seqs {
            jb.insert(RtpPacket::new(RtpHeader::new(0, *s, 0, 1), vec![0u8; 4]));
            if drain {
                while jb.pop_ready().is_some() {
                    popped += 1;
                }
            }
        }
        while jb.pop_ready().is_some() {
            popped += 1;
        }
        let stats = jb.stats();
        // Conservation: everything queued was either played or is gone
        // via an overflow reset (overflows clear the queue).
        prop_assert_eq!(stats.played, popped);
        prop_assert!(stats.played <= stats.queued);
        prop_assert!(stats.queued <= seqs.len() as u64);
    }

    #[test]
    fn buffer_plays_monotonically_increasing_extended_seq(
        start in any::<u16>(),
        perm in proptest::collection::vec(0usize..20, 0..20),
    ) {
        // Insert a window of sequential packets in a scrambled order.
        let mut order: Vec<u16> = (0..20u16).map(|i| start.wrapping_add(i)).collect();
        for (i, &swap) in perm.iter().enumerate() {
            order.swap(i % 20, swap % 20);
        }
        let mut jb = JitterBuffer::new(64, 20);
        for s in order {
            jb.insert(RtpPacket::new(RtpHeader::new(0, s, 0, 1), vec![0u8; 4]));
        }
        let mut last: Option<u16> = None;
        while let Some(pkt) = jb.pop_ready() {
            if let Some(prev) = last {
                prop_assert!(
                    seq_delta(prev, pkt.header.seq) > 0,
                    "played {prev} then {}",
                    pkt.header.seq
                );
            }
            last = Some(pkt.header.seq);
        }
    }
}
