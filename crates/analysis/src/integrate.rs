//! Adaptive Simpson quadrature for the closed-form `P_f`/`P_m`
//! integrals of §4.3.

/// Integrates `f` over `[a, b]` with adaptive Simpson's rule to the
/// given absolute tolerance.
///
/// # Examples
///
/// ```
/// use scidive_analysis::integrate::integrate;
///
/// let area = integrate(&|x: f64| x * x, 0.0, 3.0, 1e-10);
/// assert!((area - 9.0).abs() < 1e-8);
/// ```
pub fn integrate(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    if a >= b {
        return 0.0;
    }
    // Pre-panel the interval: a lone adaptive pass can terminate early
    // when the integrand's mass is concentrated far from the initial
    // sample points (all three look like zero).
    const PANELS: usize = 32;
    let width = (b - a) / PANELS as f64;
    let panel_tol = tol / PANELS as f64;
    (0..PANELS)
        .map(|i| {
            let pa = a + i as f64 * width;
            let pb = pa + width;
            let fa = f(pa);
            let fb = f(pb);
            let m = 0.5 * (pa + pb);
            let fm = f(m);
            adaptive(f, pa, pb, fa, fb, fm, simpson(pa, pb, fa, fm, fb), panel_tol, 40)
        })
        .sum()
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + adaptive(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn polynomial_exact() {
        let v = integrate(&|x| 3.0 * x * x, 0.0, 2.0, 1e-12);
        assert!((v - 8.0).abs() < 1e-9);
    }

    #[test]
    fn sine_over_period() {
        let v = integrate(&f64::sin, 0.0, PI, 1e-10);
        assert!((v - 2.0).abs() < 1e-8);
    }

    #[test]
    fn gaussian_mass() {
        let v = integrate(
            &|x| (-0.5 * x * x).exp() / (2.0 * PI).sqrt(),
            -10.0,
            10.0,
            1e-10,
        );
        assert!((v - 1.0).abs() < 1e-7);
    }

    #[test]
    fn empty_interval_zero() {
        assert_eq!(integrate(&|x| x, 2.0, 2.0, 1e-9), 0.0);
        assert_eq!(integrate(&|x| x, 3.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn discontinuous_integrand_converges() {
        // Step at 1.0: area of [1, 2] is 1.
        let v = integrate(&|x| if x >= 1.0 { 1.0 } else { 0.0 }, 0.0, 2.0, 1e-9);
        assert!((v - 1.0).abs() < 1e-4, "{v}");
    }
}
