//! # scidive-analysis — the paper's §4.3 performance model
//!
//! Closed-form, numeric-integration and Monte Carlo treatments of the
//! three metrics the paper defines for the IDS:
//!
//! * **Detection delay** `D` ([`delay`]) — time from attack to alarm.
//!   Under the paper's simplest assumptions (uniform `G_sip` over one
//!   20 ms RTP period, symmetric network delays) `E[D] = 10 ms`.
//! * **Probability of missed alarm** `P_m` ([`missed`]) — the orphan
//!   packet fails to arrive inside the finite monitoring window `m`.
//! * **Probability of false alarm** `P_f` ([`false_alarm`]) — a genuine
//!   BYE overtakes the last RTP packet; `½` for i.i.d. delays.
//!
//! Supporting toolkit: distributions with pdf/cdf ([`dist`]), adaptive
//! Simpson quadrature ([`integrate`]) and summary statistics
//! ([`stats`]).
//!
//! ```
//! use scidive_analysis::delay::DelayModel;
//!
//! let model = DelayModel::paper_simple();
//! assert!((model.expected_simple_ms() - 10.0).abs() < 1e-12);
//!
//! let est = model.monte_carlo(10_000, 42, 200.0, 0.0);
//! assert!((est.mean_delay_ms - 10.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delay;
pub mod dist;
pub mod false_alarm;
pub mod integrate;
pub mod missed;
pub mod stats;

/// Convenient glob import of the analysis types.
pub mod prelude {
    pub use crate::delay::{DelayEstimate, DelayModel};
    pub use crate::dist::ContDist;
    pub use crate::false_alarm::{p_false_monte_carlo, p_false_numeric};
    pub use crate::integrate::integrate;
    pub use crate::missed::{
        p_missed_single_mc, p_missed_single_numeric, sweep_p_missed, MissedPoint,
    };
    pub use crate::stats::{percentile_sorted, Histogram, Summary};
}
