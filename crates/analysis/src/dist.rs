//! Continuous distributions with densities, CDFs and sampling.
//!
//! The §4.3 model needs more than sampling: the closed forms for `P_f`
//! and `P_m` integrate densities against CDFs, so this module carries
//! `pdf`/`cdf` alongside `sample`. Values are in milliseconds.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// A continuous distribution over delays (ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContDist {
    /// A point mass at `c`.
    Constant {
        /// The constant value.
        c: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean (= 1/rate).
        mean: f64,
    },
    /// `shift` plus an exponential of mean `mean`.
    ShiftedExponential {
        /// Fixed offset.
        shift: f64,
        /// Mean of the exponential part.
        mean: f64,
    },
    /// Normal (untruncated; callers clamp when sampling delays).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
}

impl ContDist {
    /// The mean.
    pub fn mean(&self) -> f64 {
        match *self {
            ContDist::Constant { c } => c,
            ContDist::Uniform { lo, hi } => (lo + hi) / 2.0,
            ContDist::Exponential { mean } => mean,
            ContDist::ShiftedExponential { shift, mean } => shift + mean,
            ContDist::Normal { mean, .. } => mean,
        }
    }

    /// The density at `x`. Point masses return 0 (use [`ContDist::cdf`]).
    pub fn pdf(&self, x: f64) -> f64 {
        match *self {
            ContDist::Constant { .. } => 0.0,
            ContDist::Uniform { lo, hi } => {
                if (lo..=hi).contains(&x) && hi > lo {
                    1.0 / (hi - lo)
                } else {
                    0.0
                }
            }
            ContDist::Exponential { mean } => {
                if x < 0.0 || mean <= 0.0 {
                    0.0
                } else {
                    (-x / mean).exp() / mean
                }
            }
            ContDist::ShiftedExponential { shift, mean } => {
                ContDist::Exponential { mean }.pdf(x - shift)
            }
            ContDist::Normal { mean, std } => {
                if std <= 0.0 {
                    0.0
                } else {
                    let z = (x - mean) / std;
                    (-0.5 * z * z).exp() / (std * (2.0 * PI).sqrt())
                }
            }
        }
    }

    /// The CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            ContDist::Constant { c } => {
                if x >= c {
                    1.0
                } else {
                    0.0
                }
            }
            ContDist::Uniform { lo, hi } => {
                if x < lo {
                    0.0
                } else if x >= hi || hi <= lo {
                    1.0
                } else {
                    (x - lo) / (hi - lo)
                }
            }
            ContDist::Exponential { mean } => {
                if x < 0.0 || mean <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            ContDist::ShiftedExponential { shift, mean } => {
                ContDist::Exponential { mean }.cdf(x - shift)
            }
            ContDist::Normal { mean, std } => {
                if std <= 0.0 {
                    if x >= mean {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.5 * (1.0 + erf((x - mean) / std * FRAC_1_SQRT_2))
                }
            }
        }
    }

    /// The effective support `(lo, hi)` for numeric integration; tails
    /// beyond 1e-12 mass are cut.
    pub fn support(&self) -> (f64, f64) {
        match *self {
            ContDist::Constant { c } => (c, c),
            ContDist::Uniform { lo, hi } => (lo, hi),
            ContDist::Exponential { mean } => (0.0, mean * 30.0),
            ContDist::ShiftedExponential { shift, mean } => (shift, shift + mean * 30.0),
            ContDist::Normal { mean, std } => (mean - 8.0 * std, mean + 8.0 * std),
        }
    }

    /// Draws one sample (delays: clamped at zero by the caller if
    /// needed).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            ContDist::Constant { c } => c,
            ContDist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            ContDist::Exponential { mean } => {
                if mean <= 0.0 {
                    0.0
                } else {
                    -mean * (1.0 - rng.gen::<f64>()).ln()
                }
            }
            ContDist::ShiftedExponential { shift, mean } => {
                shift + ContDist::Exponential { mean }.sample(rng)
            }
            ContDist::Normal { mean, std } => {
                let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
            }
        }
    }

    /// Draws a delay sample clamped at zero.
    pub fn sample_delay<R: Rng>(&self, rng: &mut R) -> f64 {
        self.sample(rng).max(0.0)
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_pdf_cdf_consistent() {
        let d = ContDist::Uniform { lo: 2.0, hi: 6.0 };
        assert_eq!(d.pdf(4.0), 0.25);
        assert_eq!(d.pdf(1.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(4.0), 0.5);
        assert_eq!(d.cdf(7.0), 1.0);
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    fn exponential_cdf_matches_formula() {
        let d = ContDist::Exponential { mean: 5.0 };
        assert!((d.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert!((d.pdf(0.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn shifted_exponential() {
        let d = ContDist::ShiftedExponential { shift: 3.0, mean: 2.0 };
        assert_eq!(d.cdf(2.9), 0.0);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        let mut r = rng();
        for _ in 0..100 {
            assert!(d.sample(&mut r) >= 3.0);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        let d = ContDist::Normal { mean: 10.0, std: 2.0 };
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-7);
        assert!((d.cdf(12.0) + d.cdf(8.0) - 1.0).abs() < 1e-7);
        // ~68% within 1 sigma
        let within = d.cdf(12.0) - d.cdf(8.0);
        assert!((within - 0.6827).abs() < 1e-3, "{within}");
    }

    #[test]
    fn constant_is_step() {
        let d = ContDist::Constant { c: 4.0 };
        assert_eq!(d.cdf(3.999), 0.0);
        assert_eq!(d.cdf(4.0), 1.0);
        assert_eq!(d.sample(&mut rng()), 4.0);
    }

    #[test]
    fn sample_means_converge() {
        let mut r = rng();
        for d in [
            ContDist::Uniform { lo: 0.0, hi: 20.0 },
            ContDist::Exponential { mean: 7.0 },
            ContDist::Normal { mean: 15.0, std: 3.0 },
            ContDist::ShiftedExponential { shift: 2.0, mean: 3.0 },
        ] {
            let n = 60_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.15,
                "{d:?}: sample mean {mean} vs {}",
                d.mean()
            );
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn cdf_is_monotone() {
        for d in [
            ContDist::Uniform { lo: 0.0, hi: 20.0 },
            ContDist::Exponential { mean: 7.0 },
            ContDist::Normal { mean: 15.0, std: 3.0 },
        ] {
            let (lo, hi) = d.support();
            let mut prev = -1.0;
            for i in 0..=100 {
                let x = lo + (hi - lo) * i as f64 / 100.0;
                let c = d.cdf(x);
                assert!(c >= prev - 1e-12, "{d:?} not monotone at {x}");
                prev = c;
            }
        }
    }
}
