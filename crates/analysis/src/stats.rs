//! Summary statistics and histograms for experiment harnesses.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            max: sorted[n - 1],
        })
    }

    /// 95% confidence half-width of the mean (normal approximation).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Percentile of an already-sorted slice by linear interpolation.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let bins = self.counts.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[idx.min(bins - 1)] += 1;
        }
    }

    /// `(bin_center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }

    /// Values below range / above range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total recorded values including outliers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Renders a terminal bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (center, count) in self.bins() {
            let bar = "#".repeat((count as usize * width) / max as usize);
            out.push_str(&format!("{center:>10.2} | {bar} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.5, 2.5, 2.6, 9.9, 10.0, 42.0] {
            h.record(v);
        }
        let bins = h.bins();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0], (1.0, 1)); // 0.5
        assert_eq!(bins[1], (3.0, 2)); // 2.5, 2.6
        assert_eq!(bins[4], (9.0, 1)); // 9.9
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let text = h.render(10);
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
