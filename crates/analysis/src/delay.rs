//! The §4.3.1 detection-delay model.
//!
//! Timeline (paper's figure): the last RTP packet before the attack is
//! sent at time 0; the forged BYE/re-INVITE is generated at `G_sip`
//! (uniform on one RTP period under the simplest assumption); packets
//! suffer network delays `N_sip`, `N_rtp`. The victim's peer sends the
//! next RTP packet at the period boundary (20 ms), and detection happens
//! when the first orphan RTP packet arrives after the SIP message:
//!
//! ```text
//! T_sip = G_sip + N_sip
//! T_k   = 20·k + N_rtp_k           (k-th subsequent RTP packet)
//! D     = min{ T_k : T_k > T_sip } − T_sip
//! ```
//!
//! For the single-packet approximation the paper uses, `D = 20 + N_rtp −
//! G_sip − N_sip`, whose expectation under `G_sip ~ U(0, 20)` and equal
//! mean delays is **10 ms — half the RTP generation period** — the
//! paper's headline number. (The paper prints the equivalent expression
//! `D = 20 + N_rtp − (G_sip − N_sip)`; the sign on `N_sip` there is a
//! typo — the SIP network delay postpones the *start* of monitoring, so
//! it must subtract. Both forms give E\[D\] = 10 ms in the symmetric case
//! where the two means cancel.)

use crate::dist::ContDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The detection-delay model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// RTP packet generation period (ms); 20 for G.711.
    pub period_ms: f64,
    /// Network delay of RTP packets.
    pub n_rtp: ContDist,
    /// Network delay of the forged SIP message.
    pub n_sip: ContDist,
    /// Generation time of the forged SIP message after the last RTP
    /// packet; the paper's simplest assumption is `U(0, 20)`.
    pub g_sip: ContDist,
}

impl Default for DelayModel {
    fn default() -> DelayModel {
        DelayModel {
            period_ms: 20.0,
            n_rtp: ContDist::Constant { c: 0.5 },
            n_sip: ContDist::Constant { c: 0.5 },
            g_sip: ContDist::Uniform { lo: 0.0, hi: 20.0 },
        }
    }
}

impl DelayModel {
    /// The paper's "simplest of assumptions": uniform `G_sip` over one
    /// period and identical constant network delays.
    pub fn paper_simple() -> DelayModel {
        DelayModel::default()
    }

    /// Closed-form expected delay of the single-packet approximation:
    /// `E[D] = period + E[N_rtp] − E[G_sip] − E[N_sip]`.
    pub fn expected_simple_ms(&self) -> f64 {
        self.period_ms + self.n_rtp.mean() - self.g_sip.mean() - self.n_sip.mean()
    }

    /// Samples the single-packet approximation once.
    pub fn sample_simple<R: Rng>(&self, rng: &mut R) -> f64 {
        self.period_ms + self.n_rtp.sample_delay(rng)
            - self.g_sip.sample_delay(rng)
            - self.n_sip.sample_delay(rng)
    }

    /// Samples the full model: the first subsequent RTP packet to
    /// *arrive* after the SIP message, with independent per-packet
    /// delays and loss. Returns `None` (a missed detection) if no orphan
    /// packet arrives within the monitoring window `m`.
    pub fn sample_detection<R: Rng>(
        &self,
        rng: &mut R,
        monitor_window_ms: f64,
        loss: f64,
    ) -> Option<f64> {
        let t_sip = self.g_sip.sample_delay(rng) + self.n_sip.sample_delay(rng);
        let deadline = t_sip + monitor_window_ms;
        // Enough packets to cover the window generously.
        let max_k = ((deadline / self.period_ms).ceil() as u64) + 3;
        let mut best: Option<f64> = None;
        for k in 1..=max_k {
            if loss > 0.0 && rng.gen::<f64>() < loss {
                continue;
            }
            let arrival = self.period_ms * k as f64 + self.n_rtp.sample_delay(rng);
            if arrival > t_sip && arrival <= deadline {
                let d = arrival - t_sip;
                best = Some(best.map_or(d, |b: f64| b.min(d)));
            }
        }
        best
    }

    /// Monte Carlo estimate of the mean full-model detection delay and
    /// the missed-alarm probability over `n` trials.
    pub fn monte_carlo(
        &self,
        n: usize,
        seed: u64,
        monitor_window_ms: f64,
        loss: f64,
    ) -> DelayEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delays = Vec::with_capacity(n);
        let mut missed = 0usize;
        for _ in 0..n {
            match self.sample_detection(&mut rng, monitor_window_ms, loss) {
                Some(d) => delays.push(d),
                None => missed += 1,
            }
        }
        let mean = if delays.is_empty() {
            f64::NAN
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        DelayEstimate {
            trials: n,
            mean_delay_ms: mean,
            p_missed: missed as f64 / n as f64,
            delays,
        }
    }
}

/// Monte Carlo output for the delay model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayEstimate {
    /// Trials run.
    pub trials: usize,
    /// Mean detection delay over detected trials (ms).
    pub mean_delay_ms: f64,
    /// Fraction of trials with no detection inside the window.
    pub p_missed: f64,
    /// The raw detected delays.
    pub delays: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_ten_ms() {
        // "the expected detection delay is 10 milliseconds, which is
        // half of the RTP packet generation period."
        let m = DelayModel::paper_simple();
        assert!((m.expected_simple_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_means_shift_expectation() {
        let m = DelayModel {
            n_rtp: ContDist::Constant { c: 5.0 },
            n_sip: ContDist::Constant { c: 1.0 },
            ..DelayModel::default()
        };
        // 20 + 5 − 10 − 1 = 14.
        assert!((m.expected_simple_ms() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_closed_form_simple_case() {
        let m = DelayModel::paper_simple();
        let est = m.monte_carlo(200_000, 11, 200.0, 0.0);
        assert_eq!(est.trials, 200_000);
        assert!(est.p_missed < 1e-9);
        // Full model with per-packet arrival ≥ closed form (it waits for
        // the *next* packet, never a negative delay); with constant
        // delays and uniform G_sip the mean is exactly 10 ms.
        assert!(
            (est.mean_delay_ms - 10.0).abs() < 0.1,
            "mean={}",
            est.mean_delay_ms
        );
    }

    #[test]
    fn full_model_delays_are_positive() {
        let m = DelayModel {
            n_rtp: ContDist::Exponential { mean: 8.0 },
            n_sip: ContDist::Exponential { mean: 8.0 },
            ..DelayModel::default()
        };
        let est = m.monte_carlo(20_000, 13, 500.0, 0.0);
        assert!(est.delays.iter().all(|&d| d > 0.0));
        // With heavy random delays the mean exceeds the naive 10 ms.
        assert!(est.mean_delay_ms > 5.0);
    }

    #[test]
    fn loss_increases_miss_probability() {
        let m = DelayModel::paper_simple();
        let no_loss = m.monte_carlo(20_000, 17, 30.0, 0.0);
        let heavy_loss = m.monte_carlo(20_000, 17, 30.0, 0.5);
        assert!(heavy_loss.p_missed > no_loss.p_missed);
        assert!(heavy_loss.p_missed > 0.2, "{}", heavy_loss.p_missed);
    }

    #[test]
    fn tighter_window_misses_more() {
        let m = DelayModel {
            n_rtp: ContDist::Exponential { mean: 10.0 },
            ..DelayModel::default()
        };
        let tight = m.monte_carlo(20_000, 19, 15.0, 0.0);
        let loose = m.monte_carlo(20_000, 19, 200.0, 0.0);
        assert!(tight.p_missed > loose.p_missed);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::paper_simple();
        let a = m.monte_carlo(1_000, 5, 100.0, 0.1);
        let b = m.monte_carlo(1_000, 5, 100.0, 0.1);
        assert_eq!(a, b);
    }
}
