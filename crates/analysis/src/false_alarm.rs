//! The §4.3.1 false-alarm probability.
//!
//! "Although rare, it is possible for a valid BYE message to arrive
//! before the RTP packet if, for instance, they take a different route
//! ... the false alarm probability is given as P_f = Pr{N_sip < N_rtp}."
//!
//! The sender emits its last RTP packet and the genuine BYE at (almost)
//! the same instant; if the BYE wins the race, the IDS sees RTP after a
//! BYE and raises a false alarm. For i.i.d. continuous delays the paper
//! notes the integral `∫ F_N(t) f_N(t) dt` evaluates to **½** — the race
//! is a coin flip — and asymmetric paths move it off ½.

use crate::dist::ContDist;
use crate::integrate::integrate;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Closed-form `P_f = Pr{N_sip < N_rtp}` by numeric integration:
/// `∫ f_sip(t) · (1 − F_rtp(t)) dt`.
///
/// Point-mass (constant) distributions are handled by direct comparison
/// since they have no density.
pub fn p_false_numeric(n_sip: &ContDist, n_rtp: &ContDist) -> f64 {
    match (n_sip, n_rtp) {
        (ContDist::Constant { c: a }, ContDist::Constant { c: b }) => {
            if a < b {
                1.0
            } else {
                0.0
            }
        }
        (ContDist::Constant { c }, other) => 1.0 - other.cdf(*c),
        (other, ContDist::Constant { c }) => other.cdf(*c),
        _ => {
            // Integrate over the *SIP* density's support: the integrand
            // is f_sip-weighted, so this keeps quadrature panels matched
            // to where the mass actually is (a narrow uniform would
            // otherwise vanish between panel sample points).
            let (lo, hi) = n_sip.support();
            integrate(
                &|t| n_sip.pdf(t) * (1.0 - n_rtp.cdf(t)),
                lo,
                hi,
                1e-10,
            )
        }
    }
}

/// Monte Carlo estimate of the same probability.
pub fn p_false_monte_carlo(n_sip: &ContDist, n_rtp: &ContDist, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let sip = n_sip.sample_delay(&mut rng);
        let rtp = n_rtp.sample_delay(&mut rng);
        if sip < rtp {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_continuous_is_one_half() {
        // The paper's observation: identical independent delay
        // distributions give P_f = ½.
        for d in [
            ContDist::Uniform { lo: 0.0, hi: 10.0 },
            ContDist::Exponential { mean: 4.0 },
            ContDist::Normal { mean: 8.0, std: 2.0 },
        ] {
            let p = p_false_numeric(&d, &d);
            assert!((p - 0.5).abs() < 1e-4, "{d:?}: {p}");
        }
    }

    #[test]
    fn faster_sip_path_lowers_p_false() {
        // Wait — a *faster* SIP path means the BYE usually wins the race,
        // i.e. the false alarm becomes MORE likely, not less: check both
        // directions explicitly.
        let fast = ContDist::Exponential { mean: 1.0 };
        let slow = ContDist::Exponential { mean: 10.0 };
        let p_sip_fast = p_false_numeric(&fast, &slow);
        let p_sip_slow = p_false_numeric(&slow, &fast);
        assert!(p_sip_fast > 0.85, "{p_sip_fast}");
        assert!(p_sip_slow < 0.15, "{p_sip_slow}");
    }

    #[test]
    fn exponential_racing_exponential_closed_form() {
        // Pr{X < Y} = λx/(λx+λy) = my/(mx+my) for means mx, my.
        let a = ContDist::Exponential { mean: 2.0 };
        let b = ContDist::Exponential { mean: 6.0 };
        let expect = 6.0 / (2.0 + 6.0);
        let p = p_false_numeric(&a, &b);
        assert!((p - expect).abs() < 1e-4, "{p} vs {expect}");
    }

    #[test]
    fn constants_compare_directly() {
        let fast = ContDist::Constant { c: 1.0 };
        let slow = ContDist::Constant { c: 2.0 };
        assert_eq!(p_false_numeric(&fast, &slow), 1.0);
        assert_eq!(p_false_numeric(&slow, &fast), 0.0);
        assert_eq!(p_false_numeric(&fast, &fast), 0.0); // ties lose
    }

    #[test]
    fn constant_vs_continuous() {
        let c = ContDist::Constant { c: 4.0 };
        let e = ContDist::Exponential { mean: 4.0 };
        // Pr{4 < Exp(4)} = e^{-1}.
        let p = p_false_numeric(&c, &e);
        assert!((p - (-1.0f64).exp()).abs() < 1e-9, "{p}");
        // Pr{Exp(4) < 4} = 1 − e^{-1}.
        let p = p_false_numeric(&e, &c);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9, "{p}");
    }

    #[test]
    fn monte_carlo_agrees_with_numeric() {
        let sip = ContDist::Normal { mean: 5.0, std: 1.0 };
        let rtp = ContDist::Exponential { mean: 5.0 };
        let numeric = p_false_numeric(&sip, &rtp);
        let mc = p_false_monte_carlo(&sip, &rtp, 200_000, 3);
        assert!((numeric - mc).abs() < 0.01, "numeric={numeric} mc={mc}");
    }
}
