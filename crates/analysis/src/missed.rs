//! The §4.3.1 missed-alarm probability.
//!
//! "Since the detection depends on monitoring after a SIP message
//! arrival and since this monitoring interval is necessarily finite (m),
//! there is a probability that the IDS system may not detect the
//! intrusion." The paper's single-packet form is
//! `P_m = Pr{N_rtp − G_sip + N_sip > m − 20}`; packet loss adds a factor
//! per subsequent packet. This module offers the single-packet form by
//! Monte Carlo / numeric integration and the loss-aware multi-packet
//! form by Monte Carlo (via [`crate::delay::DelayModel`]).

use crate::delay::DelayModel;
use crate::dist::ContDist;
use crate::integrate::integrate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Single-packet missed-alarm probability by Monte Carlo:
/// `Pr{20 + N_rtp − G_sip − N_sip > m}` (the next packet arrives after
/// the window closes).
pub fn p_missed_single_mc(model: &DelayModel, m_ms: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut misses = 0usize;
    for _ in 0..trials {
        if model.sample_simple(&mut rng) > m_ms {
            misses += 1;
        }
    }
    misses as f64 / trials as f64
}

/// Single-packet missed-alarm probability by numeric integration, for
/// the case of constant network delays and continuous `G_sip`:
/// `Pr{G_sip < period + n_rtp − n_sip − m}`.
///
/// Returns `None` when either network delay is not a constant (use the
/// Monte Carlo form there).
pub fn p_missed_single_numeric(model: &DelayModel, m_ms: f64) -> Option<f64> {
    let (ContDist::Constant { c: n_rtp }, ContDist::Constant { c: n_sip }) =
        (model.n_rtp, model.n_sip)
    else {
        return None;
    };
    let threshold = model.period_ms + n_rtp - n_sip - m_ms;
    let (lo, hi) = model.g_sip.support();
    if threshold <= lo {
        return Some(0.0);
    }
    if threshold >= hi {
        return Some(1.0);
    }
    Some(integrate(
        &|g| model.g_sip.pdf(g),
        lo,
        threshold,
        1e-10,
    ))
}

/// One point of the `P_m(m)` sweep (the loss-aware multi-packet model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissedPoint {
    /// The monitoring window m (ms).
    pub m_ms: f64,
    /// Packet loss probability used.
    pub loss: f64,
    /// Estimated missed-alarm probability.
    pub p_missed: f64,
    /// Mean detection delay over detected trials (ms).
    pub mean_delay_ms: f64,
}

/// Sweeps `P_m` over monitoring windows and loss rates with the full
/// multi-packet model.
pub fn sweep_p_missed(
    model: &DelayModel,
    windows_ms: &[f64],
    losses: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<MissedPoint> {
    let mut out = Vec::new();
    for (wi, &m_ms) in windows_ms.iter().enumerate() {
        for (li, &loss) in losses.iter().enumerate() {
            let est = model.monte_carlo(
                trials,
                seed ^ ((wi as u64) << 32) ^ (li as u64),
                m_ms,
                loss,
            );
            out.push(MissedPoint {
                m_ms,
                loss,
                p_missed: est.p_missed,
                mean_delay_ms: est.mean_delay_ms,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_matches_mc_for_constant_delays() {
        let model = DelayModel::paper_simple(); // constant 0.5ms delays
        for m in [5.0, 10.0, 15.0, 25.0] {
            let numeric = p_missed_single_numeric(&model, m).unwrap();
            let mc = p_missed_single_mc(&model, m, 200_000, 7);
            assert!(
                (numeric - mc).abs() < 0.005,
                "m={m}: numeric={numeric} mc={mc}"
            );
        }
    }

    #[test]
    fn paper_simple_case_shape() {
        // With symmetric constant delays, D = 20 − G_sip ~ U(0, 20):
        // P_m(m) = (20 − m)/20 for 0 ≤ m ≤ 20, 0 beyond.
        let model = DelayModel::paper_simple();
        let p10 = p_missed_single_numeric(&model, 10.0).unwrap();
        assert!((p10 - 0.5).abs() < 1e-6, "{p10}");
        let p20 = p_missed_single_numeric(&model, 20.0).unwrap();
        assert!(p20 < 1e-6, "{p20}");
        let p0 = p_missed_single_numeric(&model, 0.0).unwrap();
        assert!((p0 - 1.0).abs() < 1e-6, "{p0}");
    }

    #[test]
    fn numeric_requires_constant_delays() {
        let model = DelayModel {
            n_rtp: ContDist::Exponential { mean: 3.0 },
            ..DelayModel::default()
        };
        assert!(p_missed_single_numeric(&model, 10.0).is_none());
    }

    #[test]
    fn p_missed_decreases_with_window() {
        let model = DelayModel {
            n_rtp: ContDist::Exponential { mean: 10.0 },
            n_sip: ContDist::Exponential { mean: 10.0 },
            ..DelayModel::default()
        };
        let points = sweep_p_missed(&model, &[10.0, 30.0, 60.0, 120.0], &[0.0], 20_000, 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].p_missed <= pair[0].p_missed + 0.01,
                "P_m should fall with m: {pair:?}"
            );
        }
        // Multi-packet model: a wide window almost never misses.
        assert!(points.last().unwrap().p_missed < 0.01);
    }

    #[test]
    fn p_missed_increases_with_loss() {
        let model = DelayModel::paper_simple();
        let points = sweep_p_missed(&model, &[30.0], &[0.0, 0.1, 0.3, 0.6], 20_000, 5);
        for pair in points.windows(2) {
            assert!(
                pair[1].p_missed >= pair[0].p_missed - 0.01,
                "P_m should rise with loss: {pair:?}"
            );
        }
    }
}
