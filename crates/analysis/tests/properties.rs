//! Property-based tests for the analysis toolkit: distribution axioms,
//! quadrature sanity, probability bounds, statistical identities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scidive_analysis::delay::DelayModel;
use scidive_analysis::dist::ContDist;
use scidive_analysis::false_alarm::p_false_numeric;
use scidive_analysis::integrate::integrate;
use scidive_analysis::stats::{percentile_sorted, Histogram, Summary};

fn continuous_dist() -> impl Strategy<Value = ContDist> {
    prop_oneof![
        (0.0f64..20.0, 0.1f64..20.0).prop_map(|(lo, w)| ContDist::Uniform { lo, hi: lo + w }),
        (0.1f64..20.0).prop_map(|mean| ContDist::Exponential { mean }),
        (0.0f64..10.0, 0.1f64..10.0)
            .prop_map(|(shift, mean)| ContDist::ShiftedExponential { shift, mean }),
        (0.0f64..20.0, 0.1f64..5.0).prop_map(|(mean, std)| ContDist::Normal { mean, std }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdf_is_monotone_in_unit_range(d in continuous_dist()) {
        let (lo, hi) = d.support();
        let mut prev = -1e-12;
        for i in 0..=64 {
            let x = lo + (hi - lo) * i as f64 / 64.0;
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "{d:?} cdf({x}) = {c}");
            prop_assert!(c >= prev - 1e-9, "{d:?} not monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn pdf_is_nonnegative_and_integrates_to_one(d in continuous_dist()) {
        let (lo, hi) = d.support();
        for i in 0..=32 {
            let x = lo + (hi - lo) * i as f64 / 32.0;
            prop_assert!(d.pdf(x) >= 0.0);
        }
        let mass = integrate(&|x| d.pdf(x), lo - 1.0, hi + 1.0, 1e-9);
        prop_assert!((mass - 1.0).abs() < 1e-3, "{d:?} mass = {mass}");
    }

    #[test]
    fn sampling_respects_support(d in continuous_dist(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = d.support();
        for _ in 0..64 {
            let v = d.sample(&mut rng);
            prop_assert!(v.is_finite());
            // Allow generous slack on normal tails beyond support cut.
            prop_assert!(v >= lo - 1.0 && v <= hi + 1.0, "{d:?}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn p_false_is_a_probability_and_complements(
        a in continuous_dist(),
        b in continuous_dist(),
    ) {
        let p_ab = p_false_numeric(&a, &b);
        let p_ba = p_false_numeric(&b, &a);
        prop_assert!((-1e-6..=1.0 + 1e-6).contains(&p_ab), "{p_ab}");
        prop_assert!((-1e-6..=1.0 + 1e-6).contains(&p_ba), "{p_ba}");
        // Continuous distributions: ties have measure zero, so the two
        // race outcomes complement. (Integration tolerance applies.)
        prop_assert!((p_ab + p_ba - 1.0).abs() < 2e-2, "{a:?} vs {b:?}: {p_ab} + {p_ba}");
    }

    #[test]
    fn delay_model_mc_bounds(
        mean in 0.1f64..10.0,
        window in 20.0f64..200.0,
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let model = DelayModel {
            n_rtp: ContDist::Exponential { mean },
            n_sip: ContDist::Exponential { mean },
            ..DelayModel::paper_simple()
        };
        let est = model.monte_carlo(2_000, seed, window, loss);
        prop_assert!((0.0..=1.0).contains(&est.p_missed));
        for d in &est.delays {
            prop_assert!(*d > 0.0 && *d <= window + 1e-9);
        }
    }

    #[test]
    fn summary_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn percentile_is_within_range(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q in 0.0f64..1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = percentile_sorted(&values, q);
        prop_assert!(p >= values[0] && p <= values[values.len() - 1]);
    }

    #[test]
    fn histogram_conserves_counts(
        values in proptest::collection::vec(-100.0f64..200.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for v in &values {
            h.record(*v);
        }
        let binned: u64 = h.bins().iter().map(|(_, c)| *c).sum();
        let (under, over) = h.outliers();
        prop_assert_eq!(binned + under + over, values.len() as u64);
        prop_assert_eq!(h.total(), values.len() as u64);
    }
}
