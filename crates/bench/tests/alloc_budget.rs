//! Allocation-regression gate for the hot path.
//!
//! Replays a benign capture through a fresh engine under the counting
//! global allocator and fails if allocations per frame creep past a
//! budget. The budget is set from a measured value with ~30% headroom:
//! it will not trip on allocator noise or small feature work, but a
//! change that reintroduces per-frame `format!`/`to_string`/`Vec`
//! construction in the distiller, router, or header parser blows
//! straight through it.
//!
//! Runs only with `--features count-allocs` (the counting allocator is
//! process-global, so it is opt-in):
//!
//! ```text
//! cargo test -p scidive-bench --features count-allocs --test alloc_budget
//! ```
#![cfg(feature = "count-allocs")]

use scidive_bench::alloc_count;
use scidive_bench::harness::{run_attack, run_benign_capture, AttackKind, ScenarioOptions};
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

/// Heap allocations allowed per frame, end to end (distill → route →
/// trails → events → rules). Measured ~3.2 after the interning/zero-copy
/// work, ~2.6 once sink-based rule emission removed the per-(event,
/// rule) `Vec<Alert>` returns, and ~1.8/~1.4 (benign/bye) with pooled
/// header vectors, recycled footprint slots, and the per-media-frame
/// endpoint `Vec` gone; 2 gives headroom for noise without letting any
/// per-frame allocation back into the distiller, router, trail store,
/// or event generator.
const ALLOCS_PER_FRAME_BUDGET: f64 = 2.0;

fn assert_within_budget(label: &str, frames: &[(SimTime, IpPacket)]) {
    assert!(frames.len() > 200, "{label} capture too small: {}", frames.len());
    let mut ids = Scidive::new(ScidiveConfig::default());
    // Warm one frame so lazily initialized tables (rule set, interner
    // buckets) are charged to setup, not the steady state.
    ids.on_frame(frames[0].0, &frames[0].1);
    let rest = &frames[1..];
    let (_, used) = alloc_count::measure(|| {
        ids.process_capture(rest.iter().map(|(t, p)| (*t, p)));
    });
    let per_frame = used.allocs as f64 / rest.len() as f64;
    println!(
        "{label} replay: {:.1} allocs/frame ({} allocs / {} frames, {} bytes)",
        per_frame,
        used.allocs,
        rest.len(),
        used.bytes
    );
    assert!(
        per_frame <= ALLOCS_PER_FRAME_BUDGET,
        "allocation regression: {label} at {per_frame:.1} allocs/frame exceeds budget of \
         {ALLOCS_PER_FRAME_BUDGET} — a hot-path allocation crept back in"
    );
}

#[test]
fn benign_replay_stays_within_alloc_budget() {
    let frames = run_benign_capture(42, &ScenarioOptions::default());
    assert_within_budget("benign", &frames);
}

/// The attack path allocates too: events, alerts, and rule session
/// state all materialize. The budget must hold while rules actually
/// fire, not just on silent traffic.
#[test]
fn bye_attack_replay_stays_within_alloc_budget() {
    let frames: Vec<(SimTime, IpPacket)> = run_attack(AttackKind::Bye, 43, &ScenarioOptions::default())
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect();
    assert_within_budget("bye-attack", &frames);
}
