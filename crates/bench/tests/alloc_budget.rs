//! Allocation-regression gate for the hot path.
//!
//! Replays a benign capture through a fresh engine under the counting
//! global allocator and fails if allocations per frame creep past a
//! budget. The budget is set from a measured value with ~30% headroom:
//! it will not trip on allocator noise or small feature work, but a
//! change that reintroduces per-frame `format!`/`to_string`/`Vec`
//! construction in the distiller, router, or header parser blows
//! straight through it.
//!
//! Runs only with `--features count-allocs` (the counting allocator is
//! process-global, so it is opt-in):
//!
//! ```text
//! cargo test -p scidive-bench --features count-allocs --test alloc_budget
//! ```
#![cfg(feature = "count-allocs")]

use scidive_bench::alloc_count;
use scidive_bench::harness::{run_benign_capture, ScenarioOptions};
use scidive_core::prelude::*;

/// Heap allocations allowed per frame of the benign capture, end to end
/// (distill → route → trails → events → rules). Measured ~3.2 after
/// the interning/zero-copy work (down from ~13.2 before it); 5 gives
/// headroom for noise without letting the old per-frame key or payload
/// copies back in.
const ALLOCS_PER_FRAME_BUDGET: f64 = 5.0;

#[test]
fn benign_replay_stays_within_alloc_budget() {
    let frames = run_benign_capture(42, &ScenarioOptions::default());
    assert!(frames.len() > 200, "capture too small: {}", frames.len());
    let mut ids = Scidive::new(ScidiveConfig::default());
    // Warm one frame so lazily initialized tables (rule set, interner
    // buckets) are charged to setup, not the steady state.
    ids.on_frame(frames[0].0, &frames[0].1);
    let rest = &frames[1..];
    let (_, used) = alloc_count::measure(|| {
        ids.process_capture(rest.iter().map(|(t, p)| (*t, p)));
    });
    let per_frame = used.allocs as f64 / rest.len() as f64;
    println!(
        "benign replay: {:.1} allocs/frame ({} allocs / {} frames, {} bytes)",
        per_frame,
        used.allocs,
        rest.len(),
        used.bytes
    );
    assert!(
        per_frame <= ALLOCS_PER_FRAME_BUDGET,
        "allocation regression: {per_frame:.1} allocs/frame exceeds budget of \
         {ALLOCS_PER_FRAME_BUDGET} — a hot-path allocation crept back in"
    );
}
