//! Markdown-table output and JSON result persistence for the
//! experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Writes a serializable result to `results/<name>.json` beside the
/// workspace root (creating the directory), best-effort.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

/// Formats a float to 2 decimal places (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a probability to 3 decimal places.
pub fn p3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".to_string(), "1".to_string()]);
        t.row(&["b".to_string(), "22".to_string()]);
        let text = t.render();
        assert!(text.starts_with("| name  | value |"));
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("| alpha | 1     |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(10.054), "10.05");
        assert_eq!(p3(0.5), "0.500");
    }
}
