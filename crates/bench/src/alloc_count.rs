//! A counting global allocator, enabled by the `count-allocs` feature.
//!
//! Wraps the system allocator with relaxed atomic counters so benches
//! and the allocation-budget regression test can measure exactly how
//! many heap allocations the hot path performs per frame. Compiled in
//! only when the feature is on: the default build keeps the plain
//! system allocator and zero overhead.
//!
//! Counting is process-global, so measurements should run the workload
//! single-threaded (the sharded pipeline's workers allocate too — that
//! is part of what is being measured) and diff [`snapshot`] values
//! around the region of interest.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus relaxed allocation counters.
pub struct CountingAllocator;

// SAFETY: defers every allocation to `System`, which upholds the
// `GlobalAlloc` contract; the counters are side effects only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Heap allocations (incl. reallocations) since process start.
    pub allocs: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counters accumulated since `earlier`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the current process-wide counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns its result with the allocations it performed.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocSnapshot) {
    let before = snapshot();
    let out = f();
    (out, snapshot().since(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_an_allocation() {
        let (v, used) = measure(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(used.allocs >= 1);
        assert!(used.bytes >= 4096);
    }

    #[test]
    fn measure_of_no_allocation_is_zero_or_tiny() {
        // A pure computation must not be charged for background noise
        // in a single-threaded test run.
        let (sum, used) = measure(|| (0u64..64).sum::<u64>());
        assert_eq!(sum, 2016);
        assert_eq!(used.allocs, 0);
    }
}
