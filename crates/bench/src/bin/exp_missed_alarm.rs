//! **Experiment A2 — §4.3.1 missed-alarm probability `P_m(m)`.**
//!
//! "P_m = Pr{N_rtp − G_sip + N_sip > m − 20}" — the orphan RTP packet
//! must arrive inside the finite monitoring window `m`, and packet loss
//! can remove it entirely. Sweeps `m` and the loss rate, comparing the
//! analytical model (single-packet closed form + multi-packet Monte
//! Carlo) against the simulator (forged-BYE attacks with a lossy tap:
//! the IDS misses what the network drops).

use scidive_analysis::delay::DelayModel;
use scidive_analysis::dist::ContDist;
use scidive_analysis::missed::p_missed_single_numeric;
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_bench::report::{p3, save_json, Table};
use scidive_netsim::dist::DelayDist;
use scidive_netsim::link::LinkParams;
use scidive_netsim::time::SimDuration;
use serde::Serialize;

const SEEDS: u64 = 60;
const MC_TRIALS: usize = 100_000;

#[derive(Serialize)]
struct Row {
    m_ms: f64,
    loss: f64,
    single_packet_closed: Option<f64>,
    multi_packet_mc: f64,
    simulated: f64,
}

fn main() {
    let windows_ms = [5.0, 10.0, 15.0, 20.0, 40.0, 100.0];
    let losses = [0.0, 0.10, 0.30];
    let link = DelayDist::constant_ms(0.5);
    let model = DelayModel {
        period_ms: 20.0,
        n_rtp: ContDist::Constant { c: 0.5 },
        n_sip: ContDist::Constant { c: 0.5 },
        g_sip: ContDist::Uniform { lo: 0.0, hi: 20.0 },
    };

    println!("# Experiment A2 — §4.3.1 missed-alarm probability P_m(m)");
    println!("# BYE attack, {SEEDS} seeds per cell; constant 0.5 ms links; loss applied at the IDS tap\n");

    let mut table = Table::new(&[
        "m (ms)",
        "loss",
        "P_m single-packet (closed)",
        "P_m multi-packet (MC)",
        "P_m simulated",
    ]);
    let mut rows = Vec::new();

    for &m_ms in &windows_ms {
        for &loss in &losses {
            let closed = if loss == 0.0 {
                p_missed_single_numeric(&model, m_ms)
            } else {
                None
            };
            let mc = model
                .monte_carlo(MC_TRIALS, 777, m_ms, loss)
                .p_missed;

            let opts = ScenarioOptions {
                link: LinkParams::new(link),
                tap_link: Some(LinkParams::new(link).with_loss(loss)),
                monitor_window: SimDuration::from_millis_f64(m_ms),
                ..ScenarioOptions::default()
            };
            let mut missed = 0usize;
            for seed in 1..=SEEDS {
                let outcome = run_attack(AttackKind::Bye, seed, &opts);
                if outcome.report.detected_count() == 0 {
                    missed += 1;
                }
            }
            let simulated = missed as f64 / SEEDS as f64;
            table.row(&[
                format!("{m_ms}"),
                format!("{loss}"),
                closed.map(p3).unwrap_or_else(|| "-".to_string()),
                p3(mc),
                p3(simulated),
            ]);
            rows.push(Row {
                m_ms,
                loss,
                single_packet_closed: closed,
                multi_packet_mc: mc,
                simulated,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "Shape check: P_m falls as the window m grows (zero once m spans an RTP\n\
         period plus delays) and rises with loss. The simulated P_m sits above\n\
         the model under loss because the tap can also lose the BYE itself —\n\
         an IDS that never sees the teardown can never raise the alarm, a\n\
         failure path the paper's RTP-only loss model does not include."
    );
    save_json("exp_missed_alarm", &rows);
}
