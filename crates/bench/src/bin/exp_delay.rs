//! **Experiment A1 — §4.3.1 detection-delay model.**
//!
//! The paper derives `D = 20 + N_rtp − G_sip − N_sip` and concludes that
//! "under the simplest of assumptions ... the expected detection delay
//! is 10 milliseconds, which is half of the RTP packet generation
//! period". This experiment sweeps network-delay distributions and, for
//! each, compares three estimates of the BYE-attack detection delay:
//!
//! 1. the closed form `E[D] = 20 + E[N_rtp] − E[G_sip] − E[N_sip]`,
//! 2. Monte Carlo on the full multi-packet model, and
//! 3. the simulator: real forged-BYE attacks against the testbed.
//!
//! The simulator measures from attack *generation*, so the model columns
//! add `E[N_sip]` back (see the module docs of `scidive_analysis::delay`
//! for the sign discussion and the paper's typo).

use scidive_analysis::delay::DelayModel;
use scidive_analysis::dist::ContDist;
use scidive_analysis::stats::Summary;
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_bench::report::{f2, save_json, Table};
use scidive_netsim::dist::DelayDist;
use scidive_netsim::link::LinkParams;
use serde::Serialize;

const SEEDS: u64 = 60;
const MC_TRIALS: usize = 200_000;

/// A delay setting expressed for both the simulator and the model.
struct Setting {
    name: &'static str,
    sim: DelayDist,
    model: ContDist,
}

#[derive(Serialize)]
struct Row {
    dist: String,
    closed_form_ms: f64,
    monte_carlo_ms: f64,
    simulated_ms: f64,
    simulated_p95_ms: f64,
    detected: usize,
    seeds: usize,
}

fn main() {
    let settings = [
        Setting {
            name: "constant 0.5 ms",
            sim: DelayDist::constant_ms(0.5),
            model: ContDist::Constant { c: 0.5 },
        },
        Setting {
            name: "uniform 0.1–0.8 ms (LAN)",
            sim: DelayDist::uniform_ms(0.1, 0.8),
            model: ContDist::Uniform { lo: 0.1, hi: 0.8 },
        },
        Setting {
            name: "exponential mean 2 ms",
            sim: DelayDist::exponential_ms(2.0),
            model: ContDist::Exponential { mean: 2.0 },
        },
        Setting {
            name: "exponential mean 5 ms",
            sim: DelayDist::exponential_ms(5.0),
            model: ContDist::Exponential { mean: 5.0 },
        },
        Setting {
            name: "normal 5 ± 1 ms",
            sim: DelayDist::normal_ms(5.0, 1.0),
            model: ContDist::Normal { mean: 5.0, std: 1.0 },
        },
    ];

    println!("# Experiment A1 — §4.3.1 detection delay, model vs. simulator");
    println!("# BYE attack, {SEEDS} seeds per distribution; model adds E[N_sip] (measured from attack generation)\n");

    let mut table = Table::new(&[
        "Network delay",
        "Closed form (ms)",
        "Monte Carlo (ms)",
        "Simulated mean (ms)",
        "Simulated p95 (ms)",
        "Detected",
    ]);
    let mut rows = Vec::new();

    for setting in &settings {
        let model = DelayModel {
            period_ms: 20.0,
            n_rtp: setting.model,
            n_sip: setting.model,
            g_sip: ContDist::Uniform { lo: 0.0, hi: 20.0 },
        };
        // Both columns measured from SIP *generation*: add E[N_sip].
        let closed = model.expected_simple_ms() + setting.model.mean();
        let mc = model.monte_carlo(MC_TRIALS, 424242, 1_000.0, 0.0);
        let mc_from_gen = mc.mean_delay_ms + setting.model.mean();

        let opts = ScenarioOptions {
            link: LinkParams::new(setting.sim),
            monitor_window: scidive_netsim::time::SimDuration::from_millis(1_000),
            ..ScenarioOptions::default()
        };
        let mut delays = Vec::new();
        let mut detected = 0usize;
        for seed in 1..=SEEDS {
            let outcome = run_attack(AttackKind::Bye, seed, &opts);
            if let Some(d) = outcome.report.outcomes.first().and_then(|o| o.delay()) {
                delays.push(d.as_millis_f64());
                detected += 1;
            }
        }
        let summary = Summary::of(&delays).expect("some detections");
        table.row(&[
            setting.name.to_string(),
            f2(closed),
            f2(mc_from_gen),
            f2(summary.mean),
            f2(summary.p95),
            format!("{detected}/{SEEDS}"),
        ]);
        rows.push(Row {
            dist: setting.name.to_string(),
            closed_form_ms: closed,
            monte_carlo_ms: mc_from_gen,
            simulated_ms: summary.mean,
            simulated_p95_ms: summary.p95,
            detected,
            seeds: SEEDS as usize,
        });
    }
    println!("{}", table.render());
    println!(
        "Paper's headline (symmetric delays): E[D] = 10 ms — half the 20 ms RTP period.\n\
         Expect the simulated mean ≈ closed form; heavy-tailed delays push p95 up."
    );
    save_json("exp_delay", &rows);
}
