//! **Experiment O1** — cost of the observability layer.
//!
//! Replays a captured attack scenario through fresh engines with
//! observation at its default settings (histograms on, trace off) and
//! with histograms disabled (the minimal configuration), and reports the
//! throughput difference. Writes `results/observability_overhead.txt`
//! including a sample `PipelineObservation` report, and — with
//! `--gate <pct>` (what `scripts/ci.sh` passes) — exits nonzero if the
//! measured overhead exceeds the budget.

use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_bench::report::f2;
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use std::fmt::Write as _;
use std::time::Instant;

/// Timed samples per configuration (interleaved, median taken), plus
/// warmup.
const ITERS: usize = 31;
const WARMUP: usize = 3;
/// Minimum duration of one timed sample. A single replay of these small
/// captures takes well under a millisecond, where timer quantization
/// and scheduler noise dwarf the effect being measured — a 5% gate on
/// sub-ms medians trips on machine noise alone. Each sample therefore
/// times `reps` back-to-back replays, with `reps` calibrated so the
/// sample lasts at least this long.
const SAMPLE_FLOOR_SECS: f64 = 0.01;

fn capture(kind: AttackKind) -> Vec<(SimTime, IpPacket)> {
    let outcome = run_attack(kind, 1, &ScenarioOptions::default());
    outcome
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

fn config_with(histograms: bool) -> ScidiveConfig {
    let mut config = ScidiveConfig::default();
    config.observe.histograms = histograms;
    config
}

fn replay_once(frames: &[(SimTime, IpPacket)], histograms: bool) -> f64 {
    let mut ids = Scidive::new(config_with(histograms));
    let start = Instant::now();
    ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(ids.stats());
    elapsed
}

/// Replays needed for one timed sample to clear [`SAMPLE_FLOOR_SECS`],
/// from a rough single-replay measurement taken after warmup.
fn calibrate_reps(frames: &[(SimTime, IpPacket)]) -> usize {
    let rough = replay_once(frames, true).max(1e-6);
    ((SAMPLE_FLOOR_SECS / rough).ceil() as usize).max(1)
}

/// One sample: the mean of `reps` back-to-back replays, so every number
/// entering the medians is at least the floor long.
fn sample(frames: &[(SimTime, IpPacket)], histograms: bool, reps: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        total += replay_once(frames, histograms);
    }
    total / reps as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let gate: Option<f64> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--gate")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--gate takes a percentage"))
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Observability overhead (exp_observe_overhead)");
    let _ = writeln!(
        out,
        "# default observation (histograms on, trace off) vs minimal (histograms off)"
    );
    let _ = writeln!(
        out,
        "# {ITERS} interleaved samples per config, median reported; each sample is \
         calibrated to >= {:.0} ms of replays\n",
        SAMPLE_FLOOR_SECS * 1_000.0
    );

    let mut worst: f64 = f64::MIN;
    let mut table = scidive_bench::report::Table::new(&[
        "scenario", "frames", "reps", "minimal ms", "observed ms", "overhead %",
    ]);
    for kind in [AttackKind::Bye, AttackKind::RtpFlood, AttackKind::BillingFraud] {
        let frames = capture(kind);
        for _ in 0..WARMUP {
            replay_once(&frames, true);
            replay_once(&frames, false);
        }
        let reps = calibrate_reps(&frames);
        let mut on = Vec::with_capacity(ITERS);
        let mut off = Vec::with_capacity(ITERS);
        // Interleave so drift (thermal, scheduler) hits both configs
        // equally.
        for _ in 0..ITERS {
            off.push(sample(&frames, false, reps));
            on.push(sample(&frames, true, reps));
        }
        let off_med = median(&mut off);
        let on_med = median(&mut on);
        let overhead = (on_med - off_med) / off_med * 100.0;
        worst = worst.max(overhead);
        table.row(&[
            format!("{kind:?}"),
            frames.len().to_string(),
            reps.to_string(),
            f2(off_med * 1_000.0),
            f2(on_med * 1_000.0),
            f2(overhead),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "worst-case overhead: {}%", f2(worst));

    // Attach a sample observation report from a sharded run of the BYE
    // scenario, so the artifact documents what operators actually read.
    let frames = capture(AttackKind::Bye);
    let mut sharded = ShardedScidive::new(ScidiveConfig::default(), 2, 64);
    for (t, p) in &frames {
        sharded.submit(*t, p);
    }
    let report = sharded.finish();
    let _ = writeln!(
        out,
        "\n# Sample PipelineObservation report (BYE scenario, 2 shards)\n"
    );
    let _ = writeln!(out, "{}", report.observation.report());

    print!("{out}");
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/observability_overhead.txt", &out);

    if let Some(budget) = gate {
        if worst > budget {
            eprintln!("FAIL: observation overhead {}% exceeds the {budget}% budget", f2(worst));
            std::process::exit(1);
        }
        println!("gate ok: worst overhead {}% <= {budget}%", f2(worst));
    }
}
