//! **Experiment S1 — §3.3 stateful detection vs. stateless matching.**
//!
//! "Since 4XX responses are not uncommon in a normal session, a
//! traditional IDS like Snort with a rule to detect multiple 4XX
//! responses may flag a large number of false alarms. ... If the IDS
//! does not isolate 4XX error messages from different sessions and
//! doesn't correlate 4XX error messages with requests, it is likely it
//! will make false verdicts based on unrelated 4XX error messages."
//!
//! Three detectors over identical traffic:
//!
//! * **SCIDIVE (stateful)** — per-source request/4xx alternation windows,
//! * **SCIDIVE (stateless mode)** — the same engine with global,
//!   session-blind counting,
//! * **Snort-like baseline** — per-packet prefix signatures with global
//!   rate thresholds and no reassembly.
//!
//! Two workloads: *benign churn* (N clients with digest-auth
//! registrations, some misconfigured → plenty of 4xx) and the same churn
//! *plus* a REGISTER-flood attacker.

use scidive_attacks::prelude::*;
use scidive_bench::report::{save_json, Table};
use scidive_core::prelude::*;
use scidive_netsim::link::LinkParams;
use scidive_netsim::node::{CapturedFrame, Collector, CollectorHandle};
use scidive_netsim::time::SimDuration;
use scidive_voip::prelude::*;
use serde::Serialize;

const SEEDS: u64 = 20;
const BENIGN_CLIENTS: u8 = 12;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Detector {
    Stateful,
    Stateless,
    SnortLike,
}

impl Detector {
    fn name(self) -> &'static str {
        match self {
            Detector::Stateful => "SCIDIVE (stateful)",
            Detector::Stateless => "SCIDIVE (stateless mode)",
            Detector::SnortLike => "Snort-like baseline",
        }
    }
}

#[derive(Serialize)]
struct Row {
    detector: String,
    workload: String,
    runs_with_alarm: u64,
    runs: u64,
}

/// Builds the churn testbed; returns it plus the tap node.
fn build_churn(seed: u64, with_attacker: bool) -> (Testbed, CollectorHandle) {
    let mut tb = TestbedBuilder::new(seed)
        .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(30), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    // Benign clients with stale credentials: each does a REGISTER → 401 →
    // (failed) authed REGISTER → 401 cycle, i.e. two 4xx per client.
    for i in 0..BENIGN_CLIENTS {
        let ip = std::net::Ipv4Addr::new(10, 0, 1, i + 1);
        let aor: scidive_sip::uri::SipUri = format!("sip:user{i}@lab").parse().unwrap();
        let cfg = UaConfig::new(aor, ip, 10_000 + u16::from(i) * 2, ep.proxy_ip)
            .with_password("stale-password");
        let ua = UserAgent::new(
            cfg,
            vec![ScriptStep::new(
                SimDuration::from_millis(100 + u64::from(i) * 150),
                UaAction::Register,
            )],
        );
        tb.add_node(&format!("client-{i}"), ip, LinkParams::lan(), Box::new(ua));
    }
    if with_attacker {
        let cfg = RegisterDosConfig::new(ep.attacker_ip, ep.proxy_ip, SimDuration::from_secs(2));
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(RegisterFlooder::new(cfg)),
        );
    }
    let collector = Collector::new();
    let tap = collector.handle();
    tb.add_node("capture", ep.tap_ip, LinkParams::lan(), Box::new(collector));
    (tb, tap)
}

/// Runs one detector offline over the captured frames; returns whether a
/// flood alarm fired.
fn flood_alarm(detector: Detector, frames: &[CapturedFrame], ep: &Endpoints) -> bool {
    match detector {
        Detector::Stateful | Detector::Stateless => {
            let mut config = ScidiveConfig::default();
            config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
            config.events.stateful = detector == Detector::Stateful;
            let mut ids = Scidive::new(config);
            for f in frames {
                ids.on_frame(f.time, &f.packet);
            }
            ids.alerts().iter().any(|a| a.rule == "register-dos")
        }
        Detector::SnortLike => {
            // The same thresholds SCIDIVE uses: 10 hits in 10 s.
            let mut ids = SnortLike::voip_ruleset(10, SimDuration::from_secs(10));
            for f in frames {
                ids.on_frame(f.time, &f.packet);
            }
            ids.alerts()
                .iter()
                .any(|a| a.rule.starts_with("snort-"))
        }
    }
}

fn main() {
    println!("# Experiment S1 — §3.3 stateful vs. stateless detection");
    println!(
        "# {BENIGN_CLIENTS} benign clients with stale credentials (4xx churn), {SEEDS} seeds per cell\n"
    );

    let mut table = Table::new(&[
        "Detector",
        "Benign churn (false-alarm runs)",
        "Churn + DoS attacker (detection runs)",
    ]);
    let mut rows = Vec::new();

    for detector in [Detector::Stateful, Detector::Stateless, Detector::SnortLike] {
        let mut benign_alarms = 0u64;
        let mut attack_detected = 0u64;
        for seed in 1..=SEEDS {
            for with_attacker in [false, true] {
                let (mut tb, tap) = build_churn(seed, with_attacker);
                tb.run_for(SimDuration::from_secs(12));
                let frames: Vec<CapturedFrame> = tap.borrow().clone();
                let fired = flood_alarm(detector, &frames, &tb.endpoints);
                match (with_attacker, fired) {
                    (false, true) => benign_alarms += 1,
                    (true, true) => attack_detected += 1,
                    _ => {}
                }
            }
        }
        table.row(&[
            detector.name().to_string(),
            format!("{benign_alarms}/{SEEDS}"),
            format!("{attack_detected}/{SEEDS}"),
        ]);
        rows.push(Row {
            detector: detector.name().to_string(),
            workload: "benign".to_string(),
            runs_with_alarm: benign_alarms,
            runs: SEEDS,
        });
        rows.push(Row {
            detector: detector.name().to_string(),
            workload: "attack".to_string(),
            runs_with_alarm: attack_detected,
            runs: SEEDS,
        });
    }
    println!("{}", table.render());
    println!(
        "Expected shape (the paper's §3.3 argument): all three catch the flood,\n\
         but only the stateful detector keeps benign churn at zero false alarms —\n\
         global 4xx counting cannot isolate sessions/sources."
    );
    save_json("exp_stateful_ablation", &rows);
}
