//! **Experiment C1 (extension) — cooperative detection, paper §6.**
//!
//! The fake-IM attack in both variants, against the paper's single
//! endpoint IDS and against the §6 architecture (one detector per
//! endpoint exchanging event objects). Reproduces the §4.2.2 concession
//! — the spoofed variant evades the endpoint rule — and shows the
//! future-work architecture closing it.

use scidive_attacks::prelude::*;
use scidive_bench::report::{save_json, Table};
use scidive_core::cooperative::{CooperativeCluster, CooperativeConfig, EndpointDetector};
use scidive_core::prelude::*;
use scidive_netsim::link::LinkParams;
use scidive_netsim::time::SimDuration;
use scidive_voip::prelude::*;
use serde::Serialize;

const SEEDS: u64 = 20;

#[derive(Serialize)]
struct Row {
    variant: String,
    solo_detected: u64,
    cluster_detected: u64,
    seeds: u64,
}

fn run_once(seed: u64, spoof_ip: bool) -> (bool, bool) {
    let mut tb = TestbedBuilder::new(seed)
        .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
        .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)])
        .build();
    let ep = tb.endpoints.clone();
    let mut cfg = FakeImConfig::new(
        ep.attacker_ip,
        ep.a_ip,
        ep.b_ip,
        SimDuration::from_millis(500),
    );
    cfg.spoof_ip = spoof_ip;
    tb.add_node(
        "attacker",
        ep.attacker_ip,
        LinkParams::lan(),
        Box::new(FakeImAttacker::new(cfg)),
    );
    tb.run_for(SimDuration::from_secs(2));

    // Solo (hub-tap) endpoint IDS.
    let mut solo_cfg = ScidiveConfig::default();
    solo_cfg.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let mut solo = Scidive::new(solo_cfg.clone());
    for rec in tb.sim.trace().records() {
        solo.on_frame(rec.time, &rec.packet);
    }
    let solo_hit = solo.alerts().iter().any(|a| a.rule == "fake-im");

    // Cooperative cluster.
    let coop = CooperativeConfig::default()
        .with_home("alice@lab", "ids-a")
        .with_home("bob@lab", "ids-b");
    let mut cluster = CooperativeCluster::new(
        coop,
        vec![
            EndpointDetector::new("ids-a", ep.a_ip, "ua-a", solo_cfg.clone()),
            EndpointDetector::new("ids-b", ep.b_ip, "ua-b", solo_cfg),
        ],
    );
    let coop_alerts = cluster.process_trace(tb.sim.trace());
    let cluster_hit = coop_alerts.iter().any(|a| a.rule == "coop-forged-im");
    (solo_hit, cluster_hit)
}

fn main() {
    println!("# Experiment C1 (extension) — cooperative detection (§6 future work)");
    println!("# fake-IM attack, {SEEDS} seeds per variant\n");

    let mut table = Table::new(&[
        "Fake-IM variant",
        "Single endpoint IDS",
        "Cooperative cluster",
    ]);
    let mut rows = Vec::new();
    for (name, spoof) in [("From forged only", false), ("From + IP spoofed", true)] {
        let mut solo = 0u64;
        let mut cluster = 0u64;
        for seed in 1..=SEEDS {
            let (s, c) = run_once(seed, spoof);
            solo += u64::from(s);
            cluster += u64::from(c);
        }
        table.row(&[
            name.to_string(),
            format!("{solo}/{SEEDS}"),
            format!("{cluster}/{SEEDS}"),
        ]);
        rows.push(Row {
            variant: name.to_string(),
            solo_detected: solo,
            cluster_detected: cluster,
            seeds: SEEDS,
        });
    }
    println!("{}", table.render());
    println!(
        "Expected shape: the spoofed variant drops to 0/{SEEDS} at the single\n\
         endpoint (the paper's §4.2.2 concession) while the cluster stays at\n\
         {SEEDS}/{SEEDS} — the impersonated host's own detector knows it sent nothing,\n\
         and no IP spoofing can fake that absence."
    );
    save_json("exp_cooperative", &rows);
}
