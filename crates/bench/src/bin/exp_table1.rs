//! **Experiment T1 — Table 1**: the four implemented attacks (plus the
//! three motivating scenarios of §3.2/§3.3), each run against the full
//! SCIDIVE ruleset over many seeds.
//!
//! Reproduces the paper's Table 1 columns (protocols involved,
//! cross-protocol?, stateful?, rule) and adds the measured columns the
//! paper describes qualitatively: detection rate, mean detection delay,
//! and false alarms. Pass `--trace` to also print the Figure 5–8 style
//! message ladders (one seed per attack).

use scidive_bench::harness::{run_attack, run_benign, AttackKind, ScenarioOptions};
use scidive_bench::ladder;
use scidive_bench::report::{f2, save_json, Table};
use scidive_core::metrics::RateAccumulator;
use scidive_core::rules::{builtin_ruleset, RuleToggles};
use serde::Serialize;

const SEEDS: u64 = 25;

#[derive(Serialize)]
struct Row {
    attack: String,
    protocols: String,
    cross_protocol: bool,
    stateful: bool,
    rule: String,
    detected: u64,
    injected: u64,
    mean_delay_ms: Option<f64>,
    false_alarms: u64,
}

fn main() {
    let trace_mode = std::env::args().any(|a| a == "--trace");
    let opts = ScenarioOptions::default();
    let rules = builtin_ruleset(&RuleToggles::default());

    println!("# Experiment T1 — Table 1: attacks vs. the SCIDIVE ruleset");
    println!("# {SEEDS} seeds per attack; LAN links (uniform 0.1–0.8 ms)\n");

    let mut table = Table::new(&[
        "Attack",
        "Protocols",
        "Cross-protocol?",
        "Stateful?",
        "Rule",
        "Detected",
        "Mean delay (ms)",
        "False alarms",
    ]);
    let mut rows = Vec::new();

    for kind in AttackKind::ALL {
        let mut acc = RateAccumulator::default();
        for seed in 1..=SEEDS {
            let outcome = run_attack(kind, seed, &opts);
            acc.add(&outcome.report);
        }
        let rule = rules
            .iter()
            .find(|r| r.id() == kind.expect_rule())
            .expect("rule exists");
        table.row(&[
            kind.name().to_string(),
            kind.protocols().to_string(),
            if rule.is_cross_protocol() { "Yes" } else { "No" }.to_string(),
            if rule.is_stateful() { "Yes" } else { "No" }.to_string(),
            kind.expect_rule().to_string(),
            format!("{}/{}", acc.detected, acc.injected),
            acc.mean_delay_ms().map(f2).unwrap_or_else(|| "-".to_string()),
            acc.false_alarms.to_string(),
        ]);
        rows.push(Row {
            attack: kind.name().to_string(),
            protocols: kind.protocols().to_string(),
            cross_protocol: rule.is_cross_protocol(),
            stateful: rule.is_stateful(),
            rule: kind.expect_rule().to_string(),
            detected: acc.detected,
            injected: acc.injected,
            mean_delay_ms: acc.mean_delay_ms(),
            false_alarms: acc.false_alarms,
        });
    }
    println!("{}", table.render());

    // Benign control: the same ruleset over attack-free runs.
    let mut benign_alarms = 0usize;
    for seed in 1..=SEEDS {
        benign_alarms += run_benign(seed, &opts).len();
    }
    println!("Benign control ({SEEDS} runs, no attacker): {benign_alarms} critical alert(s)\n");

    save_json("exp_table1", &rows);

    if trace_mode {
        for kind in [
            AttackKind::Bye,
            AttackKind::FakeIm,
            AttackKind::Hijack,
            AttackKind::RtpFlood,
        ] {
            let outcome = run_attack(kind, 1, &opts);
            println!("## Figure — {} (seed 1)", kind.name());
            println!("{}", ladder::render(&outcome.trace, 100));
            for alert in &outcome.alerts {
                println!("ALERT {alert}");
            }
            println!();
        }
    }
}
