//! **Experiment A3 — §4.3.1 false-alarm probability `P_f`.**
//!
//! "It is possible for a valid BYE message to arrive before the RTP
//! packet if, for instance, they take a different route ... P_f =
//! Pr{N_sip < N_rtp}", which is exactly ½ for i.i.d. continuous delays.
//!
//! Two parts:
//!
//! 1. **Model**: `P_f = Pr{N_sip < N_rtp}` by numeric integration and
//!    Monte Carlo across delay-distribution pairs — reproducing the ½
//!    result and its asymmetric variants.
//! 2. **Simulator**: benign calls where the caller hangs up normally.
//!    A false alarm needs the genuine BYE to overtake the last
//!    in-flight RTP packet at the tap; with a well-behaved client that
//!    stops media before sending BYE, this needs delay variance. We
//!    sweep the tap's delay spread and report the observed rate
//!    alongside the model's prediction for the same race (the paper's
//!    zero-gap assumption is the worst case, so the simulated rate must
//!    stay below the ½ bound).

use scidive_analysis::dist::ContDist;
use scidive_analysis::false_alarm::{p_false_monte_carlo, p_false_numeric};
use scidive_bench::harness::{run_benign, ScenarioOptions};
use scidive_bench::report::{p3, save_json, Table};
use scidive_netsim::dist::DelayDist;
use scidive_netsim::link::LinkParams;
use serde::Serialize;

const SEEDS: u64 = 200;

#[derive(Serialize)]
struct ModelRow {
    n_sip: String,
    n_rtp: String,
    numeric: f64,
    monte_carlo: f64,
}

#[derive(Serialize)]
struct SimRow {
    tap_delay: String,
    false_alarm_rate: f64,
    runs: u64,
}

fn main() {
    println!("# Experiment A3 — §4.3.1 false-alarm probability P_f\n");
    println!("## Model: P_f = Pr{{N_sip < N_rtp}} (genuine BYE overtakes the last RTP packet)\n");

    let pairs = [
        (
            "exp mean 5",
            ContDist::Exponential { mean: 5.0 },
            "exp mean 5",
            ContDist::Exponential { mean: 5.0 },
        ),
        (
            "uniform 0–10",
            ContDist::Uniform { lo: 0.0, hi: 10.0 },
            "uniform 0–10",
            ContDist::Uniform { lo: 0.0, hi: 10.0 },
        ),
        (
            "normal 5±1",
            ContDist::Normal { mean: 5.0, std: 1.0 },
            "normal 5±1",
            ContDist::Normal { mean: 5.0, std: 1.0 },
        ),
        (
            "exp mean 2 (fast SIP)",
            ContDist::Exponential { mean: 2.0 },
            "exp mean 8",
            ContDist::Exponential { mean: 8.0 },
        ),
        (
            "exp mean 8 (slow SIP)",
            ContDist::Exponential { mean: 8.0 },
            "exp mean 2",
            ContDist::Exponential { mean: 2.0 },
        ),
    ];
    let mut table = Table::new(&["N_sip", "N_rtp", "P_f numeric", "P_f Monte Carlo"]);
    let mut model_rows = Vec::new();
    for (sname, sip, rname, rtp) in &pairs {
        let numeric = p_false_numeric(sip, rtp);
        let mc = p_false_monte_carlo(sip, rtp, 400_000, 99);
        table.row(&[
            sname.to_string(),
            rname.to_string(),
            p3(numeric),
            p3(mc),
        ]);
        model_rows.push(ModelRow {
            n_sip: sname.to_string(),
            n_rtp: rname.to_string(),
            numeric,
            monte_carlo: mc,
        });
    }
    println!("{}", table.render());
    println!("Paper: for i.i.d. delays ∫F_N·f_N dt = 1/2 — the race is a coin flip;\na faster SIP path makes the false alarm *more* likely (the BYE wins more races).\n");

    println!("## Simulator: benign hangups across tap-delay spreads ({SEEDS} runs each)\n");
    let sweeps = [
        ("uniform 0.1–0.8 ms (LAN)", DelayDist::uniform_ms(0.1, 0.8)),
        ("exponential mean 5 ms", DelayDist::exponential_ms(5.0)),
        ("exponential mean 15 ms", DelayDist::exponential_ms(15.0)),
        ("exponential mean 30 ms", DelayDist::exponential_ms(30.0)),
    ];
    let mut table = Table::new(&["Tap link delay", "Simulated P_f", "False-alarm runs"]);
    let mut sim_rows = Vec::new();
    for (name, dist) in &sweeps {
        let opts = ScenarioOptions {
            link: LinkParams::lan(),
            tap_link: Some(LinkParams::new(*dist)),
            ..ScenarioOptions::default()
        };
        let mut false_runs = 0u64;
        for seed in 1..=SEEDS {
            let alarms = run_benign(seed, &opts);
            if alarms.iter().any(|a| a.rule == "bye-attack") {
                false_runs += 1;
            }
        }
        let rate = false_runs as f64 / SEEDS as f64;
        table.row(&[name.to_string(), p3(rate), format!("{false_runs}/{SEEDS}")]);
        sim_rows.push(SimRow {
            tap_delay: name.to_string(),
            false_alarm_rate: rate,
            runs: SEEDS,
        });
    }
    println!("{}", table.render());
    println!(
        "Shape check: the rate grows with delay variance (more reordering).\n\
         On a LAN it is ~0 because the client stops media up to one RTP\n\
         period before its BYE, so the BYE rarely overtakes. Once delays\n\
         become comparable to the 20 ms RTP period, *several* media packets\n\
         are in flight at hang-up time and the BYE races all of them — the\n\
         observed rate can then exceed the paper's single-packet ½ figure."
    );
    save_json(
        "exp_false_alarm",
        &serde_json::json!({ "model": model_rows, "simulated": sim_rows }),
    );
}
