//! **Experiment P2** — per-stage cycle budget of the detection pipeline.
//!
//! Replays a deterministic proxied-signalling capture and times the
//! four pipeline stages in isolation: **distill** (frame → footprint,
//! both the fast SWAR scanner path and the retained byte-at-a-time
//! reference), **attribute** (footprint → session/shard via
//! [`SessionRouter`]), **generate** (footprint → events against the
//! trail store), and **match** (event → alerts through the compiled
//! ruleset). Each stage is measured on its own fresh state with the
//! upstream stages' output precomputed, so the numbers are a per-stage
//! budget rather than a whole-pipeline blend.
//!
//! Writes `BENCH_pipeline.json` and `results/pipeline_stages.txt`. With
//! `--gate <x>` (what `scripts/ci.sh` passes) exits nonzero unless the
//! fast distill path is at least `x` times the reference tokenizer on
//! the same harness — the reference impls are the pre-optimization
//! parser and checksum kept byte-identical in-tree, so the gate holds
//! on any machine. `--test` runs one quick iteration and writes
//! nothing.

use scidive_bench::report::{f2, Table};
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use serde::Serialize;
use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::time::Instant;

/// Minimum duration of one timed sample: a single pass over these small
/// captures runs in microseconds, where timer quantization dwarfs the
/// effect measured, so each sample times `reps` back-to-back passes.
const SAMPLE_FLOOR_SECS: f64 = 0.01;

/// Registration handshakes in the capture. Calls dominate on purpose:
/// an endpoint registers once an hour but places calls continuously, so
/// a tap sees far more dialog traffic than registration traffic.
const REGISTRATIONS: usize = 8;
/// Proxied call setups in the capture.
const CALLS: usize = 24;

/// A deterministic signalling-plane capture with the decoration real
/// proxy paths stamp on traffic: `REGISTRATIONS` registration
/// handshakes (REGISTER → 401 → REGISTER+digest → 200) and `CALLS`
/// proxied call setups (INVITE+SDP → 180 → 200+SDP → ACK → BYE → 200),
/// every message carrying Via chains, Record-Route, agent, capability,
/// and auth headers. Signalling-heavy on purpose: the distill speedup
/// gate compares the SWAR parser against the retained reference on the
/// traffic class where header parsing dominates, rather than letting
/// RTP frames (near-identical on both paths) dilute the ratio.
fn capture() -> Vec<(SimTime, IpPacket)> {
    let registrar = Ipv4Addr::new(10, 0, 0, 2);
    let mut frames: Vec<(SimTime, IpPacket)> = Vec::new();
    let mut push = |src: Ipv4Addr, dst: Ipv4Addr, text: String| {
        let t = SimTime::from_millis(frames.len() as u64 * 5);
        frames.push((t, IpPacket::udp(src, 5060, dst, 5060, text.into_bytes())));
    };

    for i in 0..REGISTRATIONS {
        let ua = Ipv4Addr::new(10, 0, 1, i as u8 + 1);
        let vias = format!(
            "Via: SIP/2.0/UDP proxy1.lab.example.com:5060;branch=z9hG4bKp1reg{i};received=10.0.0.1\r\n\
             Via: SIP/2.0/UDP {ua}:5060;branch=z9hG4bKuareg{i}\r\n"
        );
        let identity = format!(
            "From: \"User {i}\" <sip:user{i}@lab.example.com>;tag=reg{i}a\r\n\
             To: <sip:user{i}@lab.example.com>\r\n\
             Call-ID: reg{i}-843c76e66710@pc{i}.lab.example.com\r\n"
        );
        let agent = "User-Agent: SoftPhone/2.3.1 (LabOS 11.4; en-US)\r\n\
             Supported: path, gruu, outbound\r\n\
             Allow: INVITE, ACK, CANCEL, OPTIONS, BYE, REFER, SUBSCRIBE, NOTIFY, INFO\r\n";
        push(
            ua,
            registrar,
            format!(
                "REGISTER sip:registrar.lab.example.com SIP/2.0\r\n{vias}Max-Forwards: 69\r\n\
                 {identity}CSeq: 1 REGISTER\r\n\
                 Contact: <sip:user{i}@{ua}:5060>;+sip.instance=\"<urn:uuid:0000-{i}>\"\r\n\
                 {agent}Expires: 3600\r\nContent-Length: 0\r\n\r\n"
            ),
        );
        push(
            registrar,
            ua,
            format!(
                "SIP/2.0 401 Unauthorized\r\n{vias}\
                 {identity}CSeq: 1 REGISTER\r\n\
                 WWW-Authenticate: Digest realm=\"lab.example.com\", qop=\"auth\", \
                 nonce=\"dcd98b7102dd2f0e8b11d0f600bfb0c{i:03}\", \
                 opaque=\"5ccc069c403ebaf9f0171e9517f40e41\", algorithm=MD5\r\n\
                 Server: Registrar/4.2\r\nContent-Length: 0\r\n\r\n"
            ),
        );
        push(
            ua,
            registrar,
            format!(
                "REGISTER sip:registrar.lab.example.com SIP/2.0\r\n{vias}Max-Forwards: 69\r\n\
                 {identity}CSeq: 2 REGISTER\r\n\
                 Contact: <sip:user{i}@{ua}:5060>;+sip.instance=\"<urn:uuid:0000-{i}>\"\r\n\
                 Authorization: Digest username=\"user{i}\", realm=\"lab.example.com\", \
                 nonce=\"dcd98b7102dd2f0e8b11d0f600bfb0c{i:03}\", \
                 uri=\"sip:registrar.lab.example.com\", qop=auth, nc=00000001, \
                 cnonce=\"0a4f113b\", response=\"6629fae49393a05397450978507c4ef1\", \
                 opaque=\"5ccc069c403ebaf9f0171e9517f40e41\", algorithm=MD5\r\n\
                 {agent}Expires: 3600\r\nContent-Length: 0\r\n\r\n"
            ),
        );
        push(
            registrar,
            ua,
            format!(
                "SIP/2.0 200 OK\r\n{vias}\
                 {identity}CSeq: 2 REGISTER\r\n\
                 Contact: <sip:user{i}@{ua}:5060>;expires=3600\r\n\
                 Date: Fri, 08 Aug 2026 12:00:00 GMT\r\n\
                 Server: Registrar/4.2\r\nContent-Length: 0\r\n\r\n"
            ),
        );
    }

    for j in 0..CALLS {
        let caller = Ipv4Addr::new(10, 0, 1, j as u8 + 1);
        let callee = Ipv4Addr::new(10, 0, 1, j as u8 + 13);
        let vias = format!(
            "Via: SIP/2.0/UDP proxy2.lab.example.com:5060;branch=z9hG4bKp2call{j}\r\n\
             Via: SIP/2.0/UDP proxy1.lab.example.com:5060;branch=z9hG4bKp1call{j};received=10.0.0.1\r\n\
             Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuacall{j}\r\n"
        );
        let routes = "Record-Route: <sip:proxy2.lab.example.com;lr>\r\n\
             Record-Route: <sip:proxy1.lab.example.com;lr>\r\n";
        let identity = format!(
            "From: \"User {j}\" <sip:user{j}@lab.example.com>;tag=call{j}a\r\n\
             To: <sip:user{n}@lab.example.com>\r\n\
             Call-ID: call{j}-a84b4c76e66710@pc{j}.lab.example.com\r\n",
            n = j + 12
        );
        let answered = format!(
            "From: \"User {j}\" <sip:user{j}@lab.example.com>;tag=call{j}a\r\n\
             To: <sip:user{n}@lab.example.com>;tag=call{j}b\r\n\
             Call-ID: call{j}-a84b4c76e66710@pc{j}.lab.example.com\r\n",
            n = j + 12
        );
        let sdp = |host: Ipv4Addr, port: u16| {
            format!(
                "v=0\r\no=user{j} 2890844526 2890844526 IN IP4 {host}\r\ns=Call\r\n\
                 c=IN IP4 {host}\r\nt=0 0\r\nm=audio {port} RTP/AVP 96 9 8 0 101\r\n\
                 a=rtpmap:96 opus/48000/2\r\na=fmtp:96 minptime=10;useinbandfec=1\r\n\
                 a=rtpmap:9 G722/8000\r\na=rtpmap:8 PCMA/8000\r\na=rtpmap:0 PCMU/8000\r\n\
                 a=rtpmap:101 telephone-event/8000\r\na=fmtp:101 0-16\r\n\
                 a=ssrc:1234{j} cname:user{j}@pc{j}.lab.example.com\r\n\
                 a=sendrecv\r\na=ptime:20\r\na=maxptime:40\r\na=rtcp-mux\r\n"
            )
        };
        let offer = sdp(caller, 49170 + 2 * j as u16);
        push(
            caller,
            callee,
            format!(
                "INVITE sip:user{n}@lab.example.com SIP/2.0\r\n{vias}{routes}Max-Forwards: 68\r\n\
                 {identity}CSeq: 101 INVITE\r\n\
                 Contact: <sip:user{j}@{caller}:5060>\r\n\
                 User-Agent: SoftPhone/2.3.1 (LabOS 11.4; en-US)\r\n\
                 Allow: INVITE, ACK, CANCEL, OPTIONS, BYE, REFER, SUBSCRIBE, NOTIFY, INFO\r\n\
                 Supported: replaces, timer, 100rel\r\n\
                 Session-Expires: 1800;refresher=uac\r\n\
                 Content-Type: application/sdp\r\nContent-Length: {len}\r\n\r\n{offer}",
                n = j + 12,
                len = offer.len()
            ),
        );
        push(
            callee,
            caller,
            format!(
                "SIP/2.0 180 Ringing\r\n{vias}{routes}\
                 {answered}CSeq: 101 INVITE\r\n\
                 Contact: <sip:user{n}@{callee}:5060>\r\nContent-Length: 0\r\n\r\n",
                n = j + 12
            ),
        );
        let answer = sdp(callee, 49270 + 2 * j as u16);
        push(
            callee,
            caller,
            format!(
                "SIP/2.0 200 OK\r\n{vias}{routes}\
                 {answered}CSeq: 101 INVITE\r\n\
                 Contact: <sip:user{n}@{callee}:5060>\r\n\
                 Allow: INVITE, ACK, CANCEL, OPTIONS, BYE, REFER, SUBSCRIBE, NOTIFY, INFO\r\n\
                 Content-Type: application/sdp\r\nContent-Length: {len}\r\n\r\n{answer}",
                n = j + 12,
                len = answer.len()
            ),
        );
        push(
            caller,
            callee,
            format!(
                "ACK sip:user{n}@{callee}:5060 SIP/2.0\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuaack{j}\r\n\
                 Route: <sip:proxy1.lab.example.com;lr>\r\n\
                 Route: <sip:proxy2.lab.example.com;lr>\r\nMax-Forwards: 70\r\n\
                 {answered}CSeq: 101 ACK\r\nContent-Length: 0\r\n\r\n",
                n = j + 12
            ),
        );
        // Session-timer refresh mid-dialog (`Session-Expires` with the
        // caller as refresher): a re-INVITE carrying the full offer
        // again, answered with the full answer.
        push(
            caller,
            callee,
            format!(
                "INVITE sip:user{n}@{callee}:5060 SIP/2.0\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuarefr{j}\r\n\
                 Route: <sip:proxy1.lab.example.com;lr>\r\n\
                 Route: <sip:proxy2.lab.example.com;lr>\r\nMax-Forwards: 70\r\n\
                 {answered}CSeq: 102 INVITE\r\n\
                 Contact: <sip:user{j}@{caller}:5060>\r\n\
                 Supported: replaces, timer, 100rel\r\n\
                 Session-Expires: 1800;refresher=uac\r\n\
                 Content-Type: application/sdp\r\nContent-Length: {len}\r\n\r\n{offer}",
                n = j + 12,
                len = offer.len()
            ),
        );
        push(
            callee,
            caller,
            format!(
                "SIP/2.0 200 OK\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuarefr{j}\r\n\
                 {answered}CSeq: 102 INVITE\r\n\
                 Contact: <sip:user{n}@{callee}:5060>\r\n\
                 Content-Type: application/sdp\r\nContent-Length: {len}\r\n\r\n{answer}",
                n = j + 12,
                len = answer.len()
            ),
        );
        push(
            caller,
            callee,
            format!(
                "ACK sip:user{n}@{callee}:5060 SIP/2.0\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuaack2{j}\r\n\
                 Route: <sip:proxy1.lab.example.com;lr>\r\n\
                 Route: <sip:proxy2.lab.example.com;lr>\r\nMax-Forwards: 70\r\n\
                 {answered}CSeq: 102 ACK\r\nContent-Length: 0\r\n\r\n",
                n = j + 12
            ),
        );
        push(
            caller,
            callee,
            format!(
                "BYE sip:user{n}@{callee}:5060 SIP/2.0\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuabye{j}\r\n\
                 Route: <sip:proxy1.lab.example.com;lr>\r\n\
                 Route: <sip:proxy2.lab.example.com;lr>\r\nMax-Forwards: 70\r\n\
                 {answered}CSeq: 103 BYE\r\nContent-Length: 0\r\n\r\n",
                n = j + 12
            ),
        );
        push(
            callee,
            caller,
            format!(
                "SIP/2.0 200 OK\r\n\
                 Via: SIP/2.0/UDP {caller}:5060;branch=z9hG4bKuabye{j}\r\n\
                 {answered}CSeq: 103 BYE\r\nContent-Length: 0\r\n\r\n"
            ),
        );
    }
    frames
}

fn distiller(reference: bool) -> Distiller {
    let config = DistillerConfig {
        reference_impl: reference,
        ..DistillerConfig::default()
    };
    Distiller::new(config)
}

/// One distill pass: every frame through a fresh distiller.
fn distill_pass(frames: &[(SimTime, IpPacket)], reference: bool) -> f64 {
    let mut d = distiller(reference);
    let start = Instant::now();
    for (t, p) in frames {
        std::hint::black_box(d.distill(*t, p));
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(d.stats());
    elapsed
}

/// One attribution pass: every footprint through a fresh single-shard
/// router (session resolution + media-index learning + shard pick).
fn attribute_pass(fps: &[Footprint]) -> f64 {
    let mut router = SessionRouter::new(1);
    let start = Instant::now();
    for fp in fps {
        std::hint::black_box(router.route(fp));
    }
    start.elapsed().as_secs_f64()
}

/// One generation pass: every footprint into a fresh trail store and
/// event generator (the engine's exact insert → on_footprint sequence).
fn generate_pass(fps: &[Footprint]) -> f64 {
    let mut trails = TrailStore::new(TrailStoreConfig::default());
    let mut events = EventGenerator::new(EventGenConfig::default());
    let mut produced = 0usize;
    let start = Instant::now();
    for fp in fps {
        let (fp, key) = trails.insert(fp.clone());
        produced += events.on_footprint(&fp, &key, &trails).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(produced);
    elapsed
}

/// One matching pass: the harvested event stream through a fresh
/// compiled built-in ruleset.
fn match_pass(events: &[Event], trails: &TrailStore) -> f64 {
    let mut rules = CompiledRuleset::new(builtin_ruleset(&RuleToggles::default()), false);
    let mut alerts = Vec::new();
    let rates = &scidive_core::rate::RateHub::default();
    let start = Instant::now();
    {
        let mut sink = AlertSink::new(&mut alerts);
        for ev in events {
            let ctx = RuleCtx {
                now: ev.time,
                trails,
                rates,
            };
            rules.dispatch(ev, &ctx, &mut sink);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(alerts.len());
    elapsed
}

/// Passes needed for one timed sample to clear [`SAMPLE_FLOOR_SECS`],
/// from a rough single-pass measurement taken after warmup.
fn calibrate(rough: f64) -> usize {
    ((SAMPLE_FLOOR_SECS / rough.max(1e-7)).ceil() as usize).max(1)
}

/// One sample: the mean over `reps` back-to-back passes.
fn sample(pass: &mut dyn FnMut() -> f64, reps: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        total += pass();
    }
    total / reps as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Medians one stage: warmup, calibrate, then `iters` samples.
fn measure(pass: &mut dyn FnMut() -> f64, iters: usize, warmup: usize) -> (f64, usize) {
    for _ in 0..warmup {
        pass();
    }
    let reps = calibrate(pass());
    let mut samples_v = Vec::with_capacity(iters);
    for _ in 0..iters {
        samples_v.push(sample(pass, reps));
    }
    (median(&mut samples_v), reps)
}

#[derive(Serialize)]
struct StageRow {
    stage: String,
    unit: String,
    units_per_pass: u64,
    reps_per_sample: usize,
    median_ms: f64,
    per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    capture: String,
    frames: usize,
    footprints: usize,
    events: usize,
    iterations: usize,
    stages: Vec<StageRow>,
    distill_speedup_vs_reference: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--gate takes a speedup factor"));

    let (iters, warmup) = if test_mode { (1, 0) } else { (31, 3) };
    let frames = capture();

    // Precompute each stage's input once (fast path): footprints for
    // attribute/generate, the harvested event stream + trails for match.
    let mut d = distiller(false);
    let fps: Vec<Footprint> = frames.iter().filter_map(|(t, p)| d.distill(*t, p)).collect();
    let mut harvester = Scidive::new(ScidiveConfig::default());
    harvester.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let events = harvester.drain_events();
    let trails = harvester.trails();

    let mut out = String::new();
    let _ = writeln!(out, "# Pipeline stage budget (exp_pipeline)");
    let _ = writeln!(
        out,
        "# proxied-signalling capture ({REGISTRATIONS} registrations + {CALLS} calls), \
         {} frames -> {} footprints -> {} events; {iters} samples per stage, \
         median reported; each sample calibrated to >= {:.0} ms",
        frames.len(),
        fps.len(),
        events.len(),
        SAMPLE_FLOOR_SECS * 1_000.0
    );
    let _ = writeln!(
        out,
        "# distill(reference) is the retained pre-optimization tokenizer+checksum, same harness\n"
    );

    // Interleave the two distill modes so drift hits both equally; the
    // other stages have no paired mode and run straight.
    for _ in 0..warmup {
        distill_pass(&frames, false);
        distill_pass(&frames, true);
    }
    let fast_reps = calibrate(distill_pass(&frames, false));
    let ref_reps = calibrate(distill_pass(&frames, true));
    let mut fast = Vec::with_capacity(iters);
    let mut reference = Vec::with_capacity(iters);
    for _ in 0..iters {
        reference.push(sample(&mut || distill_pass(&frames, true), ref_reps));
        fast.push(sample(&mut || distill_pass(&frames, false), fast_reps));
    }
    let fast_med = median(&mut fast);
    let ref_med = median(&mut reference);

    let (attr_med, attr_reps) = measure(&mut || attribute_pass(&fps), iters, warmup);
    let (gen_med, gen_reps) = measure(&mut || generate_pass(&fps), iters, warmup);
    let (match_med, match_reps) = measure(&mut || match_pass(&events, trails), iters, warmup);

    let stage = |name: &str, unit: &str, n: usize, reps: usize, med: f64| StageRow {
        stage: name.to_string(),
        unit: unit.to_string(),
        units_per_pass: n as u64,
        reps_per_sample: reps,
        median_ms: med * 1_000.0,
        per_sec: n as f64 / med,
    };
    let stages = vec![
        stage("distill", "frames", frames.len(), fast_reps, fast_med),
        stage("distill(reference)", "frames", frames.len(), ref_reps, ref_med),
        stage("attribute", "footprints", fps.len(), attr_reps, attr_med),
        stage("generate", "footprints", fps.len(), gen_reps, gen_med),
        stage("match", "events", events.len(), match_reps, match_med),
    ];

    let mut table = Table::new(&["stage", "unit", "units/pass", "reps", "median ms", "units/sec"]);
    for s in &stages {
        table.row(&[
            s.stage.clone(),
            s.unit.clone(),
            s.units_per_pass.to_string(),
            s.reps_per_sample.to_string(),
            format!("{:.4}", s.median_ms),
            format!("{:.0}", s.per_sec),
        ]);
    }
    let _ = writeln!(out, "{}", table.render());

    let speedup = ref_med / fast_med;
    let _ = writeln!(
        out,
        "distill fast vs reference: {}x (SWAR header scan + dispatch tables + pooled buffers)",
        f2(speedup)
    );

    print!("{out}");

    if !test_mode {
        let report = BenchReport {
            capture: "proxied-signalling".to_string(),
            frames: frames.len(),
            footprints: fps.len(),
            events: events.len(),
            iterations: iters,
            stages,
            distill_speedup_vs_reference: speedup,
        };
        // `cargo run` may set the CWD to the package dir; anchor the
        // artifacts at the workspace root like the other exp_* binaries.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::write(root.join("BENCH_pipeline.json"), json + "\n")
            .expect("write BENCH_pipeline.json");
        let results = root.join("results");
        let _ = std::fs::create_dir_all(&results);
        let _ = std::fs::write(results.join("pipeline_stages.txt"), &out);
    }

    if let Some(min_speedup) = gate {
        if speedup < min_speedup {
            eprintln!(
                "FAIL: distill speedup {}x over the reference tokenizer is below the {min_speedup}x gate",
                f2(speedup)
            );
            std::process::exit(1);
        }
        println!("gate ok: distill speedup {}x >= {min_speedup}x", f2(speedup));
    }
}
