//! **Experiment C1** — capacity: engine state vs session scale.
//!
//! Drives the template-stamped mass-dialog synthesizer
//! ([`scidive_voip::synth`]) through a sketch-mode pipeline
//! (`exact_rate_state = false`) at a ladder of scales — 10 k, 100 k and
//! 1 M dialogs — and records, per rung, throughput (frames/s, events/s)
//! and the state gauges: bytes pinned by the constant-memory rate
//! trackers, rule-map session entries, and the peak trail count.
//!
//! With `--shards N` (what `scripts/ci.sh` passes, at 4) each rung runs
//! the sharded deployment with the global rate fold plane on, and the
//! report carries the **global-hub bytes alongside the summed per-shard
//! bytes**: both must be constant across the ladder, the fold plane
//! under the same hard cap `tests/soak.rs` enforces and the per-shard
//! sum under `shards x` that cap. Without the flag a single engine runs
//! and the fold column reads zero.
//!
//! The headline claim the artifact documents: **rate-tracker bytes are
//! identical on every rung** — two orders of magnitude more dialogs and
//! registration churn leave the flood/guess/rapid-connect detection
//! state untouched — while throughput stays flat. Writes
//! `BENCH_capacity.json` at the workspace root and
//! `results/capacity.txt`. With `--gate` exits nonzero unless the
//! constancy and cap checks hold. `--test` runs a two-rung miniature
//! and writes nothing.

use scidive_bench::report::{f2, Table};
use scidive_core::prelude::*;
use scidive_netsim::time::SimDuration;
use scidive_voip::synth::SynthConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// Must match `RATE_BYTES_CAP` in `tests/soak.rs`. Applies per engine
/// (so `shards x` it for the per-shard sum) and to the global fold hub.
const RATE_BYTES_CAP: u64 = 2 * 1024 * 1024;

#[derive(Serialize)]
struct Rung {
    dialogs: u64,
    concurrent: u64,
    shards: u64,
    frames: u64,
    events: u64,
    wall_secs: f64,
    frames_per_sec: f64,
    events_per_sec: f64,
    rate_trackers: u64,
    rate_bytes: u64,
    fold_rate_bytes: u64,
    rule_state: u64,
    peak_trails: u64,
    peak_retained_footprints: u64,
    alerts: u64,
}

#[derive(Serialize)]
struct BenchReport {
    mode: String,
    shards: u64,
    rungs: Vec<Rung>,
    rate_bytes_constant: bool,
    fold_rate_bytes_constant: bool,
    rate_bytes_cap: u64,
}

fn rung_config(synth: &SynthConfig) -> ScidiveConfig {
    // Keep retention windows inside the run so steady-state (not
    // everything-since-start) is what the gauges measure.
    let span = synth.span();
    let window = SimDuration::from_micros((span.as_micros() / 16).clamp(2_000_000, 60_000_000));
    let mut config = ScidiveConfig {
        exact_rate_state: false,
        ..ScidiveConfig::default()
    };
    config.trails.idle_timeout = window;
    config.events.identity_timeout = window;
    config
}

fn run_rung(dialogs: u64, shards: usize) -> Rung {
    let concurrent = (dialogs / 4).max(64);
    let mut synth = SynthConfig::load(dialogs, concurrent);
    // Stretch the schedule like tests/soak.rs does: the caller pool is
    // fixed, so per-caller call rate — not total load — must stay flat
    // as dialogs scale, or "benign" stops being benign (at 1 ms spacing
    // every caller places ~15 calls per rapid-connect window, which is
    // rapid calling, and the distinct-callee sketch's slot sharing
    // turns the redial exemption off at thousands of active callers).
    // Virtual time is free; wall-clock throughput is unaffected.
    synth.spacing = SimDuration::from_millis(10);
    synth.hold = SimDuration::from_millis(10 * concurrent);
    let config = rung_config(&synth);

    let total = synth.total_frames();
    let sample_every = (total / 16).max(1);
    let mut peak_trails = 0u64;
    let mut peak_retained = 0u64;

    let (wall, stats, gauges) = if shards == 0 {
        let mut ids = Scidive::new(config);
        let start = Instant::now();
        for (n, (time, pkt)) in synth.stream().enumerate() {
            ids.on_frame(time, &pkt);
            if (n as u64 + 1).is_multiple_of(sample_every) {
                let g = ids.gauges();
                peak_trails = peak_trails.max(g.trails);
                peak_retained = peak_retained.max(g.retained_footprints);
            }
        }
        let wall = start.elapsed().as_secs_f64();
        (wall, ids.stats(), ids.gauges())
    } else {
        // Sharded deployment with the global fold plane on (the
        // default): the gauges sum the per-shard trackers and report
        // the dispatcher's global hub separately.
        let mut ids = ShardedScidive::new(config, shards, 64);
        let start = Instant::now();
        for (n, (time, pkt)) in synth.stream().enumerate() {
            ids.submit(time, &pkt);
            if (n as u64 + 1).is_multiple_of(sample_every) {
                let g = ids.observation().gauges;
                peak_trails = peak_trails.max(g.trails);
                peak_retained = peak_retained.max(g.retained_footprints);
            }
        }
        let report = ids.finish();
        let wall = start.elapsed().as_secs_f64();
        (wall, report.stats, report.observation.gauges)
    };
    Rung {
        dialogs,
        concurrent,
        shards: shards as u64,
        frames: stats.frames,
        events: stats.events,
        wall_secs: wall,
        frames_per_sec: stats.frames as f64 / wall,
        events_per_sec: stats.events as f64 / wall,
        rate_trackers: gauges.rate_trackers,
        rate_bytes: gauges.rate_bytes,
        fold_rate_bytes: gauges.fold_rate_bytes,
        rule_state: gauges.rule_state,
        peak_trails,
        peak_retained_footprints: peak_retained,
        alerts: stats.alerts,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let gate = args.iter().any(|a| a == "--gate");
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let ladder: &[u64] = if test_mode {
        &[500, 2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Capacity ladder: state vs session scale (exp_capacity)");
    let deployment = if shards == 0 {
        "single engine".to_string()
    } else {
        format!("{shards}-shard pipeline + global rate fold plane")
    };
    let _ = writeln!(
        out,
        "# sketch mode (exact_rate_state = false), {deployment}, synthetic dialogs + registration churn\n"
    );
    let mut table = Table::new(&[
        "dialogs",
        "concurrent",
        "frames",
        "frames/s",
        "events/s",
        "rate bytes",
        "fold bytes",
        "rule state",
        "peak trails",
    ]);
    let mut rungs = Vec::new();
    for &dialogs in ladder {
        let rung = run_rung(dialogs, shards);
        table.row(&[
            rung.dialogs.to_string(),
            rung.concurrent.to_string(),
            rung.frames.to_string(),
            format!("{:.0}", rung.frames_per_sec),
            format!("{:.0}", rung.events_per_sec),
            rung.rate_bytes.to_string(),
            rung.fold_rate_bytes.to_string(),
            rung.rule_state.to_string(),
            rung.peak_trails.to_string(),
        ]);
        rungs.push(rung);
    }
    let _ = writeln!(out, "{}", table.render());

    let rate_bytes_constant = rungs.windows(2).all(|w| w[0].rate_bytes == w[1].rate_bytes);
    let fold_bytes_constant = rungs
        .windows(2)
        .all(|w| w[0].fold_rate_bytes == w[1].fold_rate_bytes);
    let spread = rungs.last().map(|r| r.dialogs).unwrap_or(0) as f64
        / rungs.first().map(|r| r.dialogs.max(1)).unwrap_or(1) as f64;
    let _ = writeln!(
        out,
        "rate-tracker bytes {} across a {}x session spread (cap {} per engine)",
        if rate_bytes_constant { "constant" } else { "NOT CONSTANT" },
        f2(spread),
        RATE_BYTES_CAP
    );
    if shards > 0 {
        let _ = writeln!(
            out,
            "global fold-hub bytes {} across the ladder (cap {})",
            if fold_bytes_constant { "constant" } else { "NOT CONSTANT" },
            RATE_BYTES_CAP
        );
    }

    print!("{out}");

    // The per-engine cap scales with the shard count (each worker holds
    // its own trackers); the global fold hub gets the single-engine cap.
    let shard_cap = RATE_BYTES_CAP * shards.max(1) as u64;
    let under_cap = rungs.iter().all(|r| r.rate_bytes < shard_cap);
    let fold_under_cap = rungs.iter().all(|r| r.fold_rate_bytes < RATE_BYTES_CAP);
    let fold_materialized = shards == 0 || rungs.iter().all(|r| r.fold_rate_bytes > 0);
    let benign = rungs.iter().all(|r| r.alerts == 0);

    let report = BenchReport {
        mode: if shards == 0 {
            "sketch".to_string()
        } else {
            format!("sketch+fold x{shards}")
        },
        shards: shards as u64,
        rungs,
        rate_bytes_constant,
        fold_rate_bytes_constant: fold_bytes_constant,
        rate_bytes_cap: RATE_BYTES_CAP,
    };
    if test_mode {
        // Exercise serialization without publishing artifacts.
        std::hint::black_box(serde_json::to_string(&report).expect("serialize"));
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::write(root.join("BENCH_capacity.json"), json + "\n")
            .expect("write BENCH_capacity.json");
        let results = root.join("results");
        let _ = std::fs::create_dir_all(&results);
        let _ = std::fs::write(results.join("capacity.txt"), &out);
    }

    if gate {
        if !rate_bytes_constant {
            eprintln!("FAIL: rate-tracker bytes varied across the ladder");
            std::process::exit(1);
        }
        if !fold_bytes_constant {
            eprintln!("FAIL: fold-hub bytes varied across the ladder");
            std::process::exit(1);
        }
        if !under_cap {
            eprintln!("FAIL: rate-tracker bytes broke the {shard_cap}-byte cap");
            std::process::exit(1);
        }
        if !fold_under_cap {
            eprintln!("FAIL: fold-hub bytes broke the {RATE_BYTES_CAP}-byte cap");
            std::process::exit(1);
        }
        if !fold_materialized {
            eprintln!("FAIL: sharded run never materialized the global fold hub");
            std::process::exit(1);
        }
        if !benign {
            eprintln!("FAIL: benign synthetic load raised alerts");
            std::process::exit(1);
        }
        println!(
            "gate ok: rate bytes constant and under {shard_cap}, fold hub under {RATE_BYTES_CAP}, across the ladder"
        );
    }
}
