//! **Experiment C1** — capacity: engine state vs session scale.
//!
//! Drives the template-stamped mass-dialog synthesizer
//! ([`scidive_voip::synth`]) through a single sketch-mode engine
//! (`exact_rate_state = false`) at a ladder of scales — 10 k, 100 k and
//! 1 M dialogs — and records, per rung, throughput (frames/s, events/s)
//! and the state gauges: bytes pinned by the constant-memory rate
//! trackers, rule-map session entries, and the peak trail count.
//!
//! The headline claim the artifact documents: **rate-tracker bytes are
//! identical on every rung** — two orders of magnitude more dialogs and
//! registration churn leave the flood/guess detection state untouched —
//! while throughput stays flat. Writes `BENCH_capacity.json` at the
//! workspace root and `results/capacity.txt`. With `--gate` (what
//! `scripts/ci.sh` passes) exits nonzero unless rate bytes are constant
//! across rungs and under the same hard cap `tests/soak.rs` enforces.
//! `--test` runs a two-rung miniature and writes nothing.

use scidive_bench::report::{f2, Table};
use scidive_core::prelude::*;
use scidive_netsim::time::SimDuration;
use scidive_voip::synth::SynthConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// Must match `RATE_BYTES_CAP` in `tests/soak.rs`.
const RATE_BYTES_CAP: u64 = 2 * 1024 * 1024;

#[derive(Serialize)]
struct Rung {
    dialogs: u64,
    concurrent: u64,
    frames: u64,
    events: u64,
    wall_secs: f64,
    frames_per_sec: f64,
    events_per_sec: f64,
    rate_trackers: u64,
    rate_bytes: u64,
    rule_state: u64,
    peak_trails: u64,
    peak_retained_footprints: u64,
    alerts: u64,
}

#[derive(Serialize)]
struct BenchReport {
    mode: String,
    rungs: Vec<Rung>,
    rate_bytes_constant: bool,
    rate_bytes_cap: u64,
}

fn run_rung(dialogs: u64) -> Rung {
    let concurrent = (dialogs / 4).max(64);
    let mut synth = SynthConfig::load(dialogs, concurrent);
    // Stretch the schedule like tests/soak.rs does: the caller pool is
    // fixed, so per-caller call rate — not total load — must stay flat
    // as dialogs scale, or "benign" stops being benign (at 1 ms spacing
    // every caller places ~15 calls per rapid-connect window, which is
    // rapid calling, and the distinct-callee sketch's slot sharing
    // turns the redial exemption off at thousands of active callers).
    // Virtual time is free; wall-clock throughput is unaffected.
    synth.spacing = SimDuration::from_millis(10);
    synth.hold = SimDuration::from_millis(10 * concurrent);
    let span = synth.span();

    // Keep retention windows inside the run so steady-state (not
    // everything-since-start) is what the gauges measure.
    let window = SimDuration::from_micros((span.as_micros() / 16).clamp(2_000_000, 60_000_000));
    let mut config = ScidiveConfig {
        exact_rate_state: false,
        ..ScidiveConfig::default()
    };
    config.trails.idle_timeout = window;
    config.events.identity_timeout = window;

    let mut ids = Scidive::new(config);
    let total = synth.total_frames();
    let sample_every = (total / 16).max(1);
    let mut peak_trails = 0u64;
    let mut peak_retained = 0u64;
    let start = Instant::now();
    for (n, (time, pkt)) in synth.stream().enumerate() {
        ids.on_frame(time, &pkt);
        if (n as u64 + 1).is_multiple_of(sample_every) {
            let g = ids.gauges();
            peak_trails = peak_trails.max(g.trails);
            peak_retained = peak_retained.max(g.retained_footprints);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = ids.stats();
    let gauges = ids.gauges();
    Rung {
        dialogs,
        concurrent,
        frames: stats.frames,
        events: stats.events,
        wall_secs: wall,
        frames_per_sec: stats.frames as f64 / wall,
        events_per_sec: stats.events as f64 / wall,
        rate_trackers: gauges.rate_trackers,
        rate_bytes: gauges.rate_bytes,
        rule_state: gauges.rule_state,
        peak_trails,
        peak_retained_footprints: peak_retained,
        alerts: stats.alerts,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let gate = args.iter().any(|a| a == "--gate");

    let ladder: &[u64] = if test_mode {
        &[500, 2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Capacity ladder: state vs session scale (exp_capacity)");
    let _ = writeln!(
        out,
        "# sketch mode (exact_rate_state = false), synthetic dialogs + registration churn\n"
    );
    let mut table = Table::new(&[
        "dialogs",
        "concurrent",
        "frames",
        "frames/s",
        "events/s",
        "rate bytes",
        "rule state",
        "peak trails",
    ]);
    let mut rungs = Vec::new();
    for &dialogs in ladder {
        let rung = run_rung(dialogs);
        table.row(&[
            rung.dialogs.to_string(),
            rung.concurrent.to_string(),
            rung.frames.to_string(),
            format!("{:.0}", rung.frames_per_sec),
            format!("{:.0}", rung.events_per_sec),
            rung.rate_bytes.to_string(),
            rung.rule_state.to_string(),
            rung.peak_trails.to_string(),
        ]);
        rungs.push(rung);
    }
    let _ = writeln!(out, "{}", table.render());

    let rate_bytes_constant = rungs.windows(2).all(|w| w[0].rate_bytes == w[1].rate_bytes);
    let spread = rungs.last().map(|r| r.dialogs).unwrap_or(0) as f64
        / rungs.first().map(|r| r.dialogs.max(1)).unwrap_or(1) as f64;
    let _ = writeln!(
        out,
        "rate-tracker bytes {} across a {}x session spread (cap {})",
        if rate_bytes_constant { "constant" } else { "NOT CONSTANT" },
        f2(spread),
        RATE_BYTES_CAP
    );

    print!("{out}");

    let under_cap = rungs.iter().all(|r| r.rate_bytes < RATE_BYTES_CAP);
    let benign = rungs.iter().all(|r| r.alerts == 0);

    let report = BenchReport {
        mode: "sketch".to_string(),
        rungs,
        rate_bytes_constant,
        rate_bytes_cap: RATE_BYTES_CAP,
    };
    if test_mode {
        // Exercise serialization without publishing artifacts.
        std::hint::black_box(serde_json::to_string(&report).expect("serialize"));
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::write(root.join("BENCH_capacity.json"), json + "\n")
            .expect("write BENCH_capacity.json");
        let results = root.join("results");
        let _ = std::fs::create_dir_all(&results);
        let _ = std::fs::write(results.join("capacity.txt"), &out);
    }

    if gate {
        if !rate_bytes_constant {
            eprintln!("FAIL: rate-tracker bytes varied across the ladder");
            std::process::exit(1);
        }
        if !under_cap {
            eprintln!("FAIL: rate-tracker bytes broke the {RATE_BYTES_CAP}-byte cap");
            std::process::exit(1);
        }
        if !benign {
            eprintln!("FAIL: benign synthetic load raised alerts");
            std::process::exit(1);
        }
        println!("gate ok: rate bytes constant and under {RATE_BYTES_CAP} across the ladder");
    }
}
