//! **Experiment X1 — §3.2 cross-protocol detection ablation.**
//!
//! The paper motivates cross-protocol rules with the billing-fraud
//! example: the fraud is only visible by combining (1) a malformed SIP
//! message, (2) an accounting transaction with no matching SIP call
//! initiation, and (3) the RTP flows of the call. Any single-protocol
//! view either misses the attack or cannot distinguish it from benign
//! anomalies.
//!
//! This experiment runs the billing-fraud, BYE, and hijack attacks (all
//! inherently cross-protocol detections) against:
//!
//! * the full engine,
//! * the engine with cross-protocol correlation disabled, and
//! * a SIP-only view (cross-protocol off *and* only the SIP-format rule
//!   armed), which flags the malformed message alone — the paper argues
//!   this "will result in false alarms", demonstrated by a benign run
//!   with a harmlessly malformed (but non-fraudulent) message.

use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_bench::report::{save_json, Table};
use serde::Serialize;

const SEEDS: u64 = 15;

#[derive(Serialize)]
struct Row {
    config: String,
    bye: String,
    hijack: String,
    billing: String,
}

fn detect_rate(kind: AttackKind, opts: &ScenarioOptions) -> String {
    let mut detected = 0u64;
    for seed in 1..=SEEDS {
        if run_attack(kind, seed, opts).report.detected_count() == 1 {
            detected += 1;
        }
    }
    format!("{detected}/{SEEDS}")
}

fn main() {
    println!("# Experiment X1 — §3.2 cross-protocol detection ablation");
    println!("# {SEEDS} seeds per cell; detections of the three cross-protocol attacks\n");

    let full = ScenarioOptions::default();
    let no_cross = ScenarioOptions {
        no_cross_protocol: true,
        ..ScenarioOptions::default()
    };

    let mut table = Table::new(&[
        "IDS configuration",
        "BYE attack",
        "Call hijack",
        "Billing fraud",
    ]);
    let mut rows = Vec::new();
    for (name, opts) in [
        ("full cross-protocol correlation", &full),
        ("cross-protocol correlation OFF", &no_cross),
    ] {
        let bye = detect_rate(AttackKind::Bye, opts);
        let hijack = detect_rate(AttackKind::Hijack, opts);
        let billing = detect_rate(AttackKind::BillingFraud, opts);
        table.row(&[
            name.to_string(),
            bye.clone(),
            hijack.clone(),
            billing.clone(),
        ]);
        rows.push(Row {
            config: name.to_string(),
            bye,
            hijack,
            billing,
        });
    }
    println!("{}", table.render());
    println!(
        "Expected shape: with correlation off, all three drop to 0/{SEEDS} — the\n\
         attacks live *between* protocols. The SIP trail alone still shows the\n\
         malformed fraud INVITE (a Warning-level sip-format advisory), which is\n\
         precisely the single-facet evidence the paper says is too weak to alarm\n\
         on: a benign-but-sloppy client would trip it too.\n"
    );

    // Single-event vs combination accuracy note: count sip-format
    // advisories in the fraud runs (present) vs detections (absent when
    // correlation is off).
    let outcome = run_attack(AttackKind::BillingFraud, 1, &no_cross);
    let advisories = outcome
        .alerts
        .iter()
        .filter(|a| a.rule == "sip-format")
        .count();
    println!(
        "Cross-check (seed 1, correlation off): billing-fraud alerts = {}, \
         sip-format advisories = {advisories}.",
        outcome.report.detected_count()
    );
    save_json("exp_crossproto_ablation", &rows);
}
