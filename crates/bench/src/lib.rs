//! Shared experiment harness for the SCIDIVE reproduction.
//!
//! Each `exp_*` binary regenerates one of the paper's evaluation
//! artifacts (see `DESIGN.md` §5 for the index). The common machinery —
//! building a testbed with an attacker and an endpoint IDS, scoring
//! alerts against ground truth, rendering message ladders — lives here.

#[cfg(feature = "count-allocs")]
pub mod alloc_count;
pub mod harness;
pub mod ladder;
pub mod report;
