//! Scenario runner: testbed + attacker + endpoint IDS in one call.

use scidive_attacks::prelude::*;
use scidive_core::prelude::*;
use scidive_netsim::link::LinkParams;
use scidive_netsim::node::NodeId;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_netsim::trace::Trace;
use scidive_voip::prelude::*;

/// The attack scenarios the experiments cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// §4.2.1 forged BYE.
    Bye,
    /// §4.2.2 fake instant message.
    FakeIm,
    /// §4.2.3 forged re-INVITE hijack.
    Hijack,
    /// §4.2.4 garbage RTP flood.
    RtpFlood,
    /// §3.3 REGISTER-flood DoS.
    RegisterDos,
    /// §3.3 digest brute-force.
    PasswordGuess,
    /// §3.2 billing fraud.
    BillingFraud,
}

impl AttackKind {
    /// All scenarios in paper order (Table 1 rows first).
    pub const ALL: [AttackKind; 7] = [
        AttackKind::Bye,
        AttackKind::FakeIm,
        AttackKind::Hijack,
        AttackKind::RtpFlood,
        AttackKind::RegisterDos,
        AttackKind::PasswordGuess,
        AttackKind::BillingFraud,
    ];

    /// The paper's name for the attack.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Bye => "BYE attack",
            AttackKind::FakeIm => "Fake Instant Messaging",
            AttackKind::Hijack => "Call Hijacking",
            AttackKind::RtpFlood => "RTP attack",
            AttackKind::RegisterDos => "REGISTER-flood DoS",
            AttackKind::PasswordGuess => "Password guessing",
            AttackKind::BillingFraud => "Billing fraud",
        }
    }

    /// Protocols involved, per Table 1.
    pub fn protocols(self) -> &'static str {
        match self {
            AttackKind::Bye => "SIP, RTP",
            AttackKind::FakeIm => "SIP, IP",
            AttackKind::Hijack => "SIP, RTP",
            AttackKind::RtpFlood => "RTP, IP",
            AttackKind::RegisterDos => "SIP",
            AttackKind::PasswordGuess => "SIP",
            AttackKind::BillingFraud => "SIP, RTP, ACCT",
        }
    }

    /// Rules that legitimately also fire during this attack (side
    /// effects, not false alarms): brute-forcing necessarily floods the
    /// registrar with request/4xx churn, so the DoS rule fires too.
    pub fn side_effect_rules(self) -> &'static [&'static str] {
        match self {
            AttackKind::PasswordGuess => &["register-dos"],
            _ => &[],
        }
    }

    /// The rule expected to catch the attack.
    pub fn expect_rule(self) -> &'static str {
        match self {
            AttackKind::Bye => "bye-attack",
            AttackKind::FakeIm => "fake-im",
            AttackKind::Hijack => "call-hijack",
            AttackKind::RtpFlood => "rtp-attack",
            AttackKind::RegisterDos => "register-dos",
            AttackKind::PasswordGuess => "password-guess",
            AttackKind::BillingFraud => "billing-fraud",
        }
    }
}

/// Knobs for one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// Link parameters for every node (incl. the tap, unless overridden).
    pub link: LinkParams,
    /// Link override for the IDS tap.
    pub tap_link: Option<LinkParams>,
    /// How long the scenario runs.
    pub duration: SimDuration,
    /// The IDS monitoring window `m` (§4.3).
    pub monitor_window: SimDuration,
    /// Disable stateful tracking in the IDS (ablation).
    pub stateless_ids: bool,
    /// Disable cross-protocol correlation in the IDS (ablation).
    pub no_cross_protocol: bool,
}

impl Default for ScenarioOptions {
    fn default() -> ScenarioOptions {
        ScenarioOptions {
            link: LinkParams::lan(),
            tap_link: None,
            duration: SimDuration::from_secs(8),
            monitor_window: SimDuration::from_millis(200),
            stateless_ids: false,
            no_cross_protocol: false,
        }
    }
}

/// The outcome of one scenario run.
#[derive(Debug)]
pub struct RunOutcome {
    /// When the attacker actually struck.
    pub injected_at: Option<SimTime>,
    /// Everything the IDS raised.
    pub alerts: Vec<Alert>,
    /// Scored against the expected rule.
    pub report: DetectionReport,
    /// The full wire trace (for ladders).
    pub trace: Trace,
    /// Engine pipeline counters.
    pub stats: PipelineStats,
}

/// Runs one attack scenario with the endpoint IDS deployed; returns the
/// scored outcome.
pub fn run_attack(kind: AttackKind, seed: u64, opts: &ScenarioOptions) -> RunOutcome {
    let mut builder = TestbedBuilder::new(seed).link(opts.link);
    // Scenario-specific testbed setup.
    builder = match kind {
        AttackKind::Bye | AttackKind::Hijack | AttackKind::RtpFlood => {
            builder.standard_call(SimDuration::from_millis(500), None)
        }
        AttackKind::FakeIm => builder
            .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
            .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)]),
        AttackKind::RegisterDos | AttackKind::PasswordGuess => builder
            .with_auth(&[("alice", "pw-alice"), ("bob", "pw-bob")])
            .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
            .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)]),
        AttackKind::BillingFraud => builder
            .with_billing_vuln()
            .a_script(vec![ScriptStep::new(SimDuration::from_millis(10), UaAction::Register)])
            .b_script(vec![ScriptStep::new(SimDuration::from_millis(20), UaAction::Register)]),
    };
    if kind == AttackKind::RtpFlood {
        builder = builder.a_fragile(5);
    }
    let mut tb = builder.build();
    let ep = tb.endpoints.clone();

    // The endpoint IDS on the hub tap.
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.events.monitor_window = opts.monitor_window;
    config.events.stateful = !opts.stateless_ids;
    config.events.cross_protocol = !opts.no_cross_protocol;
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        opts.tap_link.unwrap_or(opts.link),
        Box::new(IdsNode::new(config)),
    );

    // The attacker strikes ~1 s after its trigger, with a per-seed
    // jitter across one RTP period so the strike phase relative to the
    // media clock is uniform — the model's G_sip ~ U(0, 20 ms).
    let jitter_us = (seed.wrapping_mul(0x9E3779B97F4A7C15) >> 16) % 20_000;
    let strike_delay = SimDuration::from_secs(1) + SimDuration::from_micros(jitter_us);
    let attacker = add_attacker(&mut tb, kind, strike_delay);

    tb.run_for(opts.duration);

    let injected_at = fired_at(&tb, kind, attacker);
    let alerts = tb
        .sim
        .node_as::<IdsNode>(ids)
        .expect("ids node")
        .ids()
        .alerts()
        .to_vec();
    let stats = tb.sim.node_as::<IdsNode>(ids).expect("ids node").ids().stats();
    let ground_truth: Vec<InjectedAttack> = injected_at
        .into_iter()
        .map(|t| InjectedAttack::new(kind.expect_rule(), t))
        .collect();
    // Score against the expected rule; known side-effect alerts are
    // removed first so they are not counted as false alarms.
    let side_effects = kind.side_effect_rules();
    let scored: Vec<Alert> = alerts
        .iter()
        .filter(|a| !side_effects.contains(&a.rule.as_str()))
        .cloned()
        .collect();
    let report = DetectionReport::evaluate(&scored, &ground_truth);
    RunOutcome {
        injected_at,
        alerts,
        report,
        trace: tb.sim.trace().clone(),
        stats,
    }
}

fn add_attacker(tb: &mut Testbed, kind: AttackKind, delay: SimDuration) -> NodeId {
    let ep = tb.endpoints.clone();
    let link = LinkParams::lan();
    match kind {
        AttackKind::Bye => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(ByeAttacker::new(ByeAttackConfig::new(
                ep.attacker_ip,
                ep.a_ip,
                ep.b_ip,
                delay,
            ))),
        ),
        AttackKind::Hijack => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(Hijacker::new(HijackConfig::new(
                ep.attacker_ip,
                ep.a_ip,
                ep.b_ip,
                delay,
            ))),
        ),
        AttackKind::FakeIm => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(FakeImAttacker::new(FakeImConfig::new(
                ep.attacker_ip,
                ep.a_ip,
                ep.b_ip,
                delay,
            ))),
        ),
        AttackKind::RtpFlood => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(RtpFlooder::new(RtpFloodConfig::new(
                ep.attacker_ip,
                ep.a_ip,
                delay,
            ))),
        ),
        AttackKind::RegisterDos => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(RegisterFlooder::new(RegisterDosConfig::new(
                ep.attacker_ip,
                ep.proxy_ip,
                delay,
            ))),
        ),
        AttackKind::PasswordGuess => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(PasswordGuesser::new(PasswordGuessConfig::new(
                ep.attacker_ip,
                ep.proxy_ip,
                delay,
                10,
            ))),
        ),
        AttackKind::BillingFraud => tb.add_node(
            "attacker",
            ep.attacker_ip,
            link,
            Box::new(BillingFraudster::new(BillingFraudConfig::new(
                ep.attacker_ip,
                ep.proxy_ip,
                delay,
            ))),
        ),
    }
}

fn fired_at(tb: &Testbed, kind: AttackKind, attacker: NodeId) -> Option<SimTime> {
    match kind {
        AttackKind::Bye => tb.sim.node_as::<ByeAttacker>(attacker)?.fired_at,
        AttackKind::Hijack => tb.sim.node_as::<Hijacker>(attacker)?.fired_at,
        AttackKind::FakeIm => tb.sim.node_as::<FakeImAttacker>(attacker)?.fired_at,
        AttackKind::RtpFlood => tb.sim.node_as::<RtpFlooder>(attacker)?.fired_at,
        AttackKind::RegisterDos => tb.sim.node_as::<RegisterFlooder>(attacker)?.fired_at,
        AttackKind::PasswordGuess => tb.sim.node_as::<PasswordGuesser>(attacker)?.fired_at,
        AttackKind::BillingFraud => tb.sim.node_as::<BillingFraudster>(attacker)?.fired_at,
    }
}

/// Runs a benign scenario (call + teardown + IM + auth churn, no
/// attacker) and returns all critical alerts — each one a false alarm.
pub fn run_benign(seed: u64, opts: &ScenarioOptions) -> Vec<Alert> {
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(seed)
        .link(opts.link)
        .with_auth(&[("alice", "pw-alice"), ("bob", "pw-bob")])
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_secs(4)),
        )
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::SendIm {
                to: ep.a_aor(),
                text: "benign chatter".to_string(),
            },
        )])
        .build();
    let ep = tb.endpoints.clone();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    config.events.monitor_window = opts.monitor_window;
    config.events.stateful = !opts.stateless_ids;
    config.events.cross_protocol = !opts.no_cross_protocol;
    let ids = tb.add_node(
        "ids",
        ep.tap_ip,
        opts.tap_link.unwrap_or(opts.link),
        Box::new(IdsNode::new(config)),
    );
    tb.run_for(opts.duration);
    tb.sim
        .node_as::<IdsNode>(ids)
        .expect("ids node")
        .ids()
        .alerts()
        .iter()
        .filter(|a| a.severity == Severity::Critical)
        .cloned()
        .collect()
}

/// Runs the benign scenario (call + teardown + IM + auth churn, no
/// attacker) and returns its full wire capture as `(time, packet)`
/// frames — the replay input for throughput benchmarks and the
/// allocation-budget regression test.
pub fn run_benign_capture(
    seed: u64,
    opts: &ScenarioOptions,
) -> Vec<(SimTime, scidive_netsim::packet::IpPacket)> {
    let ep = Endpoints::default();
    let mut tb = TestbedBuilder::new(seed)
        .link(opts.link)
        .with_auth(&[("alice", "pw-alice"), ("bob", "pw-bob")])
        .standard_call(
            SimDuration::from_millis(500),
            Some(SimDuration::from_secs(4)),
        )
        .b_script(vec![ScriptStep::new(
            SimDuration::from_secs(2),
            UaAction::SendIm {
                to: ep.a_aor(),
                text: "benign chatter".to_string(),
            },
        )])
        .build();
    tb.run_for(opts.duration);
    tb.sim
        .trace()
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

/// Replays a captured attack scenario through a single engine and a
/// sharded deployment, asserting the merged alert stream and summed
/// counters are identical. Returns the number of frames replayed.
///
/// CI runs this as a cheap end-to-end smoke of the dispatcher, the
/// worker shards, and the deterministic merge.
///
/// # Panics
///
/// Panics if the sharded output diverges from the single engine.
pub fn assert_sharded_equivalence(kind: AttackKind, seed: u64, shards: usize) -> usize {
    let outcome = run_attack(kind, seed, &ScenarioOptions::default());
    let ep = Endpoints::default();
    let mut config = ScidiveConfig::default();
    config.events.infrastructure_ips = vec![ep.proxy_ip, ep.acct_ip];
    let frames: Vec<_> = outcome
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect();
    let mut single = Scidive::new(config.clone());
    single.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let mut sharded = ShardedScidive::new(config, shards, 64);
    sharded.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let report = sharded.finish();
    assert_eq!(
        report.alerts,
        single.alerts(),
        "{} seed {seed}: sharded alerts diverged at {shards} shards",
        kind.name()
    );
    assert_eq!(
        report.stats,
        single.stats(),
        "{} seed {seed}: sharded counters diverged at {shards} shards",
        kind.name()
    );
    assert_eq!(report.dispatch.dropped, 0);
    frames.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_detected_across_seeds() {
        let opts = ScenarioOptions::default();
        for kind in AttackKind::ALL {
            for seed in [1u64, 2] {
                let outcome = run_attack(kind, seed, &opts);
                assert_eq!(
                    outcome.report.detected_count(),
                    1,
                    "{} seed {seed}: alerts={:?}",
                    kind.name(),
                    outcome.alerts
                );
            }
        }
    }

    #[test]
    fn benign_run_has_no_false_alarms() {
        let opts = ScenarioOptions::default();
        for seed in [1u64, 2, 3] {
            let alarms = run_benign(seed, &opts);
            assert!(alarms.is_empty(), "seed {seed}: {alarms:?}");
        }
    }

    #[test]
    fn cross_protocol_ablation_loses_bye_detection() {
        let opts = ScenarioOptions {
            no_cross_protocol: true,
            ..ScenarioOptions::default()
        };
        let outcome = run_attack(AttackKind::Bye, 3, &opts);
        assert_eq!(outcome.report.detected_count(), 0);
    }

    #[test]
    fn sharded_replay_matches_single_engine() {
        // The cross-protocol BYE capture at 2 shards: the smoke CI runs.
        let frames = assert_sharded_equivalence(AttackKind::Bye, 11, 2);
        assert!(frames > 100, "capture too small: {frames}");
    }
}
