//! Message-ladder rendering: reproduces the shape of the paper's
//! Figure 1 (call setup/teardown) and Figures 5–8 (attack schematics)
//! as text diagrams from a wire trace.

use scidive_netsim::trace::{Trace, TraceRecord};
use scidive_rtp::packet::RtpPacket;
use scidive_sip::msg::SipMessage;

/// Labels a frame for the ladder, or `None` to omit it.
///
/// SIP frames always show; RTP frames are sampled (first of each flow
/// plus every `rtp_every`-th) so media does not drown the signalling.
pub fn label_frame(
    rec: &TraceRecord,
    rtp_seen: &mut std::collections::HashMap<(std::net::Ipv4Addr, u16), u64>,
    rtp_every: u64,
) -> Option<String> {
    let udp = rec.packet.decode_udp().ok()?;
    if let Ok(msg) = SipMessage::parse(&udp.payload) {
        return Some(format!("SIP {}", msg.summary()));
    }
    if let Ok(txt) = std::str::from_utf8(&udp.payload) {
        if txt.starts_with("ACCT ") {
            return Some(txt.trim().to_string());
        }
    }
    if let Ok(rtp) = RtpPacket::decode(&udp.payload) {
        let key = (rec.packet.dst, udp.dst_port);
        let count = rtp_seen.entry(key).or_insert(0);
        *count += 1;
        if *count == 1 || count.is_multiple_of(rtp_every) {
            return Some(format!(
                "RTP seq={} ssrc={:#010x} (pkt #{count} of flow)",
                rtp.header.seq, rtp.header.ssrc
            ));
        }
        return None;
    }
    // Undecodable payload to a media-looking port: the garbage flood.
    Some(format!("UDP {} bytes (undecodable)", udp.payload.len()))
}

/// Renders the whole trace as a ladder diagram.
pub fn render(trace: &Trace, rtp_every: u64) -> String {
    let mut rtp_seen = std::collections::HashMap::new();
    trace.render_ladder(|rec| label_frame(rec, &mut rtp_seen, rtp_every))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_attack, AttackKind, ScenarioOptions};

    #[test]
    fn ladder_shows_call_setup_and_attack() {
        let outcome = run_attack(AttackKind::Bye, 1, &ScenarioOptions::default());
        let ladder = render(&outcome.trace, 50);
        assert!(ladder.contains("SIP INVITE"));
        assert!(ladder.contains("SIP 200 OK"));
        assert!(ladder.contains("SIP ACK"));
        assert!(ladder.contains("SIP BYE"));
        assert!(ladder.contains("RTP seq="));
        assert!(ladder.contains("ACCT START"));
    }
}
