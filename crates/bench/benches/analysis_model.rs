//! Micro-benchmark: the §4.3 analytical machinery (Monte Carlo delay
//! sampling and the P_f integral).

use criterion::{criterion_group, criterion_main, Criterion};
use scidive_analysis::prelude::*;

fn bench_analysis(c: &mut Criterion) {
    let model = DelayModel {
        n_rtp: ContDist::Exponential { mean: 5.0 },
        n_sip: ContDist::Exponential { mean: 5.0 },
        ..DelayModel::paper_simple()
    };
    c.bench_function("delay-mc-10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            model.monte_carlo(10_000, seed, 200.0, 0.05)
        })
    });
    c.bench_function("p-false-numeric", |b| {
        let sip = ContDist::Normal { mean: 5.0, std: 1.0 };
        let rtp = ContDist::Exponential { mean: 5.0 };
        b.iter(|| p_false_numeric(&sip, &rtp))
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
