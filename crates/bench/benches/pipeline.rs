//! **Experiment P1a** — throughput of the IDS pipeline (the paper's
//! "efficiency of the algorithm for creating events from footprints and
//! matching events against the rule set").
//!
//! A full attack scenario is captured once; the benchmark replays the
//! capture through a fresh engine, measuring end-to-end frames/second
//! through Distiller → Trails → Event Generator → Ruleset.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

fn capture(kind: AttackKind) -> Vec<(SimTime, IpPacket)> {
    let outcome = run_attack(kind, 1, &ScenarioOptions::default());
    outcome
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

/// With `--features count-allocs`, replays the capture once through a
/// fresh engine and prints heap allocations per frame alongside the
/// timing numbers.
#[cfg(feature = "count-allocs")]
fn report_allocs(label: &str, frames: &[(SimTime, IpPacket)]) {
    use scidive_bench::alloc_count;
    let mut ids = Scidive::new(ScidiveConfig::default());
    let (_, used) = alloc_count::measure(|| {
        ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    });
    println!(
        "{label:<40} {:>12.1} allocs/frame  ({} allocs, {} bytes, {} frames)",
        used.allocs as f64 / frames.len() as f64,
        used.allocs,
        used.bytes,
        frames.len()
    );
}

#[cfg(not(feature = "count-allocs"))]
fn report_allocs(_label: &str, _frames: &[(SimTime, IpPacket)]) {}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for kind in [AttackKind::Bye, AttackKind::RtpFlood, AttackKind::BillingFraud] {
        let frames = capture(kind);
        group.throughput(Throughput::Elements(frames.len() as u64));
        group.bench_function(format!("replay-{:?}", kind), |b| {
            b.iter_batched(
                || Scidive::new(ScidiveConfig::default()),
                |mut ids| {
                    ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                    ids
                },
                BatchSize::SmallInput,
            );
        });
        report_allocs(&format!("pipeline/replay-{kind:?} (allocs)"), &frames);
    }
    group.finish();
}

fn bench_distiller_only(c: &mut Criterion) {
    let frames = capture(AttackKind::Bye);
    let mut group = c.benchmark_group("distiller");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("distill-only", |b| {
        b.iter_batched(
            || Distiller::new(DistillerConfig::default()),
            |mut d| {
                for (t, p) in &frames {
                    std::hint::black_box(d.distill(*t, p));
                }
                d
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_distiller_only);
criterion_main!(benches);
