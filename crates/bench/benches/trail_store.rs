//! **Experiment P2** — trail memory and insertion cost: the practicality
//! of holding per-session state (§3.3's "constrained in practice by the
//! amount of memory available").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scidive_core::footprint::{Footprint, FootprintBody, PacketMeta};
use scidive_core::prelude::*;
use scidive_rtp::packet::RtpHeader;
use scidive_netsim::time::SimTime;
use std::net::Ipv4Addr;

fn rtp_footprint(session_port: u16, seq: u16, t: u64) -> Footprint {
    Footprint {
        meta: PacketMeta {
            time: SimTime::from_millis(t),
            src: Ipv4Addr::new(10, 0, 0, 3),
            src_port: 9000,
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: session_port,
        },
        body: FootprintBody::Rtp {
            header: RtpHeader::new(0, seq, u32::from(seq) * 160, 0xabc),
            payload_len: 160,
        },
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("trail_store");
    for sessions in [1u16, 16, 256] {
        let footprints: Vec<Footprint> = (0..10_000u32)
            .map(|i| rtp_footprint(8000 + (i as u16 % sessions), i as u16, u64::from(i)))
            .collect();
        group.throughput(Throughput::Elements(footprints.len() as u64));
        group.bench_function(format!("insert-10k-{sessions}-flows"), |b| {
            b.iter_batched(
                || TrailStore::new(TrailStoreConfig::default()),
                |mut store| {
                    for fp in &footprints {
                        std::hint::black_box(store.insert(fp.clone()));
                    }
                    store
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Bounded retention: a capped trail under flood stays at its cap.
    group.bench_function("insert-flood-capped-256", |b| {
        let footprints: Vec<Footprint> = (0..10_000u32)
            .map(|i| rtp_footprint(8000, i as u16, u64::from(i)))
            .collect();
        b.iter_batched(
            || {
                TrailStore::new(TrailStoreConfig {
                    max_footprints_per_trail: 256,
                    ..TrailStoreConfig::default()
                })
            },
            |mut store| {
                for fp in &footprints {
                    store.insert(fp.clone());
                }
                assert!(store.footprint_count() <= 256);
                store
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
