//! **Experiment P1b** — rule-engine scaling: alert latency as the
//! ruleset grows ("the efficiency of the algorithm ... will affect the
//! detection latency in addition to the structure of the rules").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_core::event::EventClass;
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};

fn engine_with_extra_rules(extra: usize) -> Scidive {
    let mut ids = Scidive::new(ScidiveConfig::default());
    for i in 0..extra {
        // Distinct sequence rules that never complete (benign classes in
        // an order attacks do not produce), exercising partial-match
        // bookkeeping.
        ids.add_rule(Box::new(SequenceRule::new(
            format!("synthetic-{i}"),
            "synthetic partial-match load",
            vec![
                EventClass::RtpFlowActive,
                EventClass::PasswordGuessing,
                EventClass::AcctMismatch,
            ],
            SimDuration::from_secs(60),
        )));
    }
    ids
}

fn bench_ruleset_scaling(c: &mut Criterion) {
    let frames: Vec<(SimTime, IpPacket)> =
        run_attack(AttackKind::Bye, 1, &ScenarioOptions::default())
            .trace
            .records()
            .iter()
            .map(|r| (r.time, r.packet.clone()))
            .collect();
    let mut group = c.benchmark_group("ruleset_scaling");
    for extra in [0usize, 8, 32, 128] {
        group.bench_function(format!("extra-rules-{extra}"), |b| {
            b.iter_batched(
                || engine_with_extra_rules(extra),
                |mut ids| {
                    ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                    ids
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ruleset_scaling);
criterion_main!(benches);
