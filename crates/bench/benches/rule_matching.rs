//! **Experiment P1c** — rule matching: compiled event-class dispatch vs
//! the full-scan reference as the ruleset grows.
//!
//! Harvests the event stream of one captured BYE-attack scenario, then
//! drives it straight through rulesets padded with inert,
//! interest-scoped rules (their trigger classes never occur in the
//! capture, so the compiled table never invokes them while the full
//! scan offers them every event). Measures the matching stage's
//! events/second and — exactly, from the per-rule eval counters — rule
//! invocations per event, at ruleset paddings 8/32/128; with
//! `--features count-allocs` also whole-pipeline heap allocations per
//! frame at the same paddings.
//!
//! Writes `BENCH_rules.json` (full-scan = before, compiled = after) and
//! `results/rule_dispatch.txt`. With `--gate <x>` (what `scripts/ci.sh`
//! passes) exits nonzero unless compiled throughput at 128 padding
//! rules is at least `x` times the full-scan baseline. `--test` runs a
//! single quick iteration and writes nothing.

use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_bench::report::{f2, Table};
use scidive_core::event::EventClass;
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: [usize; 3] = [8, 32, 128];

fn capture() -> Vec<(SimTime, IpPacket)> {
    run_attack(AttackKind::Bye, 1, &ScenarioOptions::default())
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

/// `extra` inert padding rules. Their interest classes (identity-plane
/// registration attacks) never occur in the BYE capture: compiled
/// dispatch skips them entirely, a full scan pays one `on_event` per
/// rule per event.
fn padding(extra: usize) -> impl Iterator<Item = Box<dyn Rule>> {
    (0..extra).map(|i| {
        Box::new(SequenceRule::new(
            format!("padding-{i}"),
            "inert interest-scoped padding",
            vec![EventClass::PasswordGuessing, EventClass::RegisterFlood],
            SimDuration::from_secs(60),
        )) as Box<dyn Rule>
    })
}

/// The full built-in ruleset plus `extra` padding rules, compiled or
/// full-scan.
fn ruleset(extra: usize, full_scan: bool) -> CompiledRuleset {
    let mut rules = builtin_ruleset(&RuleToggles::default());
    rules.extend(padding(extra));
    CompiledRuleset::new(rules, full_scan)
}

/// One timed pass of the matching stage: the harvested event stream,
/// driven `repeats` times through one ruleset (amplifying the tiny
/// per-stream cost into a measurable region; later repeats exercise the
/// fired-marker fast paths, which both modes share). Returns (elapsed
/// seconds, events dispatched, rule evals).
fn match_stage(
    events: &[Event],
    trails: &TrailStore,
    repeats: usize,
    extra: usize,
    full_scan: bool,
) -> (f64, u64, u64) {
    let mut rules = ruleset(extra, full_scan);
    let mut alerts = Vec::new();
    let rates = &scidive_core::rate::RateHub::default();
    let start = Instant::now();
    {
        let mut sink = AlertSink::new(&mut alerts);
        for _ in 0..repeats {
            for ev in events {
                let ctx = RuleCtx {
                    now: ev.time,
                    trails,
                    rates,
                };
                rules.dispatch(ev, &ctx, &mut sink);
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(alerts.len());
    let evals = rules.rule_evals().iter().map(|e| e.evals).sum();
    (elapsed, (events.len() * repeats) as u64, evals)
}

/// A whole-pipeline engine with the same padding, for the allocs/frame
/// measurement.
#[cfg(feature = "count-allocs")]
fn engine(extra: usize, full_scan: bool) -> Scidive {
    let mut config = ScidiveConfig::default();
    config.full_scan_rules = full_scan;
    let mut ids = Scidive::new(config);
    for rule in padding(extra) {
        ids.add_rule(rule);
    }
    ids
}

#[cfg(feature = "count-allocs")]
fn allocs_per_frame(frames: &[(SimTime, IpPacket)], extra: usize, full_scan: bool) -> Option<f64> {
    use scidive_bench::alloc_count;
    let mut ids = engine(extra, full_scan);
    let (_, used) = alloc_count::measure(|| {
        ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    });
    Some(used.allocs as f64 / frames.len() as f64)
}

#[cfg(not(feature = "count-allocs"))]
fn allocs_per_frame(_frames: &[(SimTime, IpPacket)], _extra: usize, _full_scan: bool) -> Option<f64> {
    None
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One mode's measurements at one ruleset size.
#[derive(Serialize)]
struct ModeRow {
    events_per_sec: f64,
    rule_invocations_per_event: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    allocs_per_frame: Option<f64>,
}

#[derive(Serialize)]
struct SizeRow {
    extra_rules: usize,
    full_scan: ModeRow,
    compiled: ModeRow,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    capture: String,
    frames: usize,
    events: u64,
    iterations: usize,
    sizes: Vec<SizeRow>,
    speedup_at_128: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--gate takes a speedup factor"));

    let (iters, warmup) = if test_mode { (1, 0) } else { (31, 3) };
    let frames = capture();
    // Harvest the event stream (and the trail store the rules consult)
    // once; the timed region is the matching stage alone.
    let mut harvester = Scidive::new(ScidiveConfig::default());
    harvester.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    let events = harvester.drain_events();
    let trails = harvester.trails();

    let mut out = String::new();
    let _ = writeln!(out, "# Rule matching: compiled dispatch vs full scan (rule_matching)");
    let _ = writeln!(
        out,
        "# BYE capture, {} frames -> {} events; {iters} interleaved matching passes per mode, median reported",
        frames.len(),
        events.len()
    );
    let _ = writeln!(
        out,
        "# padding rules are interest-scoped to classes the capture never produces\n"
    );

    let mut table = Table::new(&[
        "extra rules",
        "full-scan ev/s",
        "compiled ev/s",
        "speedup",
        "full-scan invoc/ev",
        "compiled invoc/ev",
    ]);
    let mut sizes = Vec::new();
    let repeats = if test_mode { 2 } else { 100 };
    for extra in SIZES {
        for _ in 0..warmup {
            match_stage(&events, trails, repeats, extra, true);
            match_stage(&events, trails, repeats, extra, false);
        }
        let mut full = Vec::with_capacity(iters);
        let mut compiled = Vec::with_capacity(iters);
        let mut full_evals = 0u64;
        let mut compiled_evals = 0u64;
        let mut dispatched = 0u64;
        // Interleave so drift (thermal, scheduler) hits both modes
        // equally.
        for _ in 0..iters {
            let (t, n, evals) = match_stage(&events, trails, repeats, extra, true);
            full.push(t);
            dispatched = n;
            full_evals = evals;
            let (t, _, evals) = match_stage(&events, trails, repeats, extra, false);
            compiled.push(t);
            compiled_evals = evals;
        }
        let full_med = median(&mut full);
        let compiled_med = median(&mut compiled);
        let full_eps = dispatched as f64 / full_med;
        let compiled_eps = dispatched as f64 / compiled_med;
        let speedup = compiled_eps / full_eps;
        let full_ipe = full_evals as f64 / dispatched as f64;
        let compiled_ipe = compiled_evals as f64 / dispatched as f64;
        table.row(&[
            extra.to_string(),
            format!("{:.0}", full_eps),
            format!("{:.0}", compiled_eps),
            f2(speedup),
            f2(full_ipe),
            f2(compiled_ipe),
        ]);
        sizes.push(SizeRow {
            extra_rules: extra,
            full_scan: ModeRow {
                events_per_sec: full_eps,
                rule_invocations_per_event: full_ipe,
                allocs_per_frame: allocs_per_frame(&frames, extra, true),
            },
            compiled: ModeRow {
                events_per_sec: compiled_eps,
                rule_invocations_per_event: compiled_ipe,
                allocs_per_frame: allocs_per_frame(&frames, extra, false),
            },
            speedup,
        });
    }
    let _ = writeln!(out, "{}", table.render());

    let speedup_at_128 = sizes.last().map(|s| s.speedup).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "speedup at 128 padding rules: {}x (compiled invocations scale with interested rules, not ruleset size)",
        f2(speedup_at_128)
    );

    print!("{out}");

    if !test_mode {
        let report = BenchReport {
            capture: "Bye".to_string(),
            frames: frames.len(),
            events: events.len() as u64,
            iterations: iters,
            sizes,
            speedup_at_128,
        };
        // `cargo bench` sets the CWD to the package dir; anchor the
        // artifacts at the workspace root like the exp_* binaries do.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::write(root.join("BENCH_rules.json"), json + "\n")
            .expect("write BENCH_rules.json");
        let results = root.join("results");
        let _ = std::fs::create_dir_all(&results);
        let _ = std::fs::write(results.join("rule_dispatch.txt"), &out);
    }

    if let Some(min_speedup) = gate {
        if speedup_at_128 < min_speedup {
            eprintln!(
                "FAIL: compiled dispatch speedup {}x at 128 rules is below the {min_speedup}x gate",
                f2(speedup_at_128)
            );
            std::process::exit(1);
        }
        println!(
            "gate ok: speedup {}x >= {min_speedup}x at 128 rules",
            f2(speedup_at_128)
        );
    }
}
