//! **Experiment P1b** — throughput of the sharded detection pipeline.
//!
//! The same attack capture as the `pipeline` benchmark is replayed
//! through [`ShardedScidive`] at 1, 2, 4 and 8 shards. The single-shard
//! point measures the dispatch + merge overhead against the plain
//! engine; the higher counts show how far per-session hashing spreads
//! the rule-matching work. Output is byte-identical at every point —
//! the equivalence tests prove it — so this measures speed, not
//! semantics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

fn capture(kind: AttackKind) -> Vec<(SimTime, IpPacket)> {
    let outcome = run_attack(kind, 1, &ScenarioOptions::default());
    outcome
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

/// With `--features count-allocs`, prints allocations per frame for the
/// single engine and each sharded configuration (the full process —
/// dispatcher, workers, merge — is charged; the counter is global).
#[cfg(feature = "count-allocs")]
fn report_allocs(frames: &[(SimTime, IpPacket)]) {
    use scidive_bench::alloc_count;
    let per_frame = |allocs: u64| allocs as f64 / frames.len() as f64;
    let mut single = Scidive::new(ScidiveConfig::default());
    let (_, used) = alloc_count::measure(|| {
        single.process_capture(frames.iter().map(|(t, p)| (*t, p)));
    });
    println!(
        "{:<40} {:>12.1} allocs/frame  ({} allocs, {} frames)",
        "sharded_pipeline/single-engine (allocs)",
        per_frame(used.allocs),
        used.allocs,
        frames.len()
    );
    for shards in [1usize, 2, 4, 8] {
        let mut ids = ShardedScidive::new(ScidiveConfig::default(), shards, 256);
        let (_, used) = alloc_count::measure(|| {
            ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
            ids.finish()
        });
        println!(
            "{:<40} {:>12.1} allocs/frame  ({} allocs, {} frames)",
            format!("sharded_pipeline/shards-{shards} (allocs)"),
            per_frame(used.allocs),
            used.allocs,
            frames.len()
        );
    }
}

#[cfg(not(feature = "count-allocs"))]
fn report_allocs(_frames: &[(SimTime, IpPacket)]) {}

fn bench_sharded(c: &mut Criterion) {
    let frames = capture(AttackKind::Bye);
    let mut group = c.benchmark_group("sharded_pipeline");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("single-engine", |b| {
        b.iter_batched(
            || Scidive::new(ScidiveConfig::default()),
            |mut ids| {
                ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                ids
            },
            BatchSize::SmallInput,
        );
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards-{shards}"), |b| {
            b.iter_batched(
                || ShardedScidive::new(ScidiveConfig::default(), shards, 256),
                |mut ids| {
                    ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                    ids.finish()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
    report_allocs(&frames);
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
