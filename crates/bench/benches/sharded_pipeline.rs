//! **Experiment P1b** — throughput of the sharded detection pipeline.
//!
//! The same attack capture as the `pipeline` benchmark is replayed
//! through [`ShardedScidive`] at 1, 2, 4 and 8 shards. The single-shard
//! point measures the dispatch + merge overhead against the plain
//! engine; the higher counts show how far per-session hashing spreads
//! the rule-matching work. Output is byte-identical at every point —
//! the equivalence tests prove it — so this measures speed, not
//! semantics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scidive_bench::harness::{run_attack, AttackKind, ScenarioOptions};
use scidive_core::prelude::*;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

fn capture(kind: AttackKind) -> Vec<(SimTime, IpPacket)> {
    let outcome = run_attack(kind, 1, &ScenarioOptions::default());
    outcome
        .trace
        .records()
        .iter()
        .map(|r| (r.time, r.packet.clone()))
        .collect()
}

fn bench_sharded(c: &mut Criterion) {
    let frames = capture(AttackKind::Bye);
    let mut group = c.benchmark_group("sharded_pipeline");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("single-engine", |b| {
        b.iter_batched(
            || Scidive::new(ScidiveConfig::default()),
            |mut ids| {
                ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                ids
            },
            BatchSize::SmallInput,
        );
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards-{shards}"), |b| {
            b.iter_batched(
                || ShardedScidive::new(ScidiveConfig::default(), shards, 256),
                |mut ids| {
                    ids.process_capture(frames.iter().map(|(t, p)| (*t, p)));
                    ids.finish()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
