//! Micro-benchmark: SIP message parse/serialize (the Distiller's hot
//! path on the signalling side).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scidive_sip::prelude::*;

fn sample_invite() -> Vec<u8> {
    let sdp = SessionDescription::audio_offer("alice", std::net::Ipv4Addr::new(10, 0, 0, 2), 8000);
    let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
    b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("tag-a"))
        .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
        .call_id("bench-call-1@10.0.0.2")
        .cseq(CSeq::new(1, Method::Invite))
        .via(Via::udp("10.0.0.2:5060", "z9hG4bK-bench"))
        .contact(NameAddr::new("sip:alice@10.0.0.2:5060".parse().unwrap()))
        .body("application/sdp", sdp.to_string());
    b.build().to_bytes().to_vec()
}

fn bench_sip(c: &mut Criterion) {
    let wire = sample_invite();
    let msg = SipMessage::parse(&wire).unwrap();
    let mut group = c.benchmark_group("sip");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse-invite", |b| {
        b.iter(|| SipMessage::parse(std::hint::black_box(&wire)).unwrap())
    });
    group.bench_function("serialize-invite", |b| b.iter(|| msg.to_bytes()));
    group.bench_function("format-violations", |b| b.iter(|| msg.format_violations()));
    group.finish();
}

criterion_group!(benches, bench_sip);
criterion_main!(benches);
