//! Micro-benchmark: RTP decode and sequence validation (the Distiller's
//! hot path on the media side — the dominant packet class in VoIP).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scidive_rtp::prelude::*;

fn bench_rtp(c: &mut Criterion) {
    let mut src = MediaSource::new(0xabc, 0, 0);
    let wire = src.next_packet().encode();
    let mut group = c.benchmark_group("rtp");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("decode", |b| {
        b.iter(|| RtpPacket::decode(std::hint::black_box(&wire)).unwrap())
    });
    group.bench_function("encode", |b| {
        let pkt = RtpPacket::decode(&wire).unwrap();
        b.iter(|| pkt.encode())
    });
    group.bench_function("seq-tracker-update", |b| {
        let mut tracker = SeqTracker::new(0);
        let mut seq = 1u16;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            tracker.update(std::hint::black_box(seq))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rtp);
criterion_main!(benches);
