//! Passive dialog sniffing.
//!
//! On the paper's hub topology the attacker sees every frame. The
//! signalling is clear-text (§2.2: "Both H.323 and SIP transmit packet
//! headers and payload in clear text, which allows an attacker to forge
//! packets that manipulate device and call states"), so an attacker can
//! harvest everything needed to forge in-dialog requests: Call-ID, both
//! tags, CSeq, contacts, and the SDP media targets.

use scidive_sip::header::HeaderName;
use scidive_sip::method::Method;
use scidive_sip::msg::SipMessage;
use scidive_sip::sdp::SessionDescription;
use scidive_sip::uri::SipUri;
use std::net::Ipv4Addr;

/// Everything sniffed about one dialog between a caller and callee.
#[derive(Debug, Clone, Default)]
pub struct SniffedDialog {
    /// The dialog's Call-ID.
    pub call_id: String,
    /// Caller's tag (From of the INVITE).
    pub caller_tag: Option<String>,
    /// Callee's tag (To of the 2xx).
    pub callee_tag: Option<String>,
    /// Caller's contact URI.
    pub caller_contact: Option<SipUri>,
    /// Callee's contact URI.
    pub callee_contact: Option<SipUri>,
    /// Where the caller receives RTP (SDP offer).
    pub caller_rtp: Option<(Ipv4Addr, u16)>,
    /// Where the callee receives RTP (SDP answer).
    pub callee_rtp: Option<(Ipv4Addr, u16)>,
    /// The INVITE's CSeq number.
    pub invite_cseq: u32,
    /// Whether a 2xx with a callee tag has been seen.
    pub established: bool,
}

/// Sniffs SIP packets for a dialog between two address-of-records.
#[derive(Debug, Clone)]
pub struct DialogSniffer {
    caller_aor: String,
    callee_aor: String,
    dialog: SniffedDialog,
}

impl DialogSniffer {
    /// Watches for a dialog from `caller_aor` to `callee_aor`.
    pub fn new(caller_aor: impl Into<String>, callee_aor: impl Into<String>) -> DialogSniffer {
        DialogSniffer {
            caller_aor: caller_aor.into(),
            callee_aor: callee_aor.into(),
            dialog: SniffedDialog::default(),
        }
    }

    /// The sniffed state so far.
    pub fn dialog(&self) -> &SniffedDialog {
        &self.dialog
    }

    /// Whether the dialog is established (forgeable).
    pub fn is_established(&self) -> bool {
        self.dialog.established
    }

    /// Feeds one SIP message seen on the wire. Returns `true` when this
    /// message completed the picture (dialog newly established).
    pub fn observe(&mut self, msg: &SipMessage) -> bool {
        let (Ok(from), Ok(to)) = (msg.from_(), msg.to()) else {
            return false;
        };
        let Ok(call_id) = msg.call_id() else {
            return false;
        };
        let matches_pair =
            from.uri.aor() == self.caller_aor && to.uri.aor() == self.callee_aor;
        if !matches_pair {
            return false;
        }
        if msg.method() == Some(Method::Invite) {
            if self.dialog.call_id.is_empty() {
                self.dialog.call_id = call_id.to_string();
                self.dialog.caller_tag = from.tag().map(str::to_string);
                self.dialog.invite_cseq = msg.cseq().map(|c| c.seq).unwrap_or(1);
                self.dialog.caller_contact = msg.contact().ok().map(|c| c.uri);
                if let Some(sdp) = parse_sdp(msg) {
                    self.dialog.caller_rtp = sdp.rtp_target();
                }
            }
            return false;
        }
        // Responses on the same dialog.
        if msg.is_response()
            && call_id == self.dialog.call_id
            && msg.status().map(|s| s.is_success()).unwrap_or(false)
            && msg.cseq().map(|c| c.method) == Ok(Method::Invite)
        {
            self.dialog.callee_tag = to.tag().map(str::to_string);
            if let Ok(contact) = msg.contact() {
                self.dialog.callee_contact = Some(contact.uri);
            }
            if let Some(sdp) = parse_sdp(msg) {
                self.dialog.callee_rtp = sdp.rtp_target();
            }
            let newly = !self.dialog.established && self.dialog.callee_tag.is_some();
            self.dialog.established = self.dialog.callee_tag.is_some();
            return newly;
        }
        false
    }
}

fn parse_sdp(msg: &SipMessage) -> Option<SessionDescription> {
    if msg.headers.get(&HeaderName::ContentType)? != "application/sdp" {
        return None;
    }
    std::str::from_utf8(&msg.body).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::msg::{response_to, RequestBuilder};
    use scidive_sip::status::StatusCode;

    fn invite() -> SipMessage {
        let sdp = SessionDescription::audio_offer("alice", Ipv4Addr::new(10, 0, 0, 2), 8000);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("tag-a"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("c77")
            .cseq(CSeq::new(3, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-a-1"))
            .contact(NameAddr::new("sip:alice@10.0.0.2:5060".parse().unwrap()))
            .body("application/sdp", sdp.to_string());
        b.build()
    }

    #[test]
    fn sniffs_full_handshake() {
        let mut sniffer = DialogSniffer::new("alice@lab", "bob@lab");
        let inv = invite();
        assert!(!sniffer.observe(&inv));
        assert!(!sniffer.is_established());

        let mut ok = response_to(&inv, StatusCode::OK, Some("tag-b"));
        let answer = SessionDescription::audio_offer("bob", Ipv4Addr::new(10, 0, 0, 3), 9000);
        ok.headers.set(HeaderName::ContentType, "application/sdp");
        ok.headers.set(
            HeaderName::Contact,
            NameAddr::new("sip:bob@10.0.0.3:5060".parse().unwrap()).to_string(),
        );
        ok.body = answer.to_string().into_bytes().into();
        assert!(sniffer.observe(&ok)); // newly established

        let d = sniffer.dialog();
        assert_eq!(d.call_id, "c77");
        assert_eq!(d.caller_tag.as_deref(), Some("tag-a"));
        assert_eq!(d.callee_tag.as_deref(), Some("tag-b"));
        assert_eq!(d.invite_cseq, 3);
        assert_eq!(d.caller_rtp, Some((Ipv4Addr::new(10, 0, 0, 2), 8000)));
        assert_eq!(d.callee_rtp, Some((Ipv4Addr::new(10, 0, 0, 3), 9000)));
        assert_eq!(
            d.callee_contact.as_ref().map(|u| u.to_string()),
            Some("sip:bob@10.0.0.3:5060".to_string())
        );
        // Re-observing the 200 is not "newly established".
        assert!(!sniffer.observe(&ok));
    }

    #[test]
    fn ignores_other_pairs() {
        let mut sniffer = DialogSniffer::new("carol@lab", "dave@lab");
        assert!(!sniffer.observe(&invite()));
        assert!(sniffer.dialog().call_id.is_empty());
    }

    #[test]
    fn ignores_non_dialog_messages() {
        let mut sniffer = DialogSniffer::new("alice@lab", "bob@lab");
        let mut b = RequestBuilder::new(Method::Options, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("t"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("x")
            .cseq(CSeq::new(1, Method::Options))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-1"));
        assert!(!sniffer.observe(&b.build()));
        assert!(!sniffer.is_established());
    }
}
