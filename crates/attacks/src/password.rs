//! The password brute-force attack (paper §3.3).
//!
//! "If the client keeps sending requests with different values in the
//! challenge response field, this could be seen as a type of attack that
//! is trying to break the authentication key by brute force." The
//! attacker answers each 401 challenge with the digest response for the
//! next password guess — all inside one registration "session", which is
//! exactly the state a stateful IDS needs to tell it apart from a benign
//! one-retry auth handshake.

use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::auth::{DigestChallenge, DigestCredentials};
use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{RequestBuilder, SipMessage};
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_START: TimerToken = 1;

/// Configuration of the brute-forcer.
#[derive(Debug, Clone)]
pub struct PasswordGuessConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The registrar under attack.
    pub proxy_ip: Ipv4Addr,
    /// The account being brute-forced (a real user's AOR).
    pub target_aor: String,
    /// The username presented in credentials.
    pub username: String,
    /// When to start.
    pub start_at: SimDuration,
    /// Guesses to try; the real password may be appended to model a
    /// successful break-in.
    pub guesses: Vec<String>,
}

impl PasswordGuessConfig {
    /// A standard run of `n` wrong guesses against alice's account.
    pub fn new(
        attacker_ip: Ipv4Addr,
        proxy_ip: Ipv4Addr,
        start_at: SimDuration,
        n: usize,
    ) -> PasswordGuessConfig {
        PasswordGuessConfig {
            attacker_ip,
            proxy_ip,
            target_aor: "alice@lab".to_string(),
            username: "alice".to_string(),
            start_at,
            guesses: (0..n).map(|i| format!("guess-{i}")).collect(),
        }
    }
}

/// The brute-forcing node.
#[derive(Debug)]
pub struct PasswordGuesser {
    config: PasswordGuessConfig,
    next_guess: usize,
    cseq: u32,
    /// Attempts actually answered with credentials.
    pub attempts: u32,
    /// Whether a 200 OK was received (password found).
    pub broke_in: bool,
    /// When the first REGISTER left.
    pub fired_at: Option<SimTime>,
}

impl PasswordGuesser {
    /// Creates the attacker.
    pub fn new(config: PasswordGuessConfig) -> PasswordGuesser {
        PasswordGuesser {
            config,
            next_guess: 0,
            cseq: 0,
            attempts: 0,
            broke_in: false,
            fired_at: None,
        }
    }

    fn send_register(&mut self, ctx: &mut NodeCtx<'_>, creds: Option<DigestCredentials>) {
        if self.fired_at.is_none() {
            self.fired_at = Some(ctx.now());
        }
        self.cseq += 1;
        let aor: SipUri = format!("sip:{}", self.config.target_aor)
            .parse()
            .expect("aor uri");
        let registrar = SipUri::host_only(aor.host.clone());
        let mut b = RequestBuilder::new(Method::Register, registrar);
        b.from(NameAddr::new(aor.clone()).with_tag("tag-guess"))
            .to(NameAddr::new(aor))
            .call_id(format!("guess-reg@{}", self.config.attacker_ip))
            .cseq(CSeq::new(self.cseq, Method::Register))
            .via(Via::udp(
                format!("{}:5060", self.config.attacker_ip),
                format!("z9hG4bK-guess-{}", self.cseq),
            ))
            .expires(3600);
        if let Some(creds) = creds {
            b.header(HeaderName::Authorization, creds.to_string());
        }
        ctx.send_udp(5060, self.config.proxy_ip, 5060, b.build().to_bytes());
    }
}

impl Node for PasswordGuesser {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.config.start_at, TOK_START);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if pkt.dst != self.config.attacker_ip {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port != 5060 {
            return;
        }
        let Ok(msg) = SipMessage::parse(&udp.payload) else {
            return;
        };
        let Some(status) = msg.status() else {
            return;
        };
        if status.is_success() {
            self.broke_in = true;
            return;
        }
        if status.code() != 401 {
            return;
        }
        // Answer the challenge with the next guess.
        let Some(challenge) = msg
            .headers
            .get(&HeaderName::WwwAuthenticate)
            .and_then(|v| DigestChallenge::parse(v).ok())
        else {
            return;
        };
        if self.next_guess >= self.config.guesses.len() {
            return; // out of guesses
        }
        let guess = self.config.guesses[self.next_guess].clone();
        self.next_guess += 1;
        self.attempts += 1;
        let registrar = format!("sip:{}", self.config.target_aor);
        let uri_part = registrar
            .split('@')
            .nth(1)
            .map(|h| format!("sip:{h}"))
            .unwrap_or(registrar);
        let creds = DigestCredentials::answer(
            &challenge,
            &self.config.username,
            &guess,
            Method::Register,
            &uri_part,
        );
        self.send_register(ctx, Some(creds));
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token == TOK_START && self.cseq == 0 {
            self.send_register(ctx, None);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::scenario::TestbedBuilder;

    #[test]
    fn wrong_guesses_fail_and_are_counted() {
        let mut tb = TestbedBuilder::new(61)
            .with_auth(&[("alice", "real-password")])
            .build();
        let ep = tb.endpoints.clone();
        let cfg = PasswordGuessConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(100),
            10,
        );
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(PasswordGuesser::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(10));
        let atk = tb.sim.node_as::<PasswordGuesser>(attacker).unwrap();
        assert_eq!(atk.attempts, 10);
        assert!(!atk.broke_in);
        let stats = tb.proxy_stats();
        assert_eq!(stats.auth_failures, 10);
        assert_eq!(stats.registrations, 0);
    }

    #[test]
    fn correct_final_guess_breaks_in() {
        let mut tb = TestbedBuilder::new(62)
            .with_auth(&[("alice", "s3cret")])
            .build();
        let ep = tb.endpoints.clone();
        let mut cfg = PasswordGuessConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(100),
            3,
        );
        cfg.guesses.push("s3cret".to_string());
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(PasswordGuesser::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(10));
        let atk = tb.sim.node_as::<PasswordGuesser>(attacker).unwrap();
        assert!(atk.broke_in);
        assert_eq!(atk.attempts, 4);
        assert_eq!(tb.proxy_stats().registrations, 1);
    }
}
