//! The BYE attack (paper §4.2.1, Figure 5).
//!
//! The attacker sniffs an ongoing dialog between A and B, then sends A a
//! forged BYE that claims to come from B (spoofed source IP, B's tag and
//! Call-ID). A tears the session down and stops its media; B, unaware,
//! keeps streaming RTP at A — the orphan flow SCIDIVE's cross-protocol
//! rule detects.

use crate::sniff::DialogSniffer;
use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::header::{CSeq, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{RequestBuilder, SipMessage};
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// Configuration of the BYE attacker.
#[derive(Debug, Clone)]
pub struct ByeAttackConfig {
    /// The attacker's own address.
    pub attacker_ip: Ipv4Addr,
    /// The victim (client A, the call's originator) — receives the BYE.
    pub victim_ip: Ipv4Addr,
    /// The impersonated peer (client B).
    pub peer_ip: Ipv4Addr,
    /// The victim's AOR (caller side of the sniffed dialog).
    pub caller_aor: String,
    /// The impersonated peer's AOR (callee side).
    pub callee_aor: String,
    /// How long after the call establishes to strike.
    pub delay_after_established: SimDuration,
    /// Spoof the IP source as the peer (defeats naive IP checks).
    pub spoof_ip: bool,
}

impl ByeAttackConfig {
    /// A standard config striking `delay` after call setup.
    pub fn new(
        attacker_ip: Ipv4Addr,
        victim_ip: Ipv4Addr,
        peer_ip: Ipv4Addr,
        delay: SimDuration,
    ) -> ByeAttackConfig {
        ByeAttackConfig {
            attacker_ip,
            victim_ip,
            peer_ip,
            caller_aor: "alice@lab".to_string(),
            callee_aor: "bob@lab".to_string(),
            delay_after_established: delay,
            spoof_ip: true,
        }
    }
}

/// The BYE attacker node.
#[derive(Debug)]
pub struct ByeAttacker {
    config: ByeAttackConfig,
    sniffer: DialogSniffer,
    fired: bool,
    /// When the forged BYE left, if it has (ground truth for detection
    /// delay measurements).
    pub fired_at: Option<SimTime>,
}

impl ByeAttacker {
    /// Creates the attacker.
    pub fn new(config: ByeAttackConfig) -> ByeAttacker {
        let sniffer = DialogSniffer::new(config.caller_aor.clone(), config.callee_aor.clone());
        ByeAttacker {
            config,
            sniffer,
            fired: false,
            fired_at: None,
        }
    }

    /// Builds the forged BYE from everything sniffed.
    fn forge_bye(&self) -> SipMessage {
        let d = self.sniffer.dialog();
        let target = d
            .caller_contact
            .clone()
            .unwrap_or_else(|| SipUri::new("alice", self.config.victim_ip.to_string()));
        let mut from = NameAddr::new(
            format!("sip:{}", self.config.callee_aor).parse().expect("aor uri"),
        );
        if let Some(tag) = &d.callee_tag {
            from = from.with_tag(tag);
        }
        let mut to = NameAddr::new(
            format!("sip:{}", self.config.caller_aor).parse().expect("aor uri"),
        );
        if let Some(tag) = &d.caller_tag {
            to = to.with_tag(tag);
        }
        let mut b = RequestBuilder::new(Method::Bye, target);
        b.from(from)
            .to(to)
            .call_id(&d.call_id)
            .cseq(CSeq::new(d.invite_cseq + 100, Method::Bye))
            .via(Via::udp(
                format!("{}:5060", self.config.peer_ip),
                "z9hG4bK-forged-bye",
            ));
        b.build()
    }
}

impl Node for ByeAttacker {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if self.fired {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port != 5060 && udp.src_port != 5060 {
            return;
        }
        let Ok(msg) = SipMessage::parse(&udp.payload) else {
            return;
        };
        if self.sniffer.observe(&msg) {
            ctx.set_timer(self.config.delay_after_established, TOK_FIRE);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token != TOK_FIRE || self.fired || !self.sniffer.is_established() {
            return;
        }
        self.fired = true;
        self.fired_at = Some(ctx.now());
        let bye = self.forge_bye();
        let src = if self.config.spoof_ip {
            self.config.peer_ip
        } else {
            self.config.attacker_ip
        };
        ctx.send(IpPacket::udp(
            src,
            5060,
            self.config.victim_ip,
            5060,
            bye.to_bytes(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_netsim::time::SimDuration;
    use scidive_voip::events::UaEventKind;
    use scidive_voip::scenario::TestbedBuilder;

    #[test]
    fn forged_bye_tears_down_a_but_not_b() {
        let mut tb = TestbedBuilder::new(11)
            .standard_call(SimDuration::from_millis(500), None)
            .build();
        let ep = tb.endpoints.clone();
        let cfg = ByeAttackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(1_000),
        );
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(ByeAttacker::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(5));

        // A believes B hung up.
        assert!(tb.a_events().iter().any(
            |e| matches!(&e.kind, UaEventKind::CallTerminated { by_remote: true, .. })
        ));
        // B never saw a teardown: still in the call.
        assert!(tb.ua(tb.b).unwrap().has_active_call());
        assert!(!tb
            .b_events()
            .iter()
            .any(|e| matches!(&e.kind, UaEventKind::CallTerminated { .. })));
        // The attack fired.
        let atk = tb.sim.node_as::<ByeAttacker>(attacker).unwrap();
        assert!(atk.fired_at.is_some());
        // Orphan flow: RTP from B towards A continues after the BYE.
        let fired_at = atk.fired_at.unwrap();
        let orphan = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.time > fired_at
                    && r.packet.src == ep.b_ip
                    && r.packet.dst == ep.a_ip
                    && r.packet
                        .decode_udp()
                        .map(|u| u.dst_port == ep.a_rtp)
                        .unwrap_or(false)
            })
            .count();
        assert!(orphan > 10, "orphan RTP packets: {orphan}");
    }
}
