//! The RTP attack (paper §4.2.4, Figure 8).
//!
//! The attacker sends RTP-port-addressed garbage at a client in a call:
//! either packets of pure random bytes ("both the header and the payload
//! are filled with random bytes") or well-formed RTP whose sequence
//! numbers jump wildly. Both corrupt the receiver's jitter buffer —
//! crashing fragile clients (X-Lite) and glitching robust ones
//! (Windows Messenger) — and both violate the sequence-number discipline
//! SCIDIVE's rule checks (consecutive delta > 100).

use crate::sniff::DialogSniffer;
use rand::RngCore;
use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_rtp::packet::{RtpHeader, RtpPacket};
use scidive_sip::msg::SipMessage;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// What the flood packets look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodMode {
    /// Pure random bytes — usually not even valid RTP framing.
    Garbage,
    /// Valid RTP headers with wildly jumping sequence numbers and the
    /// victim stream's SSRC (harder to filter).
    WildSeq,
}

/// Configuration of the RTP flooder.
#[derive(Debug, Clone)]
pub struct RtpFloodConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The victim client.
    pub victim_ip: Ipv4Addr,
    /// Caller AOR of the dialog to disrupt (for sniffing the RTP port).
    pub caller_aor: String,
    /// Callee AOR.
    pub callee_aor: String,
    /// Packet style.
    pub mode: FloodMode,
    /// Packets to send.
    pub count: u32,
    /// Gap between packets.
    pub interval: SimDuration,
    /// Delay after the call establishes.
    pub delay_after_established: SimDuration,
    /// Spoof the source address as the peer's.
    pub spoof_ip: bool,
}

impl RtpFloodConfig {
    /// A standard garbage flood.
    pub fn new(attacker_ip: Ipv4Addr, victim_ip: Ipv4Addr, delay: SimDuration) -> RtpFloodConfig {
        RtpFloodConfig {
            attacker_ip,
            victim_ip,
            caller_aor: "alice@lab".to_string(),
            callee_aor: "bob@lab".to_string(),
            mode: FloodMode::Garbage,
            count: 20,
            interval: SimDuration::from_millis(20),
            delay_after_established: delay,
            spoof_ip: false,
        }
    }
}

/// The RTP flooder node.
#[derive(Debug)]
pub struct RtpFlooder {
    config: RtpFloodConfig,
    sniffer: DialogSniffer,
    /// The victim's RTP port, once sniffed from SDP.
    target: Option<(Ipv4Addr, u16)>,
    sent: u32,
    wild_seq: u16,
    victim_ssrc: u32,
    /// When the first garbage packet left.
    pub fired_at: Option<SimTime>,
}

impl RtpFlooder {
    /// Creates the attacker.
    pub fn new(config: RtpFloodConfig) -> RtpFlooder {
        let sniffer = DialogSniffer::new(config.caller_aor.clone(), config.callee_aor.clone());
        RtpFlooder {
            config,
            sniffer,
            target: None,
            sent: 0,
            wild_seq: 0,
            victim_ssrc: 0,
            fired_at: None,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u32 {
        self.sent
    }

    fn fire_one(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some((ip, port)) = self.target else {
            return;
        };
        if self.fired_at.is_none() {
            self.fired_at = Some(ctx.now());
        }
        let payload: Vec<u8> = match self.config.mode {
            FloodMode::Garbage => {
                let mut buf = vec![0u8; 172];
                ctx.rng().fill_bytes(&mut buf);
                buf
            }
            FloodMode::WildSeq => {
                // Leap far beyond the legitimate stream.
                self.wild_seq = self.wild_seq.wrapping_add(7_777);
                let header = RtpHeader::new(0, self.wild_seq, ctx.rng().next_u32(), self.victim_ssrc);
                RtpPacket::new(header, vec![0xAAu8; 160]).encode().to_vec()
            }
        };
        let src = if self.config.spoof_ip {
            self.sniffer
                .dialog()
                .callee_rtp
                .map(|(ip, _)| ip)
                .unwrap_or(self.config.attacker_ip)
        } else {
            self.config.attacker_ip
        };
        ctx.send(IpPacket::udp(src, 4444, ip, port, payload));
        self.sent += 1;
        if self.sent < self.config.count {
            ctx.set_timer(self.config.interval, TOK_FIRE);
        }
    }
}

impl Node for RtpFlooder {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if self.target.is_some() {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port != 5060 && udp.src_port != 5060 {
            return;
        }
        let Ok(msg) = SipMessage::parse(&udp.payload) else {
            return;
        };
        if self.sniffer.observe(&msg) {
            // The victim's media sink is in whichever SDP the victim sent.
            let d = self.sniffer.dialog();
            self.target = [d.caller_rtp, d.callee_rtp]
                .into_iter()
                .flatten()
                .find(|(ip, _)| *ip == self.config.victim_ip);
            if self.target.is_some() {
                ctx.set_timer(self.config.delay_after_established, TOK_FIRE);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token == TOK_FIRE {
            self.fire_one(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::events::UaEventKind;
    use scidive_voip::scenario::TestbedBuilder;

    fn run_flood(mode: FloodMode, fragile: bool, seed: u64) -> (bool, u64, Vec<UaEventKind>) {
        let mut builder = TestbedBuilder::new(seed).standard_call(SimDuration::from_millis(500), None);
        if fragile {
            builder = builder.a_fragile(5);
        }
        let mut tb = builder.build();
        let ep = tb.endpoints.clone();
        let mut cfg = RtpFloodConfig::new(ep.attacker_ip, ep.a_ip, SimDuration::from_millis(1_000));
        cfg.mode = mode;
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(RtpFlooder::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(5));
        let ua = tb.ua(tb.a).unwrap();
        let crashed = ua.is_crashed();
        let disruptions = ua.buffer_stats().disruptions;
        let kinds = tb.a_events().iter().map(|e| e.kind.clone()).collect();
        (crashed, disruptions, kinds)
    }

    #[test]
    fn garbage_flood_crashes_fragile_client() {
        let (crashed, disruptions, kinds) = run_flood(FloodMode::Garbage, true, 41);
        assert!(crashed, "fragile client should crash (X-Lite behaviour)");
        assert!(disruptions >= 5, "disruptions={disruptions}");
        assert!(kinds.iter().any(|k| matches!(k, UaEventKind::Crashed { .. })));
    }

    #[test]
    fn garbage_flood_only_glitches_robust_client() {
        let (crashed, disruptions, kinds) = run_flood(FloodMode::Garbage, false, 42);
        assert!(!crashed, "robust client glitches (Messenger behaviour)");
        assert!(disruptions >= 5);
        assert!(kinds
            .iter()
            .any(|k| matches!(k, UaEventKind::RtpDisruption { .. })));
        assert!(!kinds.iter().any(|k| matches!(k, UaEventKind::Crashed { .. })));
    }

    #[test]
    fn wild_seq_flood_also_disrupts() {
        let (_, disruptions, _) = run_flood(FloodMode::WildSeq, false, 43);
        assert!(disruptions >= 5, "disruptions={disruptions}");
    }
}
