//! The call-hijacking attack (paper §4.2.3, Figure 7).
//!
//! The attacker forges a re-INVITE to A claiming B's media endpoint
//! moved — to an address the attacker controls. A redirects its RTP
//! there; B hears silence (a DoS) and the attacker can listen to A's
//! side of the conversation (a confidentiality breach). B's own RTP
//! keeps arriving at A: the orphan flow SCIDIVE keys on.

use crate::sniff::DialogSniffer;
use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{RequestBuilder, SipMessage};
use scidive_sip::sdp::SessionDescription;
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// Configuration of the hijacker.
#[derive(Debug, Clone)]
pub struct HijackConfig {
    /// The attacker's address (where hijacked media will be redirected).
    pub attacker_ip: Ipv4Addr,
    /// The attacker's RTP listening port.
    pub attacker_rtp: u16,
    /// The victim (client A) — receives the forged re-INVITE.
    pub victim_ip: Ipv4Addr,
    /// The impersonated peer (client B).
    pub peer_ip: Ipv4Addr,
    /// The victim's AOR (caller side).
    pub caller_aor: String,
    /// The impersonated peer's AOR (callee side).
    pub callee_aor: String,
    /// How long after call setup to strike.
    pub delay_after_established: SimDuration,
    /// Spoof the IP source as the peer.
    pub spoof_ip: bool,
}

impl HijackConfig {
    /// A standard config.
    pub fn new(
        attacker_ip: Ipv4Addr,
        victim_ip: Ipv4Addr,
        peer_ip: Ipv4Addr,
        delay: SimDuration,
    ) -> HijackConfig {
        HijackConfig {
            attacker_ip,
            attacker_rtp: 7000,
            victim_ip,
            peer_ip,
            caller_aor: "alice@lab".to_string(),
            callee_aor: "bob@lab".to_string(),
            delay_after_established: delay,
            spoof_ip: true,
        }
    }
}

/// The hijacker node.
#[derive(Debug)]
pub struct Hijacker {
    config: HijackConfig,
    sniffer: DialogSniffer,
    fired: bool,
    /// When the forged re-INVITE left.
    pub fired_at: Option<SimTime>,
    /// Hijacked RTP packets captured at the attacker (proof the
    /// redirection worked).
    pub stolen_rtp: u64,
}

impl Hijacker {
    /// Creates the attacker.
    pub fn new(config: HijackConfig) -> Hijacker {
        let sniffer = DialogSniffer::new(config.caller_aor.clone(), config.callee_aor.clone());
        Hijacker {
            config,
            sniffer,
            fired: false,
            fired_at: None,
            stolen_rtp: 0,
        }
    }

    fn forge_reinvite(&self) -> SipMessage {
        let d = self.sniffer.dialog();
        let target = d
            .caller_contact
            .clone()
            .unwrap_or_else(|| SipUri::new("alice", self.config.victim_ip.to_string()));
        let mut from = NameAddr::new(
            format!("sip:{}", self.config.callee_aor).parse().expect("aor uri"),
        );
        if let Some(tag) = &d.callee_tag {
            from = from.with_tag(tag);
        }
        let mut to = NameAddr::new(
            format!("sip:{}", self.config.caller_aor).parse().expect("aor uri"),
        );
        if let Some(tag) = &d.caller_tag {
            to = to.with_tag(tag);
        }
        // "B has moved to the attacker's address."
        let sdp = SessionDescription::audio_offer(
            "bob",
            self.config.attacker_ip,
            self.config.attacker_rtp,
        );
        let mut b = RequestBuilder::new(Method::Invite, target);
        b.from(from)
            .to(to)
            .call_id(&d.call_id)
            .cseq(CSeq::new(d.invite_cseq + 100, Method::Invite))
            .via(Via::udp(
                format!("{}:5060", self.config.peer_ip),
                "z9hG4bK-forged-reinvite",
            ))
            .header(
                HeaderName::Contact,
                NameAddr::new(
                    SipUri::new("bob", self.config.attacker_ip.to_string()).with_port(5060),
                )
                .to_string(),
            )
            .body("application/sdp", sdp.to_string());
        b.build()
    }
}

impl Node for Hijacker {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        // Count media redirected to us.
        if pkt.dst == self.config.attacker_ip && udp.dst_port == self.config.attacker_rtp {
            self.stolen_rtp += 1;
            return;
        }
        if self.fired {
            return;
        }
        if udp.dst_port != 5060 && udp.src_port != 5060 {
            return;
        }
        let Ok(msg) = SipMessage::parse(&udp.payload) else {
            return;
        };
        if self.sniffer.observe(&msg) {
            ctx.set_timer(self.config.delay_after_established, TOK_FIRE);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token != TOK_FIRE || self.fired || !self.sniffer.is_established() {
            return;
        }
        self.fired = true;
        self.fired_at = Some(ctx.now());
        let reinvite = self.forge_reinvite();
        let src = if self.config.spoof_ip {
            self.config.peer_ip
        } else {
            self.config.attacker_ip
        };
        ctx.send(IpPacket::udp(
            src,
            5060,
            self.config.victim_ip,
            5060,
            reinvite.to_bytes(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::events::UaEventKind;
    use scidive_voip::scenario::TestbedBuilder;

    #[test]
    fn reinvite_redirects_a_media_to_attacker() {
        let mut tb = TestbedBuilder::new(21)
            .standard_call(SimDuration::from_millis(500), None)
            .build();
        let ep = tb.endpoints.clone();
        let cfg = HijackConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(1_000),
        );
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(Hijacker::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(5));

        // A retargeted its media to the attacker.
        assert!(tb.a_events().iter().any(|e| matches!(
            &e.kind,
            UaEventKind::MediaRetargeted { target, port, .. }
                if *target == ep.attacker_ip && *port == 7000
        )));
        // The attacker actually captured A's audio.
        let atk = tb.sim.node_as::<Hijacker>(attacker).unwrap();
        assert!(atk.fired_at.is_some());
        assert!(atk.stolen_rtp > 50, "stolen_rtp={}", atk.stolen_rtp);
        // B's orphan RTP keeps arriving at A after the forged re-INVITE.
        let fired_at = atk.fired_at.unwrap();
        let orphan = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.time > fired_at
                    && r.packet.src == ep.b_ip
                    && r.packet.dst == ep.a_ip
                    && r.packet
                        .decode_udp()
                        .map(|u| u.dst_port == ep.a_rtp)
                        .unwrap_or(false)
            })
            .count();
        assert!(orphan > 10, "orphan RTP packets: {orphan}");
        // B experiences silence: no more RTP from A to B after hijack
        // (aside from packets already in flight).
        let to_b_after = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.time > fired_at + SimDuration::from_millis(100)
                    && r.packet.dst == ep.b_ip
                    && r.packet
                        .decode_udp()
                        .map(|u| u.dst_port == ep.b_rtp)
                        .unwrap_or(false)
            })
            .count();
        assert_eq!(to_b_after, 0, "B still receives RTP after hijack");
    }
}
