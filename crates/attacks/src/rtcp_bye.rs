//! The forged RTCP BYE attack (an extension beyond the paper's four:
//! the classic RTCP teardown attack on the third protocol of the
//! paper's SIP→RTP→RTCP chain, §3.1).
//!
//! RTCP is as unauthenticated as RTP: an attacker who sniffs a stream's
//! SSRC can send the receiver a forged RTCP BYE claiming the source has
//! left. Receivers that trust it tear down playout; either way the
//! stream *keeps flowing* after its own goodbye — the same
//! orphan-after-teardown structure as the SIP BYE attack, one protocol
//! down the stack, and SCIDIVE's `rtcp-bye-anomaly` rule catches it the
//! same way.

use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_rtp::packet::RtpPacket;
use scidive_rtp::rtcp::RtcpPacket;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// Configuration of the RTCP BYE forger.
#[derive(Debug, Clone)]
pub struct RtcpByeConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The victim (receiver of the stream being "ended").
    pub victim_ip: Ipv4Addr,
    /// The impersonated sender.
    pub peer_ip: Ipv4Addr,
    /// Delay after first sniffing the stream.
    pub delay_after_stream: SimDuration,
    /// Spoof the IP source as the peer.
    pub spoof_ip: bool,
}

impl RtcpByeConfig {
    /// A standard config.
    pub fn new(
        attacker_ip: Ipv4Addr,
        victim_ip: Ipv4Addr,
        peer_ip: Ipv4Addr,
        delay: SimDuration,
    ) -> RtcpByeConfig {
        RtcpByeConfig {
            attacker_ip,
            victim_ip,
            peer_ip,
            delay_after_stream: delay,
            spoof_ip: true,
        }
    }
}

/// The RTCP BYE forger: sniffs the peer→victim RTP stream to learn the
/// SSRC and the victim's media port, then forges the goodbye.
#[derive(Debug)]
pub struct RtcpByeForger {
    config: RtcpByeConfig,
    /// (victim RTP port, stream SSRC) once sniffed.
    target: Option<(u16, u32)>,
    fired: bool,
    /// When the forged BYE left.
    pub fired_at: Option<SimTime>,
}

impl RtcpByeForger {
    /// Creates the attacker.
    pub fn new(config: RtcpByeConfig) -> RtcpByeForger {
        RtcpByeForger {
            config,
            target: None,
            fired: false,
            fired_at: None,
        }
    }
}

impl Node for RtcpByeForger {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if self.fired || self.target.is_some() {
            return;
        }
        // Sniff the peer→victim media stream.
        if pkt.src != self.config.peer_ip || pkt.dst != self.config.victim_ip {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        let Ok(rtp) = RtpPacket::decode(&udp.payload) else {
            return;
        };
        self.target = Some((udp.dst_port, rtp.header.ssrc));
        ctx.set_timer(self.config.delay_after_stream, TOK_FIRE);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token != TOK_FIRE || self.fired {
            return;
        }
        let Some((rtp_port, ssrc)) = self.target else {
            return;
        };
        self.fired = true;
        self.fired_at = Some(ctx.now());
        let bye = RtcpPacket::Bye { ssrcs: vec![ssrc] };
        let src = if self.config.spoof_ip {
            self.config.peer_ip
        } else {
            self.config.attacker_ip
        };
        // RTCP rides on the RTP port + 1.
        ctx.send(IpPacket::udp(
            src,
            rtp_port + 1,
            self.config.victim_ip,
            rtp_port + 1,
            bye.encode(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::scenario::TestbedBuilder;

    #[test]
    fn forged_rtcp_bye_reaches_victim_while_stream_continues() {
        let mut tb = TestbedBuilder::new(81)
            .standard_call(SimDuration::from_millis(500), None)
            .build();
        let ep = tb.endpoints.clone();
        let cfg = RtcpByeConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(800),
        );
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(RtcpByeForger::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(4));
        let atk = tb.sim.node_as::<RtcpByeForger>(attacker).unwrap();
        let fired_at = atk.fired_at.expect("attack fired");
        // B's stream keeps flowing to A after the forged goodbye.
        let continuing = tb
            .sim
            .trace()
            .records()
            .iter()
            .filter(|r| {
                r.time > fired_at
                    && r.packet.src == ep.b_ip
                    && r.packet
                        .decode_udp()
                        .map(|u| u.dst_port == ep.a_rtp)
                        .unwrap_or(false)
            })
            .count();
        assert!(continuing > 10, "continuing RTP: {continuing}");
        // The forged BYE itself is on the wire at the RTCP port.
        let byes = tb.sim.trace().filter_udp_port(ep.a_rtp + 1).len();
        assert!(byes >= 1);
    }
}
