//! The fake instant-messaging attack (paper §4.2.2, Figure 6).
//!
//! SIP MESSAGE carries IM. The attacker sends A a message whose `From`
//! header claims to be B. SCIDIVE's rule compares the claimed identity
//! against the network source address (allowing for mobility); an
//! attacker who can also spoof the IP defeats the endpoint rule — the
//! limitation the paper concedes — so the spoofing knob exists here to
//! reproduce both outcomes.

use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::header::{CSeq, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::RequestBuilder;
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// Configuration of the fake-IM attacker.
#[derive(Debug, Clone)]
pub struct FakeImConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The victim (receives the fake message).
    pub victim_ip: Ipv4Addr,
    /// The impersonated sender's AOR.
    pub impersonated_aor: String,
    /// The impersonated sender's real IP (for the spoofing variant).
    pub impersonated_ip: Ipv4Addr,
    /// When to send, from simulation start.
    pub send_at: SimDuration,
    /// Message text.
    pub text: String,
    /// Also spoof the IP source (defeats the endpoint IDS rule).
    pub spoof_ip: bool,
}

impl FakeImConfig {
    /// A standard config: impersonate bob@lab without IP spoofing.
    pub fn new(
        attacker_ip: Ipv4Addr,
        victim_ip: Ipv4Addr,
        impersonated_ip: Ipv4Addr,
        send_at: SimDuration,
    ) -> FakeImConfig {
        FakeImConfig {
            attacker_ip,
            victim_ip,
            impersonated_aor: "bob@lab".to_string(),
            impersonated_ip,
            send_at,
            text: "wire me $500 please".to_string(),
            spoof_ip: false,
        }
    }
}

/// The fake-IM attacker node.
#[derive(Debug)]
pub struct FakeImAttacker {
    config: FakeImConfig,
    /// When the fake message left.
    pub fired_at: Option<SimTime>,
}

impl FakeImAttacker {
    /// Creates the attacker.
    pub fn new(config: FakeImConfig) -> FakeImAttacker {
        FakeImAttacker {
            config,
            fired_at: None,
        }
    }
}

impl Node for FakeImAttacker {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.config.send_at, TOK_FIRE);
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: IpPacket) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token != TOK_FIRE || self.fired_at.is_some() {
            return;
        }
        self.fired_at = Some(ctx.now());
        let from_uri: SipUri = format!("sip:{}", self.config.impersonated_aor)
            .parse()
            .expect("aor uri");
        let to_uri = SipUri::new("alice", self.config.victim_ip.to_string());
        let src = if self.config.spoof_ip {
            self.config.impersonated_ip
        } else {
            self.config.attacker_ip
        };
        let mut b = RequestBuilder::new(Method::Message, to_uri.clone());
        b.from(NameAddr::new(from_uri).with_tag("tag-fake"))
            .to(NameAddr::new(to_uri))
            .call_id(format!("im-fake-{}", ctx.now().as_micros()))
            .cseq(CSeq::new(1, Method::Message))
            // Via claims the impersonated host so replies go there too.
            .via(Via::udp(
                format!("{}:5060", self.config.impersonated_ip),
                "z9hG4bK-fake-im",
            ))
            .body("text/plain", self.config.text.clone());
        ctx.send(IpPacket::udp(
            src,
            5060,
            self.config.victim_ip,
            5060,
            b.build().to_bytes(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::events::UaEventKind;
    use scidive_voip::scenario::TestbedBuilder;
    use scidive_voip::ua::{ScriptStep, UaAction};

    #[test]
    fn victim_sees_message_claiming_bob_from_wrong_ip() {
        let mut tb = TestbedBuilder::new(31)
            .a_script(vec![ScriptStep::new(
                SimDuration::from_millis(10),
                UaAction::Register,
            )])
            .build();
        let ep = tb.endpoints.clone();
        let cfg = FakeImConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(500),
        );
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(FakeImAttacker::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(2));
        let fakes: Vec<_> = tb
            .a_events()
            .iter()
            .filter_map(|e| match &e.kind {
                UaEventKind::ImReceived {
                    claimed_from,
                    src_ip,
                    ..
                } => Some((claimed_from.aor(), *src_ip)),
                _ => None,
            })
            .collect();
        assert_eq!(fakes.len(), 1);
        assert_eq!(fakes[0].0, "bob@lab");
        // The tell: the packet's source is the attacker, not bob's host.
        assert_eq!(fakes[0].1, ep.attacker_ip);
    }

    #[test]
    fn spoofed_variant_hides_the_source() {
        let mut tb = TestbedBuilder::new(32).build();
        let ep = tb.endpoints.clone();
        let mut cfg = FakeImConfig::new(
            ep.attacker_ip,
            ep.a_ip,
            ep.b_ip,
            SimDuration::from_millis(500),
        );
        cfg.spoof_ip = true;
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(FakeImAttacker::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(2));
        let fakes: Vec<_> = tb
            .a_events()
            .iter()
            .filter_map(|e| match &e.kind {
                UaEventKind::ImReceived { src_ip, .. } => Some(*src_ip),
                _ => None,
            })
            .collect();
        assert_eq!(fakes, vec![ep.b_ip]); // indistinguishable at the IP layer
    }
}
