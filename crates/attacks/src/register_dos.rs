//! The REGISTER-flood DoS attack (paper §3.3).
//!
//! "An unauthorized user client keeps sending unauthenticated REGISTER
//! requests to bombard the SIP proxy and ignores the 401 UNAUTHORIZED
//! reply error message." Each request makes the registrar mint a nonce
//! and send a challenge, so the flood costs the server work and fills
//! the signalling channel with request/4xx churn.

use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::header::{CSeq, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::RequestBuilder;
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_FIRE: TimerToken = 1;

/// Configuration of the REGISTER flooder.
#[derive(Debug, Clone)]
pub struct RegisterDosConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The registrar under attack.
    pub proxy_ip: Ipv4Addr,
    /// The AOR to (fail to) register; a real user's makes it nastier.
    pub aor: String,
    /// When to start.
    pub start_at: SimDuration,
    /// REGISTERs to send.
    pub count: u32,
    /// Gap between requests.
    pub interval: SimDuration,
}

impl RegisterDosConfig {
    /// A standard flood: 50 unauthenticated REGISTERs, one per 100 ms.
    pub fn new(attacker_ip: Ipv4Addr, proxy_ip: Ipv4Addr, start_at: SimDuration) -> RegisterDosConfig {
        RegisterDosConfig {
            attacker_ip,
            proxy_ip,
            aor: "mallory@lab".to_string(),
            start_at,
            count: 50,
            interval: SimDuration::from_millis(100),
        }
    }
}

/// The REGISTER flooder node. It never answers the 401s — it just keeps
/// re-sending the same unauthenticated request.
#[derive(Debug)]
pub struct RegisterFlooder {
    config: RegisterDosConfig,
    sent: u32,
    /// 401 responses seen (and ignored).
    pub challenges_ignored: u32,
    /// When the first REGISTER left.
    pub fired_at: Option<SimTime>,
}

impl RegisterFlooder {
    /// Creates the attacker.
    pub fn new(config: RegisterDosConfig) -> RegisterFlooder {
        RegisterFlooder {
            config,
            sent: 0,
            challenges_ignored: 0,
            fired_at: None,
        }
    }

    /// REGISTERs sent so far.
    pub fn sent(&self) -> u32 {
        self.sent
    }

    fn fire_one(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.fired_at.is_none() {
            self.fired_at = Some(ctx.now());
        }
        self.sent += 1;
        let aor: SipUri = format!("sip:{}", self.config.aor).parse().expect("aor uri");
        let registrar = SipUri::host_only(aor.host.clone());
        let mut b = RequestBuilder::new(Method::Register, registrar);
        b.from(NameAddr::new(aor.clone()).with_tag("tag-dos"))
            .to(NameAddr::new(aor.clone()))
            .call_id(format!("dos-reg-{}@{}", self.sent, self.config.attacker_ip))
            .cseq(CSeq::new(self.sent, Method::Register))
            .via(Via::udp(
                format!("{}:5060", self.config.attacker_ip),
                format!("z9hG4bK-dos-{}", self.sent),
            ))
            .contact(NameAddr::new(
                SipUri::new(
                    aor.user.unwrap_or_default(),
                    self.config.attacker_ip.to_string(),
                )
                .with_port(5060),
            ))
            .expires(3600);
        ctx.send_udp(5060, self.config.proxy_ip, 5060, b.build().to_bytes());
        if self.sent < self.config.count {
            ctx.set_timer(self.config.interval, TOK_FIRE);
        }
    }
}

impl Node for RegisterFlooder {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.config.start_at, TOK_FIRE);
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        // Ignore the 401s — but count them for ground truth.
        if pkt.dst == self.config.attacker_ip {
            if let Ok(udp) = pkt.decode_udp() {
                if udp.dst_port == 5060 && udp.payload.starts_with(b"SIP/2.0 401") {
                    self.challenges_ignored += 1;
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        if token == TOK_FIRE {
            self.fire_one(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::scenario::TestbedBuilder;

    #[test]
    fn flood_draws_one_challenge_per_register() {
        let mut tb = TestbedBuilder::new(51)
            .with_auth(&[("alice", "pw-a"), ("bob", "pw-b")])
            .build();
        let ep = tb.endpoints.clone();
        let mut cfg = RegisterDosConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(100),
        );
        cfg.count = 30;
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(RegisterFlooder::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(10));
        let stats = tb.proxy_stats();
        assert_eq!(stats.registers, 30);
        assert_eq!(stats.challenges, 30);
        assert_eq!(stats.registrations, 0);
        let atk = tb.sim.node_as::<RegisterFlooder>(attacker).unwrap();
        assert_eq!(atk.sent(), 30);
        assert_eq!(atk.challenges_ignored, 30);
    }
}
