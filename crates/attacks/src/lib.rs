//! # scidive-attacks — scripted attackers for the SCIDIVE testbed
//!
//! One attacker node per scenario in the paper:
//!
//! | Module | Paper section | Attack |
//! |---|---|---|
//! | [`bye`] | §4.2.1 | Forged BYE tears down A's side of a call |
//! | [`fake_im`] | §4.2.2 | Instant message impersonating another user |
//! | [`hijack`] | §4.2.3 | Forged re-INVITE redirects A's media to the attacker |
//! | [`rtp_flood`] | §4.2.4 | Garbage RTP corrupts the victim's jitter buffer |
//! | [`register_dos`] | §3.3 | Unauthenticated REGISTER flood at the proxy |
//! | [`password`] | §3.3 | Digest brute-force against a user account |
//! | [`billing`] | §3.2 | Crafted INVITE makes the proxy bill someone else |
//! | [`rtcp_bye`] | extension | Forged RTCP BYE "ends" a stream that keeps flowing |
//!
//! All attackers are [`scidive_netsim::node::Node`]s added to a
//! [`scidive_voip::scenario::Testbed`]; the in-dialog ones sniff the hub
//! (promiscuously, like the real attack tools would on the paper's
//! topology) via [`sniff::DialogSniffer`] to harvest Call-IDs, tags and
//! SDP media targets before striking.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod billing;
pub mod bye;
pub mod fake_im;
pub mod hijack;
pub mod password;
pub mod register_dos;
pub mod rtcp_bye;
pub mod rtp_flood;
pub mod sniff;

/// Convenient glob import of all attackers.
pub mod prelude {
    pub use crate::billing::{BillingFraudConfig, BillingFraudster};
    pub use crate::bye::{ByeAttackConfig, ByeAttacker};
    pub use crate::fake_im::{FakeImAttacker, FakeImConfig};
    pub use crate::hijack::{HijackConfig, Hijacker};
    pub use crate::password::{PasswordGuessConfig, PasswordGuesser};
    pub use crate::register_dos::{RegisterDosConfig, RegisterFlooder};
    pub use crate::rtcp_bye::{RtcpByeConfig, RtcpByeForger};
    pub use crate::rtp_flood::{FloodMode, RtpFloodConfig, RtpFlooder};
    pub use crate::sniff::{DialogSniffer, SniffedDialog};
}
