//! The billing-fraud attack (paper §3.2).
//!
//! The attacker exploits a proxy vulnerability with a "carefully crafted
//! SIP message [that fools] the proxy into believing the call is
//! initiated by someone else": here, a malformed INVITE (it violates the
//! mandatory-header discipline) carrying a `P-Billing-Id` header that the
//! vulnerable proxy trusts as the billable party. The attacker then
//! completes the call and streams media without ever being charged —
//! the victim is.

use scidive_netsim::node::{Node, NodeCtx, TimerToken};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_rtp::source::{MediaSource, FRAME_PERIOD_MS};
use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{RequestBuilder, SipMessage};
use scidive_sip::sdp::SessionDescription;
use scidive_sip::uri::SipUri;
use std::any::Any;
use std::net::Ipv4Addr;

const TOK_START: TimerToken = 1;
const TOK_MEDIA: TimerToken = 2;

/// Configuration of the billing fraudster.
#[derive(Debug, Clone)]
pub struct BillingFraudConfig {
    /// The attacker's address.
    pub attacker_ip: Ipv4Addr,
    /// The attacker's RTP port.
    pub attacker_rtp: u16,
    /// The vulnerable proxy.
    pub proxy_ip: Ipv4Addr,
    /// Who to call (a real, registered user).
    pub callee_aor: String,
    /// Who gets the bill.
    pub victim_aor: String,
    /// The attacker's own (honest) identity in `From`.
    pub own_aor: String,
    /// When to place the fraudulent call.
    pub start_at: SimDuration,
    /// Media packets to stream once connected.
    pub media_packets: u32,
}

impl BillingFraudConfig {
    /// A standard fraud run: call bob, bill alice.
    pub fn new(attacker_ip: Ipv4Addr, proxy_ip: Ipv4Addr, start_at: SimDuration) -> BillingFraudConfig {
        BillingFraudConfig {
            attacker_ip,
            attacker_rtp: 7200,
            proxy_ip,
            callee_aor: "bob@lab".to_string(),
            victim_aor: "alice@lab".to_string(),
            own_aor: "mallory@lab".to_string(),
            start_at,
            media_packets: 100,
        }
    }
}

/// The fraudster node: a minimal rogue UA.
#[derive(Debug)]
pub struct BillingFraudster {
    config: BillingFraudConfig,
    call_id: String,
    invite: Option<SipMessage>,
    remote_media: Option<(Ipv4Addr, u16)>,
    source: MediaSource,
    media_sent: u32,
    /// Whether the call connected (200 received, ACK sent).
    pub connected: bool,
    /// When the crafted INVITE left.
    pub fired_at: Option<SimTime>,
}

impl BillingFraudster {
    /// Creates the attacker.
    pub fn new(config: BillingFraudConfig) -> BillingFraudster {
        BillingFraudster {
            call_id: format!("fraud-call@{}", config.attacker_ip),
            config,
            invite: None,
            remote_media: None,
            source: MediaSource::new(0xF4A0D, 1, 0),
            media_sent: 0,
            connected: false,
            fired_at: None,
        }
    }

    fn send_invite(&mut self, ctx: &mut NodeCtx<'_>) {
        self.fired_at = Some(ctx.now());
        let callee: SipUri = format!("sip:{}", self.config.callee_aor)
            .parse()
            .expect("aor uri");
        let own: SipUri = format!("sip:{}", self.config.own_aor)
            .parse()
            .expect("aor uri");
        let sdp = SessionDescription::audio_offer(
            "mallory",
            self.config.attacker_ip,
            self.config.attacker_rtp,
        );
        let mut b = RequestBuilder::new(Method::Invite, callee.clone());
        b.from(NameAddr::new(own).with_tag("tag-fraud"))
            .to(NameAddr::new(callee))
            .call_id(&self.call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp(
                format!("{}:5060", self.config.attacker_ip),
                "z9hG4bK-fraud-1",
            ))
            .contact(NameAddr::new(
                SipUri::new("mallory", self.config.attacker_ip.to_string()).with_port(5060),
            ))
            // The exploit: the vulnerable proxy bills this AOR instead of
            // the From identity.
            .header(
                HeaderName::extension("P-Billing-Id"),
                self.config.victim_aor.clone(),
            )
            // The craft: drop a mandatory header so the message is
            // malformed per RFC 3261 §8.1.1 (paper §3.2 condition 1).
            .without(&HeaderName::MaxForwards)
            .body("application/sdp", sdp.to_string());
        let invite = b.build();
        ctx.send_udp(5060, self.config.proxy_ip, 5060, invite.to_bytes());
        self.invite = Some(invite);
    }

    fn send_ack(&mut self, ctx: &mut NodeCtx<'_>, ok: &SipMessage) {
        let contact = ok
            .contact()
            .map(|c| c.uri)
            .unwrap_or_else(|_| format!("sip:{}", self.config.callee_aor).parse().expect("uri"));
        let mut b = RequestBuilder::new(Method::Ack, contact);
        if let Some(invite) = &self.invite {
            if let Some(from) = invite.headers.get(&HeaderName::From) {
                b.header(HeaderName::From, from);
            }
        }
        if let Some(to) = ok.headers.get(&HeaderName::To) {
            b.header(HeaderName::To, to);
        }
        b.call_id(&self.call_id)
            .cseq(CSeq::new(1, Method::Ack))
            .via(Via::udp(
                format!("{}:5060", self.config.attacker_ip),
                "z9hG4bK-fraud-ack",
            ));
        ctx.send_udp(5060, self.config.proxy_ip, 5060, b.build().to_bytes());
    }

    fn media_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some((ip, port)) = self.remote_media else {
            return;
        };
        if self.media_sent >= self.config.media_packets {
            return;
        }
        let pkt = self.source.next_packet();
        ctx.send_udp(self.config.attacker_rtp, ip, port, pkt.encode());
        self.media_sent += 1;
        ctx.set_timer(SimDuration::from_millis(FRAME_PERIOD_MS), TOK_MEDIA);
    }
}

impl Node for BillingFraudster {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.config.start_at, TOK_START);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        if pkt.dst != self.config.attacker_ip {
            return;
        }
        let Ok(udp) = pkt.decode_udp() else {
            return;
        };
        if udp.dst_port != 5060 {
            return;
        }
        let Ok(msg) = SipMessage::parse(&udp.payload) else {
            return;
        };
        if self.connected || msg.call_id().map(|c| c != self.call_id).unwrap_or(true) {
            return;
        }
        if msg.status().map(|s| s.is_success()).unwrap_or(false) {
            self.connected = true;
            if let Some(sdp) = std::str::from_utf8(&msg.body)
                .ok()
                .and_then(|s| s.parse::<SessionDescription>().ok())
            {
                self.remote_media = sdp.rtp_target();
            }
            self.send_ack(ctx, &msg);
            ctx.set_timer(SimDuration::from_millis(FRAME_PERIOD_MS), TOK_MEDIA);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        match token {
            TOK_START if self.fired_at.is_none() => self.send_invite(ctx),
            TOK_MEDIA => self.media_tick(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::link::LinkParams;
    use scidive_voip::scenario::TestbedBuilder;
    use scidive_voip::ua::{ScriptStep, UaAction};

    #[test]
    fn fraudulent_call_bills_the_victim() {
        let mut tb = TestbedBuilder::new(71)
            .with_billing_vuln()
            .a_script(vec![ScriptStep::new(
                SimDuration::from_millis(10),
                UaAction::Register,
            )])
            .b_script(vec![ScriptStep::new(
                SimDuration::from_millis(20),
                UaAction::Register,
            )])
            .build();
        let ep = tb.endpoints.clone();
        let cfg = BillingFraudConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        );
        let attacker = tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(BillingFraudster::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(6));

        let atk = tb.sim.node_as::<BillingFraudster>(attacker).unwrap();
        assert!(atk.connected, "fraud call should connect");
        assert!(atk.media_sent > 50, "media_sent={}", atk.media_sent);

        // The accounting system billed alice, who never placed a call.
        let cdrs = tb.cdrs();
        assert_eq!(cdrs.len(), 1);
        assert_eq!(cdrs[0].caller, "alice@lab");
        assert_eq!(cdrs[0].callee, "bob@lab");
    }

    #[test]
    fn patched_proxy_bills_the_real_caller() {
        let mut tb = TestbedBuilder::new(72)
            .b_script(vec![ScriptStep::new(
                SimDuration::from_millis(20),
                UaAction::Register,
            )])
            .build(); // no billing vuln
        let ep = tb.endpoints.clone();
        let cfg = BillingFraudConfig::new(
            ep.attacker_ip,
            ep.proxy_ip,
            SimDuration::from_millis(500),
        );
        tb.add_node(
            "attacker",
            ep.attacker_ip,
            LinkParams::lan(),
            Box::new(BillingFraudster::new(cfg)),
        );
        tb.run_for(SimDuration::from_secs(6));
        let cdrs = tb.cdrs();
        assert_eq!(cdrs.len(), 1);
        assert_eq!(cdrs[0].caller, "mallory@lab"); // honest attribution
    }
}
