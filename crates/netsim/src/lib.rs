//! # scidive-netsim — deterministic VoIP network substrate
//!
//! A discrete-event network simulator that stands in for the physical
//! testbed of the SCIDIVE paper (DSN 2004, Fig. 4): hosts attached to a
//! shared hub segment, with per-receiver link delay/loss models, IPv4
//! fragmentation, and promiscuous taps for the endpoint IDS.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — a run is a pure function of its `u64` seed.
//!    Virtual time is integer microseconds ([`time::SimTime`]); every
//!    random draw flows from one forked stream ([`rng::SimRng`]).
//! 2. **Honest wire format where the IDS looks** — UDP datagrams are real
//!    bytes with RFC 768 headers and checksums; IP fragmentation splits
//!    and [`frag::Reassembler`] restores them, so the Distiller performs
//!    the same work the paper describes.
//! 3. **The §4.3 random variables are first-class** — link delay is a
//!    configurable distribution ([`dist::DelayDist`]), which is exactly
//!    the `N_sip` / `N_rtp` of the paper's detection-delay model.
//!
//! ## Quickstart
//!
//! ```
//! use scidive_netsim::prelude::*;
//! use std::any::Any;
//! use std::net::Ipv4Addr;
//!
//! struct Responder;
//! impl Node for Responder {
//!     fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
//!         if let Ok(udp) = pkt.decode_udp() {
//!             ctx.send_udp(udp.dst_port, pkt.src, udp.src_port, "pong");
//!         }
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let server = Ipv4Addr::new(10, 0, 0, 2);
//! sim.add_node(
//!     NodeConfig::new("server", server).with_link(LinkParams::lan()),
//!     Box::new(Responder),
//! );
//! sim.inject(
//!     SimTime::ZERO,
//!     IpPacket::udp(Ipv4Addr::new(10, 0, 0, 1), 4000, server, 4000, "ping"),
//! );
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.trace().len(), 2); // ping + pong on the wire
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod frag;
pub mod link;
pub mod node;
pub mod packet;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

/// Convenient glob import of the common simulator types.
pub mod prelude {
    pub use crate::dist::DelayDist;
    pub use crate::frag::{fragment, Reassembler};
    pub use crate::link::LinkParams;
    pub use crate::node::{
        CapturedFrame, Collector, CollectorHandle, Node, NodeCtx, NodeId, TimerToken,
    };
    pub use crate::packet::{IcmpMessage, IpPacket, IpProto, UdpDatagram};
    pub use crate::rng::SimRng;
    pub use crate::sim::{NodeConfig, Simulator};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceRecord};
}
