//! Transmission traces: a pcap-like record of everything on the wire.
//!
//! The simulator records every transmitted frame. Traces back the offline
//! IDS mode (replay a capture through the Distiller), power the ladder
//! diagrams that reproduce the paper's Figures 1 and 5–8, and can be
//! saved/loaded as JSON for regression fixtures.

use crate::node::NodeId;
use crate::packet::IpPacket;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One transmitted frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Transmission time.
    pub time: SimTime,
    /// Sending node, if the frame came from a modelled node.
    #[serde(skip)]
    pub from: Option<NodeId>,
    /// Sending node's name, or `"<injected>"`.
    pub from_name: String,
    /// The frame.
    pub packet: IpPacket,
}

/// An append-only list of [`TraceRecord`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records in transmission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose UDP source or destination port matches `port`.
    pub fn filter_udp_port(&self, port: u16) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.packet
                    .decode_udp()
                    .map(|u| u.src_port == port || u.dst_port == port)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Renders a textual message ladder.
    ///
    /// `label` maps each record to an arrow annotation; records for which
    /// it returns `None` are omitted. This lets higher layers (which know
    /// SIP/RTP) decide how to describe frames, while the ladder layout
    /// stays here.
    pub fn render_ladder<F>(&self, mut label: F) -> String
    where
        F: FnMut(&TraceRecord) -> Option<String>,
    {
        let mut out = String::new();
        for rec in &self.records {
            if let Some(text) = label(rec) {
                let _ = writeln!(
                    out,
                    "{:>12}  {:<12} {} -> {:<15}  {}",
                    rec.time.to_string(),
                    rec.from_name,
                    rec.packet.src,
                    rec.packet.dst.to_string(),
                    text
                );
            }
        }
        out
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(json: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Trace {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(t: u64, src_port: u16, dst_port: u16) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_millis(t),
            from: None,
            from_name: "a".to_string(),
            packet: IpPacket::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                src_port,
                Ipv4Addr::new(10, 0, 0, 2),
                dst_port,
                b"payload".as_ref(),
            ),
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(rec(1, 100, 5060));
        t.push(rec(2, 5060, 100));
        assert_eq!(t.len(), 2);
        let times: Vec<_> = (&t).into_iter().map(|r| r.time).collect();
        assert_eq!(times, vec![SimTime::from_millis(1), SimTime::from_millis(2)]);
    }

    #[test]
    fn filter_by_udp_port() {
        let t: Trace = vec![rec(1, 100, 5060), rec(2, 200, 9000), rec(3, 5060, 300)]
            .into_iter()
            .collect();
        assert_eq!(t.filter_udp_port(5060).len(), 2);
        assert_eq!(t.filter_udp_port(9000).len(), 1);
        assert_eq!(t.filter_udp_port(1).len(), 0);
    }

    #[test]
    fn ladder_rendering_includes_only_labeled() {
        let t: Trace = vec![rec(1, 100, 5060), rec(2, 200, 9000)]
            .into_iter()
            .collect();
        let ladder = t.render_ladder(|r| {
            let udp = r.packet.decode_udp().ok()?;
            (udp.dst_port == 5060).then(|| "INVITE".to_string())
        });
        assert!(ladder.contains("INVITE"));
        assert_eq!(ladder.lines().count(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let t: Trace = vec![rec(1, 100, 5060), rec(2, 200, 9000)]
            .into_iter()
            .collect();
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.records()[0].packet, t.records()[0].packet);
        assert_eq!(back.records()[1].time, t.records()[1].time);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new();
        t.extend(vec![rec(1, 1, 2), rec(2, 3, 4)]);
        assert_eq!(t.len(), 2);
    }
}
