//! Deterministic random-number plumbing.
//!
//! Every source of randomness in a simulation is derived from one master
//! seed. Components obtain their own independent stream with
//! [`SimRng::fork`], keyed by a label, so that adding a new component (or a
//! new draw inside one component) does not perturb the streams of the
//! others. This is what makes whole-simulation runs reproducible from a
//! single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream for one simulation component.
///
/// # Examples
///
/// ```
/// use scidive_netsim::rng::SimRng;
/// use rand::RngCore;
///
/// let mut root = SimRng::seed_from(42);
/// let mut a = root.fork("link-a");
/// let mut b = root.fork("link-b");
/// // Forked streams are independent but reproducible.
/// let x = a.next_u64();
/// let mut root2 = SimRng::seed_from(42);
/// assert_eq!(root2.fork("link-a").next_u64(), x);
/// assert_ne!(b.next_u64(), x);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates the root stream from a master seed.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream keyed by `label`.
    ///
    /// The child depends only on this stream's seed and the label, not on
    /// how many values have been drawn, so the set of forks is stable as
    /// code evolves.
    pub fn fork(&self, label: &str) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::seed_from(child_seed)
    }

    /// Derives an independent child stream keyed by an index.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index));
        SimRng::seed_from(child_seed)
    }

    /// Draws a uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// 64-bit FNV-1a hash, used only for stable label → seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer; scrambles seeds so related labels diverge.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable() {
        let root = SimRng::seed_from(99);
        let mut f1 = root.fork("alpha");
        let mut f2 = SimRng::seed_from(99).fork("alpha");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_with_different_labels_diverge() {
        let root = SimRng::seed_from(99);
        let mut f1 = root.fork("alpha");
        let mut f2 = root.fork("beta");
        let same = (0..8).all(|_| f1.next_u64() == f2.next_u64());
        assert!(!same);
    }

    #[test]
    fn indexed_forks_diverge() {
        let root = SimRng::seed_from(1);
        let mut a = root.fork_indexed("node", 0);
        let mut b = root.fork_indexed("node", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut r = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
