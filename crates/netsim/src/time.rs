//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotone counter of microseconds since the start of
//! the simulation. Using integer microseconds keeps the simulator exactly
//! deterministic (no floating-point drift) while being fine-grained enough
//! for VoIP timing: RTP frames are paced every 20 ms, network delays are in
//! the 0.1–100 ms range.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds from simulation
/// start.
///
/// # Examples
///
/// ```
/// use scidive_netsim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(20);
/// assert_eq!(t.as_micros(), 20_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use scidive_netsim::time::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 1_500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked time difference: `None` if `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        if ms <= 0.0 || !ms.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_micros(), 5_250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(20).as_micros(), 20_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(3);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(2)));
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.0004), SimDuration::ZERO);
    }

    #[test]
    fn display_is_milliseconds() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20.000ms");
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(10) < SimTime::from_micros(11));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(20);
        assert_eq!(d * 3, SimDuration::from_millis(60));
        assert_eq!(d / 4, SimDuration::from_millis(5));
        assert_eq!(d.saturating_sub(SimDuration::from_millis(30)), SimDuration::ZERO);
    }
}
