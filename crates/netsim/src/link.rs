//! Per-attachment link characteristics.

use crate::dist::DelayDist;
use serde::{Deserialize, Serialize};

/// Delay and loss parameters for one node's attachment to the hub segment.
///
/// On the paper's Fig-4 topology every host hangs off one hub; the path a
/// packet takes from sender to a given receiver is modelled by the
/// *receiver's* link: delay is sampled per delivery and the packet is
/// dropped with probability `loss`.
///
/// # Examples
///
/// ```
/// use scidive_netsim::link::LinkParams;
/// use scidive_netsim::dist::DelayDist;
///
/// let lan = LinkParams::new(DelayDist::uniform_ms(0.2, 1.0)).with_loss(0.001);
/// assert!((lan.loss - 0.001).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way delivery delay distribution.
    pub delay: DelayDist,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkParams {
    /// A link with the given delay distribution and no loss.
    pub fn new(delay: DelayDist) -> LinkParams {
        LinkParams { delay, loss: 0.0 }
    }

    /// An ideal link: zero delay, zero loss.
    pub fn ideal() -> LinkParams {
        LinkParams::new(DelayDist::zero())
    }

    /// A typical LAN link: sub-millisecond uniform delay, no loss.
    pub fn lan() -> LinkParams {
        LinkParams::new(DelayDist::uniform_ms(0.1, 0.8))
    }

    /// Sets the loss probability (builder-style), clamped to `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> LinkParams {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }
}

impl Default for LinkParams {
    fn default() -> LinkParams {
        LinkParams::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_has_zero_delay_and_loss() {
        let l = LinkParams::ideal();
        assert_eq!(l.delay, DelayDist::zero());
        assert_eq!(l.loss, 0.0);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(LinkParams::ideal().with_loss(2.0).loss, 1.0);
        assert_eq!(LinkParams::ideal().with_loss(-1.0).loss, 0.0);
    }

    #[test]
    fn default_is_lan() {
        assert_eq!(LinkParams::default(), LinkParams::lan());
    }
}
