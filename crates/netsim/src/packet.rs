//! Packet model: IPv4 datagrams carrying UDP or ICMP.
//!
//! The simulator moves [`IpPacket`]s between nodes. The IP layer is a
//! structured model (no byte-level IP header), but the transport payload is
//! real bytes: UDP datagrams are encoded with an 8-byte RFC 768 header and
//! an internet checksum so that the IDS Distiller performs honest parsing
//! and can detect corrupted datagrams.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol number carried by an [`IpPacket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// UDP (17). All SIP/RTP/RTCP/accounting traffic uses UDP.
    Udp,
    /// ICMP (1).
    Icmp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProto {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProto::Udp => 17,
            IpProto::Icmp => 1,
            IpProto::Other(n) => n,
        }
    }
}

impl From<u8> for IpProto {
    fn from(n: u8) -> IpProto {
        match n {
            17 => IpProto::Udp,
            1 => IpProto::Icmp,
            other => IpProto::Other(other),
        }
    }
}

/// Fragmentation state of an [`IpPacket`].
///
/// `offset` is in bytes and must be a multiple of 8 for non-final
/// fragments, as in real IPv4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FragInfo {
    /// Byte offset of this fragment's payload within the original datagram.
    pub offset: u16,
    /// More-fragments flag.
    pub more: bool,
}

impl FragInfo {
    /// Fragment state of an unfragmented packet.
    pub const UNFRAGMENTED: FragInfo = FragInfo {
        offset: 0,
        more: false,
    };

    /// Whether the packet is a fragment (offset non-zero or more set).
    pub fn is_fragment(self) -> bool {
        self.offset != 0 || self.more
    }
}

/// A simulated IPv4 packet.
///
/// # Examples
///
/// ```
/// use scidive_netsim::packet::{IpPacket, UdpDatagram};
/// use std::net::Ipv4Addr;
///
/// let pkt = IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@10.0.0.2 SIP/2.0\r\n\r\n".as_ref(),
/// );
/// let udp = pkt.decode_udp().unwrap();
/// assert_eq!(udp.dst_port, 5060);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpPacket {
    /// Source address (spoofable: the simulator, like Ethernet, does not
    /// validate it — this is what enables the paper's forged-BYE attack).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP identification, used to group fragments.
    pub id: u16,
    /// Time-to-live.
    pub ttl: u8,
    /// Transport protocol.
    pub proto: IpProto,
    /// Fragmentation state.
    pub frag: FragInfo,
    /// Transport-layer bytes (a full UDP datagram when unfragmented).
    pub payload: Bytes,
}

impl IpPacket {
    /// Default TTL for locally generated packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Builds an unfragmented UDP packet with a correct checksum.
    pub fn udp(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: impl Into<Bytes>,
    ) -> IpPacket {
        let udp = UdpDatagram {
            src_port,
            dst_port,
            payload: payload.into(),
        };
        IpPacket {
            src,
            dst,
            id: 0,
            ttl: Self::DEFAULT_TTL,
            proto: IpProto::Udp,
            frag: FragInfo::UNFRAGMENTED,
            payload: udp.encode(src, dst),
        }
    }

    /// Builds an ICMP packet.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, msg: &IcmpMessage) -> IpPacket {
        IpPacket {
            src,
            dst,
            id: 0,
            ttl: Self::DEFAULT_TTL,
            proto: IpProto::Icmp,
            frag: FragInfo::UNFRAGMENTED,
            payload: msg.encode(),
        }
    }

    /// Sets the IP identification (builder-style).
    pub fn with_id(mut self, id: u16) -> IpPacket {
        self.id = id;
        self
    }

    /// Total size accounted for in byte counts: modelled 20-byte IP header
    /// plus payload.
    pub fn wire_len(&self) -> usize {
        20 + self.payload.len()
    }

    /// Decodes the payload as a UDP datagram.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet is a fragment, is not UDP, is too
    /// short, has an inconsistent length field, or fails its checksum.
    pub fn decode_udp(&self) -> Result<UdpDatagram, PacketError> {
        if self.frag.is_fragment() {
            return Err(PacketError::Fragmented);
        }
        if self.proto != IpProto::Udp {
            return Err(PacketError::NotUdp(self.proto));
        }
        UdpDatagram::decode_shared(self.src, self.dst, &self.payload)
    }

    /// Like [`IpPacket::decode_udp`], but checksum verification runs
    /// through the retained scalar [`udp_checksum_reference`]. The
    /// distiller's reference mode uses this so a pre-optimization
    /// baseline can be measured on the same harness.
    ///
    /// # Errors
    ///
    /// Same contract as [`IpPacket::decode_udp`].
    pub fn decode_udp_reference(&self) -> Result<UdpDatagram, PacketError> {
        if self.frag.is_fragment() {
            return Err(PacketError::Fragmented);
        }
        if self.proto != IpProto::Udp {
            return Err(PacketError::NotUdp(self.proto));
        }
        UdpDatagram::decode_shared_reference(self.src, self.dst, &self.payload)
    }

    /// Decodes the payload as an ICMP message.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet is not ICMP or is truncated.
    pub fn decode_icmp(&self) -> Result<IcmpMessage, PacketError> {
        if self.proto != IpProto::Icmp {
            return Err(PacketError::NotIcmp(self.proto));
        }
        IcmpMessage::decode(&self.payload)
    }
}

impl fmt::Display for IpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} proto={:?} len={}",
            self.src,
            self.dst,
            self.proto,
            self.payload.len()
        )
    }
}

/// Errors from packet decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Packet is an IP fragment and must be reassembled first.
    Fragmented,
    /// Packet transport protocol is not UDP.
    NotUdp(IpProto),
    /// Packet transport protocol is not ICMP.
    NotIcmp(IpProto),
    /// Transport payload too short for its header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// UDP length field disagrees with the actual payload size.
    BadLength {
        /// The length field from the header.
        declared: u16,
        /// The actual payload size in bytes.
        actual: usize,
    },
    /// UDP checksum verification failed.
    BadChecksum {
        /// Checksum recomputed over the datagram.
        expected: u16,
        /// Checksum found in the header.
        actual: u16,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Fragmented => write!(f, "packet is an unreassembled IP fragment"),
            PacketError::NotUdp(p) => write!(f, "transport protocol is {p:?}, not UDP"),
            PacketError::NotIcmp(p) => write!(f, "transport protocol is {p:?}, not ICMP"),
            PacketError::Truncated { need, have } => {
                write!(f, "payload truncated: need {need} bytes, have {have}")
            }
            PacketError::BadLength { declared, actual } => {
                write!(f, "udp length field {declared} disagrees with payload size {actual}")
            }
            PacketError::BadChecksum { expected, actual } => {
                write!(f, "udp checksum mismatch: expected {expected:#06x}, got {actual:#06x}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// A decoded UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Header length of an encoded datagram.
    pub const HEADER_LEN: usize = 8;

    /// Encodes to wire format (RFC 768 header + payload) with a checksum
    /// over the IPv4 pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let len = (Self::HEADER_LEN + self.payload.len()) as u16;
        let mut buf = BytesMut::with_capacity(len as usize);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(len);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.payload);
        let sum = udp_checksum(src, dst, &buf);
        buf[6] = (sum >> 8) as u8;
        buf[7] = (sum & 0xff) as u8;
        buf.freeze()
    }

    /// Decodes from wire format, verifying length and checksum.
    ///
    /// # Errors
    ///
    /// See [`PacketError`].
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, bytes: &[u8]) -> Result<UdpDatagram, PacketError> {
        let (src_port, dst_port) = Self::validate(src, dst, bytes)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: Bytes::copy_from_slice(&bytes[Self::HEADER_LEN..]),
        })
    }

    /// Like [`UdpDatagram::decode`], but the payload is a zero-copy
    /// slice of the shared buffer instead of a fresh allocation. This is
    /// the IDS hot path: every captured frame is decoded once per
    /// engine, and the payload's lifetime (footprints, trails) can far
    /// outlive the frame.
    ///
    /// # Errors
    ///
    /// See [`PacketError`].
    pub fn decode_shared(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
    ) -> Result<UdpDatagram, PacketError> {
        let (src_port, dst_port) = Self::validate(src, dst, bytes)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: bytes.slice(Self::HEADER_LEN..),
        })
    }

    /// [`UdpDatagram::decode_shared`] with the retained scalar checksum
    /// ([`udp_checksum_reference`]) — the distiller's reference mode.
    ///
    /// # Errors
    ///
    /// See [`PacketError`].
    pub fn decode_shared_reference(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &Bytes,
    ) -> Result<UdpDatagram, PacketError> {
        let (src_port, dst_port) =
            Self::validate_with(src, dst, bytes, udp_checksum_reference)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: bytes.slice(Self::HEADER_LEN..),
        })
    }

    /// Header validation shared by both decode paths: length fields and
    /// checksum, without touching the payload.
    fn validate(src: Ipv4Addr, dst: Ipv4Addr, bytes: &[u8]) -> Result<(u16, u16), PacketError> {
        Self::validate_with(src, dst, bytes, udp_checksum)
    }

    /// The validation logic, parameterized over the checksum
    /// implementation (fast SWAR vs retained scalar reference).
    fn validate_with(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &[u8],
        checksum: fn(Ipv4Addr, Ipv4Addr, &[u8]) -> u16,
    ) -> Result<(u16, u16), PacketError> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(PacketError::Truncated {
                need: Self::HEADER_LEN,
                have: bytes.len(),
            });
        }
        let src_port = u16::from_be_bytes([bytes[0], bytes[1]]);
        let dst_port = u16::from_be_bytes([bytes[2], bytes[3]]);
        let declared = u16::from_be_bytes([bytes[4], bytes[5]]);
        if declared as usize != bytes.len() {
            return Err(PacketError::BadLength {
                declared,
                actual: bytes.len(),
            });
        }
        let got = u16::from_be_bytes([bytes[6], bytes[7]]);
        if got != 0 {
            let expected = checksum(src, dst, bytes);
            if expected != got {
                return Err(PacketError::BadChecksum {
                    expected,
                    actual: got,
                });
            }
        }
        Ok((src_port, dst_port))
    }
}

/// Internet checksum over the IPv4 pseudo-header plus UDP datagram, the
/// production implementation: four bytes per step into a 64-bit
/// accumulator (the compiler vectorizes the straight-line loop), with
/// the checksum field's word subtracted once at the end instead of a
/// branch per word. Byte-exact with [`udp_checksum_reference`] — the
/// one's-complement sum is commutative, a folded non-zero sum has a
/// unique representative in `1..=0xffff`, and the pseudo-header term
/// (protocol 17) keeps the total non-zero.
fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
    debug_assert!(datagram.len() >= UdpDatagram::HEADER_LEN);
    let mut sum: u64 = 0;
    let s = src.octets();
    let d = dst.octets();
    sum += u64::from(u32::from_be_bytes(s));
    sum += u64::from(u32::from_be_bytes(d));
    sum += 17; // zero byte + protocol
    sum += u64::from(datagram.len() as u16);
    let mut chunks = datagram.chunks_exact(4);
    for chunk in &mut chunks {
        sum += u64::from(u32::from_be_bytes(chunk.try_into().expect("4-byte chunk")));
    }
    let rem = chunks.remainder();
    if rem.len() >= 2 {
        sum += u64::from(u16::from_be_bytes([rem[0], rem[1]]));
    }
    if rem.len() % 2 == 1 {
        sum += u64::from(u16::from_be_bytes([rem[rem.len() - 1], 0]));
    }
    // Remove the checksum field (bytes 6..8, the low half of the second
    // chunk) — summed above, skipped by the reference.
    sum -= u64::from(u16::from_be_bytes([datagram[6], datagram[7]]));
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let folded = !(sum as u16);
    // Per RFC 768, a computed checksum of zero is transmitted as all-ones.
    if folded == 0 {
        0xffff
    } else {
        folded
    }
}

/// The retained per-16-bit-word checksum (a branch per word to skip the
/// checksum field): the behavioral specification for [`udp_checksum`]
/// and the distiller's reference-mode baseline.
pub fn udp_checksum_reference(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let s = src.octets();
    let d = dst.octets();
    for chunk in [
        [s[0], s[1]],
        [s[2], s[3]],
        [d[0], d[1]],
        [d[2], d[3]],
        [0, 17],
        (datagram.len() as u16).to_be_bytes(),
    ] {
        sum += u32::from(u16::from_be_bytes(chunk));
    }
    let mut iter = datagram.chunks_exact(2);
    for (word, chunk) in (&mut iter).enumerate() {
        if word == 3 {
            continue; // the checksum field
        }
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = iter.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let folded = !(sum as u16);
    // Per RFC 768, a computed checksum of zero is transmitted as all-ones.
    if folded == 0 {
        0xffff
    } else {
        folded
    }
}

/// A minimal ICMP message (echo and destination-unreachable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// Echo request with identifier and sequence number.
    EchoRequest {
        /// Echo identifier.
        id: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Echo reply with identifier and sequence number.
    EchoReply {
        /// Echo identifier.
        id: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Destination port unreachable (code 3).
    PortUnreachable,
}

impl IcmpMessage {
    /// Encodes to a 8-byte type/code/id/seq representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8);
        match *self {
            IcmpMessage::EchoRequest { id, seq } => {
                buf.put_u8(8);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(id);
                buf.put_u16(seq);
            }
            IcmpMessage::EchoReply { id, seq } => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(id);
                buf.put_u16(seq);
            }
            IcmpMessage::PortUnreachable => {
                buf.put_u8(3);
                buf.put_u8(3);
                buf.put_u16(0);
                buf.put_u32(0);
            }
        }
        buf.freeze()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] if shorter than 8 bytes.
    pub fn decode(bytes: &[u8]) -> Result<IcmpMessage, PacketError> {
        if bytes.len() < 8 {
            return Err(PacketError::Truncated {
                need: 8,
                have: bytes.len(),
            });
        }
        let id = u16::from_be_bytes([bytes[4], bytes[5]]);
        let seq = u16::from_be_bytes([bytes[6], bytes[7]]);
        Ok(match (bytes[0], bytes[1]) {
            (8, _) => IcmpMessage::EchoRequest { id, seq },
            (0, _) => IcmpMessage::EchoReply { id, seq },
            _ => IcmpMessage::PortUnreachable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn b() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }

    #[test]
    fn udp_roundtrip() {
        let pkt = IpPacket::udp(a(), 1234, b(), 5060, b"hello sip".as_ref());
        let udp = pkt.decode_udp().unwrap();
        assert_eq!(udp.src_port, 1234);
        assert_eq!(udp.dst_port, 5060);
        assert_eq!(&udp.payload[..], b"hello sip");
    }

    /// The SWAR checksum must agree with the retained scalar reference
    /// on every length (covering all chunk remainders), pseudo-random
    /// content, and adversarial all-ones/all-zeros payloads.
    #[test]
    fn fast_checksum_matches_reference() {
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        };
        for len in UdpDatagram::HEADER_LEN..80 {
            for variant in 0..4 {
                let datagram: Vec<u8> = match variant {
                    0 => (0..len).map(|_| next()).collect(),
                    1 => vec![0x00; len],
                    2 => vec![0xff; len],
                    _ => (0..len).map(|i| (i % 251) as u8).collect(),
                };
                let (src, dst) = (a(), Ipv4Addr::new(next(), next(), next(), next()));
                assert_eq!(
                    udp_checksum(src, dst, &datagram),
                    udp_checksum_reference(src, dst, &datagram),
                    "diverged at len {len} variant {variant}"
                );
            }
        }
    }

    #[test]
    fn reference_decode_agrees_with_fast() {
        let pkt = IpPacket::udp(a(), 1234, b(), 5060, b"hello sip".as_ref());
        assert_eq!(pkt.decode_udp().unwrap(), pkt.decode_udp_reference().unwrap());
        let mut raw = pkt.payload.to_vec();
        raw[9] ^= 0xff;
        let corrupted = IpPacket {
            payload: Bytes::from(raw),
            ..pkt
        };
        assert_eq!(
            corrupted.decode_udp().unwrap_err(),
            corrupted.decode_udp_reference().unwrap_err()
        );
    }

    #[test]
    fn udp_checksum_detects_corruption() {
        let pkt = IpPacket::udp(a(), 1, b(), 2, b"payload".as_ref());
        let mut raw = pkt.payload.to_vec();
        raw[9] ^= 0xff; // flip a payload byte
        let corrupted = IpPacket {
            payload: Bytes::from(raw),
            ..pkt
        };
        assert!(matches!(
            corrupted.decode_udp(),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn udp_checksum_covers_addresses() {
        // Same datagram bytes but delivered claiming a different source IP
        // must fail the pseudo-header checksum.
        let pkt = IpPacket::udp(a(), 1, b(), 2, b"payload".as_ref());
        let moved = IpPacket {
            src: Ipv4Addr::new(10, 0, 0, 99),
            ..pkt
        };
        assert!(matches!(
            moved.decode_udp(),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn udp_bad_length_detected() {
        let pkt = IpPacket::udp(a(), 1, b(), 2, b"xyz".as_ref());
        let truncated = IpPacket {
            payload: pkt.payload.slice(..pkt.payload.len() - 1),
            ..pkt
        };
        assert!(matches!(
            truncated.decode_udp(),
            Err(PacketError::BadLength { .. })
        ));
    }

    #[test]
    fn udp_truncated_header() {
        let pkt = IpPacket {
            src: a(),
            dst: b(),
            id: 0,
            ttl: 64,
            proto: IpProto::Udp,
            frag: FragInfo::UNFRAGMENTED,
            payload: Bytes::from_static(&[1, 2, 3]),
        };
        assert!(matches!(
            pkt.decode_udp(),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn fragment_refuses_udp_decode() {
        let mut pkt = IpPacket::udp(a(), 1, b(), 2, b"data".as_ref());
        pkt.frag = FragInfo {
            offset: 0,
            more: true,
        };
        assert_eq!(pkt.decode_udp(), Err(PacketError::Fragmented));
    }

    #[test]
    fn proto_mismatch_errors() {
        let pkt = IpPacket::icmp(a(), b(), &IcmpMessage::PortUnreachable);
        assert!(matches!(pkt.decode_udp(), Err(PacketError::NotUdp(_))));
        let upkt = IpPacket::udp(a(), 1, b(), 2, b"x".as_ref());
        assert!(matches!(upkt.decode_icmp(), Err(PacketError::NotIcmp(_))));
    }

    #[test]
    fn icmp_roundtrip() {
        for msg in [
            IcmpMessage::EchoRequest { id: 7, seq: 9 },
            IcmpMessage::EchoReply { id: 7, seq: 9 },
            IcmpMessage::PortUnreachable,
        ] {
            let pkt = IpPacket::icmp(a(), b(), &msg);
            assert_eq!(pkt.decode_icmp().unwrap(), msg);
        }
    }

    #[test]
    fn empty_payload_udp() {
        let pkt = IpPacket::udp(a(), 5, b(), 6, Bytes::new());
        let udp = pkt.decode_udp().unwrap();
        assert!(udp.payload.is_empty());
    }

    #[test]
    fn wire_len_includes_ip_header() {
        let pkt = IpPacket::udp(a(), 5, b(), 6, b"12345".as_ref());
        assert_eq!(pkt.wire_len(), 20 + 8 + 5);
    }

    #[test]
    fn proto_number_roundtrip() {
        assert_eq!(IpProto::from(17u8), IpProto::Udp);
        assert_eq!(IpProto::from(1u8), IpProto::Icmp);
        assert_eq!(IpProto::from(6u8), IpProto::Other(6));
        assert_eq!(IpProto::Other(6).number(), 6);
        assert_eq!(IpProto::Udp.number(), 17);
    }

    #[test]
    fn frag_info_is_fragment() {
        assert!(!FragInfo::UNFRAGMENTED.is_fragment());
        assert!(FragInfo { offset: 8, more: false }.is_fragment());
        assert!(FragInfo { offset: 0, more: true }.is_fragment());
    }
}
