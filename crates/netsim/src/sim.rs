//! The discrete-event simulator and hub broadcast domain.
//!
//! All nodes hang off one shared segment (the paper's Fig-4 hub). When a
//! node transmits, the hub offers a copy of the frame to every *other*
//! attachment: the receiving link's loss model may drop it, its delay
//! model schedules the delivery time, and the receiving NIC filters by
//! destination address unless promiscuous. Execution is strictly ordered
//! by `(time, sequence)` so runs are exactly reproducible from the seed.

use crate::frag::fragment;
use crate::link::LinkParams;
use crate::node::{Action, Node, NodeCtx, NodeId, TimerToken};
use crate::packet::IpPacket;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceRecord};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// Configuration for one node attachment.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Human-readable name used in traces and ladder diagrams.
    pub name: String,
    /// The node's IP address on the segment.
    pub ip: Ipv4Addr,
    /// Link delay/loss used for deliveries *to* this node.
    pub link: LinkParams,
    /// Whether the NIC accepts frames addressed to other hosts
    /// (IDS taps and sniffing attackers set this).
    pub promiscuous: bool,
}

impl NodeConfig {
    /// A non-promiscuous attachment with the given name/IP and a LAN link.
    pub fn new(name: impl Into<String>, ip: Ipv4Addr) -> NodeConfig {
        NodeConfig {
            name: name.into(),
            ip,
            link: LinkParams::default(),
            promiscuous: false,
        }
    }

    /// Sets the link parameters (builder-style).
    pub fn with_link(mut self, link: LinkParams) -> NodeConfig {
        self.link = link;
        self
    }

    /// Marks the NIC promiscuous (builder-style).
    pub fn promiscuous(mut self) -> NodeConfig {
        self.promiscuous = true;
        self
    }
}

#[derive(Debug)]
enum Queued {
    Deliver { dst: NodeId, pkt: IpPacket },
    Timer { node: NodeId, token: TimerToken },
    Start { node: NodeId },
}

struct HeapEntry {
    at: SimTime,
    seq: u64,
    event: Queued,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Attachment {
    config: NodeConfig,
    node: Option<Box<dyn Node>>,
    rng: SimRng,
    started: bool,
}

/// The discrete-event network simulator.
///
/// # Examples
///
/// ```
/// use scidive_netsim::prelude::*;
/// use std::any::Any;
/// use std::net::Ipv4Addr;
///
/// struct Echo;
/// impl Node for Echo {
///     fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
///         let udp = pkt.decode_udp().unwrap();
///         ctx.send_udp(udp.dst_port, pkt.src, udp.src_port, udp.payload);
///     }
///     fn as_any(&self) -> &dyn Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// }
///
/// let mut sim = Simulator::new(7);
/// let a = Ipv4Addr::new(10, 0, 0, 1);
/// let b = Ipv4Addr::new(10, 0, 0, 2);
/// sim.add_node(NodeConfig::new("echo", b), Box::new(Echo));
/// let collector = Collector::new();
/// let frames = collector.handle();
/// sim.add_node(NodeConfig::new("tap", Ipv4Addr::new(10, 0, 0, 250)).promiscuous(),
///              Box::new(collector));
/// sim.inject(SimTime::ZERO, IpPacket::udp(a, 9, b, 9, b"ping".as_ref()));
/// sim.run_for(SimDuration::from_secs(1));
/// assert_eq!(frames.borrow().len(), 2); // request + echo reply
/// ```
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<HeapEntry>>,
    attachments: Vec<Attachment>,
    rng: SimRng,
    trace: Trace,
    mtu: usize,
    delivered: u64,
    dropped: u64,
}

impl Simulator {
    /// Creates a simulator whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            attachments: Vec::new(),
            rng: SimRng::seed_from(seed),
            trace: Trace::new(),
            mtu: 1500,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Sets the segment MTU; UDP datagrams larger than this are sent as
    /// IP fragments. Rounded down to a multiple of 8, minimum 8.
    pub fn set_mtu(&mut self, mtu: usize) {
        self.mtu = (mtu / 8).max(1) * 8;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attaches a node to the segment and schedules its `on_start`.
    pub fn add_node(&mut self, config: NodeConfig, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.attachments.len());
        let rng = self
            .rng
            .fork_indexed(&format!("node:{}", config.name), id.0 as u64);
        self.attachments.push(Attachment {
            config,
            node: Some(node),
            rng,
            started: false,
        });
        self.push(self.now, Queued::Start { node: id });
        id
    }

    /// The name a node was attached with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.attachments[id.0].config.name
    }

    /// The IP a node was attached with.
    pub fn node_ip(&self, id: NodeId) -> Ipv4Addr {
        self.attachments[id.0].config.ip
    }

    /// Looks up a node id by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.attachments
            .iter()
            .position(|a| a.config.name == name)
            .map(NodeId)
    }

    /// Downcasts a node to its concrete type for inspection.
    ///
    /// Returns `None` if the node is of a different type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.attachments[id.0]
            .node
            .as_ref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`Simulator::node_as`].
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.attachments[id.0]
            .node
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Injects a packet onto the segment at the given time, as if sent by
    /// an unmodelled host (the packet's `src` field names the claimed
    /// sender).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn inject(&mut self, at: SimTime, pkt: IpPacket) {
        assert!(at >= self.now, "cannot inject into the past");
        self.transmit_at(at, None, pkt);
    }

    /// Runs until the event queue is exhausted or `deadline` is reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(entry) = self.queue.pop().expect("peeked");
            self.now = entry.at;
            self.dispatch(entry.event);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// The full transmission trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total packet deliveries performed.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total deliveries suppressed by link loss.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push(&mut self, at: SimTime, event: Queued) {
        let seq = self.next_seq();
        self.queue.push(Reverse(HeapEntry { at, seq, event }));
    }

    /// Fans a transmitted packet out to all attachments other than the
    /// sender, applying fragmentation, loss and delay.
    fn transmit_at(&mut self, at: SimTime, sender: Option<NodeId>, pkt: IpPacket) {
        for piece in fragment(&pkt, self.mtu) {
            self.trace.push(TraceRecord {
                time: at,
                from: sender,
                from_name: sender
                    .map(|id| self.attachments[id.0].config.name.clone())
                    .unwrap_or_else(|| "<injected>".to_string()),
                packet: piece.clone(),
            });
            for idx in 0..self.attachments.len() {
                if Some(NodeId(idx)) == sender {
                    continue;
                }
                let accepts = {
                    let cfg = &self.attachments[idx].config;
                    cfg.promiscuous
                        || piece.dst == cfg.ip
                        || piece.dst == Ipv4Addr::BROADCAST
                };
                if !accepts {
                    continue;
                }
                let (lost, delay) = {
                    let att = &mut self.attachments[idx];
                    let lost = att.rng.chance(att.config.link.loss);
                    let delay = att.config.link.delay.sample(&mut att.rng);
                    (lost, delay)
                };
                if lost {
                    self.dropped += 1;
                    continue;
                }
                self.push(
                    at + delay,
                    Queued::Deliver {
                        dst: NodeId(idx),
                        pkt: piece.clone(),
                    },
                );
            }
        }
    }

    fn dispatch(&mut self, event: Queued) {
        match event {
            Queued::Start { node } => {
                if self.attachments[node.0].started {
                    return;
                }
                self.attachments[node.0].started = true;
                self.with_node(node, |node_impl, ctx| node_impl.on_start(ctx));
            }
            Queued::Deliver { dst, pkt } => {
                self.delivered += 1;
                self.with_node(dst, |node_impl, ctx| node_impl.on_packet(ctx, pkt));
            }
            Queued::Timer { node, token } => {
                self.with_node(node, |node_impl, ctx| node_impl.on_timer(ctx, token));
            }
        }
    }

    /// Runs a node callback with a fresh context, then applies the actions
    /// it buffered.
    fn with_node<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut NodeCtx<'_>),
    {
        let Some(mut node) = self.attachments[id.0].node.take() else {
            return;
        };
        let mut actions = Vec::new();
        {
            let att = &mut self.attachments[id.0];
            let mut ctx = NodeCtx {
                now: self.now,
                id,
                ip: att.config.ip,
                rng: &mut att.rng,
                actions: &mut actions,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.attachments[id.0].node = Some(node);
        for action in actions {
            match action {
                Action::Send(pkt) => self.transmit_at(self.now, Some(id), pkt),
                Action::Timer(delay, token) => {
                    self.push(self.now + delay, Queued::Timer { node: id, token })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Collector;
    use std::any::Any;

    struct Echo {
        seen: usize,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
            self.seen += 1;
            if let Ok(udp) = pkt.decode_udp() {
                ctx.send_udp(udp.dst_port, pkt.src, udp.src_port, udp.payload);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Ticker {
        fired: Vec<(SimTime, TimerToken)>,
    }
    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(5), 2);
        }
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: IpPacket) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
            self.fired.push((ctx.now(), token));
            if self.fired.len() < 4 {
                ctx.set_timer(SimDuration::from_millis(10), token + 10);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulator::new(1);
        let id = sim.add_node(
            NodeConfig::new("ticker", ip(1)),
            Box::new(Ticker { fired: vec![] }),
        );
        sim.run_for(SimDuration::from_secs(1));
        let ticker = sim.node_as::<Ticker>(id).unwrap();
        assert_eq!(ticker.fired.len(), 5);
        assert_eq!(ticker.fired[0], (SimTime::from_millis(5), 2));
        assert_eq!(ticker.fired[1], (SimTime::from_millis(10), 1));
        // chained timers: tokens 12 and 11 re-arm (fired while len < 4),
        // 12's handler schedules 22 before the len-4 cutoff is reached
        assert_eq!(ticker.fired[2], (SimTime::from_millis(15), 12));
        assert_eq!(ticker.fired[3], (SimTime::from_millis(20), 11));
        assert_eq!(ticker.fired[4], (SimTime::from_millis(25), 22));
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let mut sim = Simulator::new(2);
        let e1 = sim.add_node(
            NodeConfig::new("b", ip(2)).with_link(LinkParams::ideal()),
            Box::new(Echo { seen: 0 }),
        );
        let e2 = sim.add_node(
            NodeConfig::new("c", ip(3)).with_link(LinkParams::ideal()),
            Box::new(Echo { seen: 0 }),
        );
        sim.inject(
            SimTime::ZERO,
            IpPacket::udp(ip(1), 9, ip(2), 9, b"x".as_ref()),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node_as::<Echo>(e1).unwrap().seen, 1);
        assert_eq!(sim.node_as::<Echo>(e2).unwrap().seen, 0);
    }

    #[test]
    fn promiscuous_tap_sees_everything() {
        let mut sim = Simulator::new(3);
        sim.add_node(
            NodeConfig::new("b", ip(2)).with_link(LinkParams::ideal()),
            Box::new(Echo { seen: 0 }),
        );
        let collector = Collector::new();
        let frames = collector.handle();
        sim.add_node(
            NodeConfig::new("tap", ip(250))
                .with_link(LinkParams::ideal())
                .promiscuous(),
            Box::new(collector),
        );
        sim.inject(
            SimTime::ZERO,
            IpPacket::udp(ip(1), 9, ip(2), 9, b"ping".as_ref()),
        );
        sim.run_for(SimDuration::from_secs(1));
        // tap sees inject + echo reply
        assert_eq!(frames.borrow().len(), 2);
    }

    #[test]
    fn lossy_link_drops_packets() {
        let mut sim = Simulator::new(4);
        let id = sim.add_node(
            NodeConfig::new("b", ip(2)).with_link(LinkParams::ideal().with_loss(1.0)),
            Box::new(Echo { seen: 0 }),
        );
        sim.inject(
            SimTime::ZERO,
            IpPacket::udp(ip(1), 9, ip(2), 9, b"x".as_ref()),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node_as::<Echo>(id).unwrap().seen, 0);
        assert_eq!(sim.dropped_count(), 1);
    }

    #[test]
    fn delay_is_applied() {
        let mut sim = Simulator::new(5);
        struct Stamp {
            at: Option<SimTime>,
        }
        impl Node for Stamp {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _pkt: IpPacket) {
                self.at = Some(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let id = sim.add_node(
            NodeConfig::new("b", ip(2))
                .with_link(LinkParams::new(crate::dist::DelayDist::constant_ms(7.5))),
            Box::new(Stamp { at: None }),
        );
        sim.inject(
            SimTime::from_millis(1),
            IpPacket::udp(ip(1), 9, ip(2), 9, b"x".as_ref()),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.node_as::<Stamp>(id).unwrap().at,
            Some(SimTime::from_micros(8_500))
        );
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            sim.add_node(
                NodeConfig::new("b", ip(2)),
                Box::new(Echo { seen: 0 }),
            );
            for i in 0..20u64 {
                sim.inject(
                    SimTime::from_millis(i * 3),
                    IpPacket::udp(ip(1), 9, ip(2), 9, vec![i as u8; 10]),
                );
            }
            sim.run_for(SimDuration::from_secs(2));
            sim.trace()
                .records()
                .iter()
                .map(|r| (r.time, r.packet.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // delays differ
    }

    #[test]
    fn large_datagram_fragments_and_reaches_node_whole_pieces() {
        let mut sim = Simulator::new(6);
        sim.set_mtu(256);
        struct FragCount {
            frags: usize,
        }
        impl Node for FragCount {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
                if pkt.frag.is_fragment() {
                    self.frags += 1;
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let id = sim.add_node(
            NodeConfig::new("b", ip(2)).with_link(LinkParams::ideal()),
            Box::new(FragCount { frags: 0 }),
        );
        sim.inject(
            SimTime::ZERO,
            IpPacket::udp(ip(1), 9, ip(2), 9, vec![0u8; 1000]),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.node_as::<FragCount>(id).unwrap().frags >= 4);
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut sim = Simulator::new(7);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn find_node_and_names() {
        let mut sim = Simulator::new(8);
        let id = sim.add_node(NodeConfig::new("b", ip(2)), Box::new(Echo { seen: 0 }));
        assert_eq!(sim.find_node("b"), Some(id));
        assert_eq!(sim.find_node("zzz"), None);
        assert_eq!(sim.node_name(id), "b");
        assert_eq!(sim.node_ip(id), ip(2));
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_into_past_panics() {
        let mut sim = Simulator::new(9);
        sim.run_until(SimTime::from_secs(1));
        sim.inject(
            SimTime::ZERO,
            IpPacket::udp(ip(1), 9, ip(2), 9, b"x".as_ref()),
        );
    }
}
