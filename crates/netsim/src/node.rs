//! The [`Node`] actor trait and its execution context.
//!
//! Simulation actors (user agents, proxies, attackers, IDS taps) implement
//! [`Node`]. The simulator calls back into the node on packet delivery and
//! timer expiry; the node acts on the world exclusively through
//! [`NodeCtx`], which buffers its actions so no aliasing of simulator
//! state is possible.

use crate::packet::IpPacket;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::any::Any;
use std::net::Ipv4Addr;

/// Identifies a node within one simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An opaque timer token chosen by the node when scheduling.
pub type TimerToken = u64;

/// A simulation actor attached to the network segment.
///
/// Implementations must also provide `as_any`/`as_any_mut` so harnesses
/// can downcast a node back to its concrete type after a run to inspect
/// its state (calls completed, alerts raised, ...).
pub trait Node: 'static {
    /// Called once when the simulation starts (before any packet flows).
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a packet addressed to this node (or any packet, for
    /// promiscuous nodes) is delivered.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket);

    /// Called when a timer set via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        let _ = (ctx, token);
    }

    /// Upcast for state inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for state inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An action a node asks the simulator to perform.
#[derive(Debug)]
pub(crate) enum Action {
    Send(IpPacket),
    Timer(SimDuration, TimerToken),
}

/// Execution context passed to node callbacks.
///
/// Provides the node's identity, the current virtual time, a
/// deterministic per-node random stream, and buffered actions.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) ip: Ipv4Addr,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) actions: &'a mut Vec<Action>,
}

impl NodeCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's configured IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The node's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Transmits a packet onto the segment.
    ///
    /// The source address in `pkt` is sent as-is — spoofing is possible,
    /// exactly as on a real shared Ethernet segment.
    pub fn send(&mut self, pkt: IpPacket) {
        self.actions.push(Action::Send(pkt));
    }

    /// Convenience: build and transmit a UDP packet from this node's IP.
    pub fn send_udp(
        &mut self,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: impl Into<Bytes>,
    ) {
        let pkt = IpPacket::udp(self.ip, src_port, dst, dst_port, payload);
        self.send(pkt);
    }

    /// Schedules `on_timer(token)` to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::Timer(delay, token));
    }
}

/// A passive node that records every packet it receives.
///
/// Attach it promiscuously to model the paper's hub tap; harnesses can
/// drain the captured frames after (or during) a run via the shared
/// handle returned by [`Collector::handle`].
#[derive(Debug, Default)]
pub struct Collector {
    frames: std::rc::Rc<std::cell::RefCell<Vec<CapturedFrame>>>,
}

/// One frame captured by a [`Collector`].
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedFrame {
    /// Delivery time at the collector.
    pub time: SimTime,
    /// The packet as seen on the wire.
    pub packet: IpPacket,
}

/// Shared handle to a [`Collector`]'s capture buffer.
pub type CollectorHandle = std::rc::Rc<std::cell::RefCell<Vec<CapturedFrame>>>;

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// A shared handle that observes frames as they are captured.
    pub fn handle(&self) -> CollectorHandle {
        self.frames.clone()
    }
}

impl Node for Collector {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        self.frames.borrow_mut().push(CapturedFrame {
            time: ctx.now(),
            packet: pkt,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_actions() {
        let mut rng = SimRng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = NodeCtx {
            now: SimTime::from_millis(5),
            id: NodeId(3),
            ip: Ipv4Addr::new(10, 0, 0, 7),
            rng: &mut rng,
            actions: &mut actions,
        };
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.id().index(), 3);
        ctx.send_udp(100, Ipv4Addr::new(10, 0, 0, 8), 200, b"hi".as_ref());
        ctx.set_timer(SimDuration::from_millis(20), 42);
        assert_eq!(actions.len(), 2);
        match &actions[0] {
            Action::Send(pkt) => {
                assert_eq!(pkt.src, Ipv4Addr::new(10, 0, 0, 7));
                let udp = pkt.decode_udp().unwrap();
                assert_eq!(udp.src_port, 100);
                assert_eq!(udp.dst_port, 200);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[1] {
            Action::Timer(d, tok) => {
                assert_eq!(*d, SimDuration::from_millis(20));
                assert_eq!(*tok, 42);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn collector_records_frames() {
        let mut collector = Collector::new();
        let handle = collector.handle();
        let mut rng = SimRng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = NodeCtx {
            now: SimTime::from_millis(1),
            id: NodeId(0),
            ip: Ipv4Addr::new(10, 0, 0, 250),
            rng: &mut rng,
            actions: &mut actions,
        };
        let pkt = IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            Ipv4Addr::new(10, 0, 0, 2),
            2,
            b"x".as_ref(),
        );
        collector.on_packet(&mut ctx, pkt.clone());
        let frames = handle.borrow();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].packet, pkt);
        assert_eq!(frames[0].time, SimTime::from_millis(1));
    }
}
