//! Delay distributions for links.
//!
//! These are the network-delay random variables (`N_sip`, `N_rtp`) of the
//! paper's §4.3 performance model. Sampling is hand-written from inverse
//! CDFs / Box–Muller so that the simulator depends only on a uniform
//! source, keeping the dependency set minimal and the draws reproducible.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A distribution over one-way packet delays.
///
/// All parameters are in milliseconds. Samples are clamped to be
/// non-negative and rounded to the microsecond.
///
/// # Examples
///
/// ```
/// use scidive_netsim::dist::DelayDist;
/// use scidive_netsim::rng::SimRng;
///
/// let d = DelayDist::uniform_ms(1.0, 5.0);
/// let mut rng = SimRng::seed_from(1);
/// let s = d.sample(&mut rng);
/// assert!(s.as_millis_f64() >= 1.0 && s.as_millis_f64() <= 5.0);
/// assert!((d.mean_ms() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDist {
    /// Every packet takes exactly `ms` milliseconds.
    Constant {
        /// The fixed delay in milliseconds.
        ms: f64,
    },
    /// Uniform on `[lo_ms, hi_ms]`.
    Uniform {
        /// Lower bound in milliseconds.
        lo_ms: f64,
        /// Upper bound in milliseconds.
        hi_ms: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean delay in milliseconds.
        mean_ms: f64,
    },
    /// A fixed propagation delay plus an exponential queueing component.
    ShiftedExponential {
        /// Fixed propagation delay in milliseconds.
        shift_ms: f64,
        /// Mean of the exponential queueing component in milliseconds.
        mean_ms: f64,
    },
    /// Normal, truncated at zero by resampling clamp.
    Normal {
        /// Mean delay in milliseconds.
        mean_ms: f64,
        /// Standard deviation in milliseconds.
        std_ms: f64,
    },
}

impl DelayDist {
    /// Zero-delay distribution (useful in tests).
    pub const fn zero() -> DelayDist {
        DelayDist::Constant { ms: 0.0 }
    }

    /// Constant delay of `ms` milliseconds.
    pub const fn constant_ms(ms: f64) -> DelayDist {
        DelayDist::Constant { ms }
    }

    /// Uniform delay on `[lo_ms, hi_ms]`.
    pub const fn uniform_ms(lo_ms: f64, hi_ms: f64) -> DelayDist {
        DelayDist::Uniform { lo_ms, hi_ms }
    }

    /// Exponential delay with mean `mean_ms`.
    pub const fn exponential_ms(mean_ms: f64) -> DelayDist {
        DelayDist::Exponential { mean_ms }
    }

    /// `shift_ms` propagation plus exponential queueing of mean `mean_ms`.
    pub const fn shifted_exponential_ms(shift_ms: f64, mean_ms: f64) -> DelayDist {
        DelayDist::ShiftedExponential { shift_ms, mean_ms }
    }

    /// Normal delay, clamped at zero.
    pub const fn normal_ms(mean_ms: f64, std_ms: f64) -> DelayDist {
        DelayDist::Normal { mean_ms, std_ms }
    }

    /// Draws one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(self.sample_ms(rng))
    }

    /// Draws one delay in fractional milliseconds (clamped at zero).
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        let v = match *self {
            DelayDist::Constant { ms } => ms,
            DelayDist::Uniform { lo_ms, hi_ms } => {
                if hi_ms <= lo_ms {
                    lo_ms
                } else {
                    lo_ms + rng.unit() * (hi_ms - lo_ms)
                }
            }
            DelayDist::Exponential { mean_ms } => sample_exponential(rng, mean_ms),
            DelayDist::ShiftedExponential { shift_ms, mean_ms } => {
                shift_ms + sample_exponential(rng, mean_ms)
            }
            DelayDist::Normal { mean_ms, std_ms } => {
                mean_ms + std_ms * sample_standard_normal(rng)
            }
        };
        v.max(0.0)
    }

    /// The (untruncated) mean delay in milliseconds.
    ///
    /// For `Normal`, this is the mean of the untruncated distribution; the
    /// clamp at zero biases the true mean slightly upward when
    /// `mean_ms < 3 * std_ms`.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            DelayDist::Constant { ms } => ms,
            DelayDist::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            DelayDist::Exponential { mean_ms } => mean_ms,
            DelayDist::ShiftedExponential { shift_ms, mean_ms } => shift_ms + mean_ms,
            DelayDist::Normal { mean_ms, .. } => mean_ms,
        }
    }
}

impl Default for DelayDist {
    fn default() -> DelayDist {
        DelayDist::zero()
    }
}

impl fmt::Display for DelayDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DelayDist::Constant { ms } => write!(f, "const({ms}ms)"),
            DelayDist::Uniform { lo_ms, hi_ms } => write!(f, "uniform({lo_ms}..{hi_ms}ms)"),
            DelayDist::Exponential { mean_ms } => write!(f, "exp(mean={mean_ms}ms)"),
            DelayDist::ShiftedExponential { shift_ms, mean_ms } => {
                write!(f, "shiftexp({shift_ms}+exp({mean_ms})ms)")
            }
            DelayDist::Normal { mean_ms, std_ms } => write!(f, "normal({mean_ms}±{std_ms}ms)"),
        }
    }
}

/// Inverse-CDF exponential sample with the given mean.
fn sample_exponential(rng: &mut SimRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    // 1 - U is in (0, 1], so ln never sees zero.
    -mean * (1.0 - rng.unit()).ln()
}

/// Box–Muller standard normal sample.
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = (1.0 - rng.unit()).max(f64::MIN_POSITIVE);
    let u2 = rng.unit();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: DelayDist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample_ms(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from(1);
        let d = DelayDist::constant_ms(4.5);
        for _ in 0..10 {
            assert_eq!(d.sample_ms(&mut rng), 4.5);
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_mean_matches() {
        let d = DelayDist::uniform_ms(2.0, 8.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1_000 {
            let v = d.sample_ms(&mut rng);
            assert!((2.0..=8.0).contains(&v));
        }
        let m = mean_of(d, 20_000, 3);
        assert!((m - 5.0).abs() < 0.1, "mean={m}");
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let d = DelayDist::uniform_ms(3.0, 3.0);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(d.sample_ms(&mut rng), 3.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = DelayDist::exponential_ms(7.0);
        let m = mean_of(d, 50_000, 4);
        assert!((m - 7.0).abs() < 0.2, "mean={m}");
    }

    #[test]
    fn shifted_exponential_never_below_shift() {
        let d = DelayDist::shifted_exponential_ms(5.0, 2.0);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            assert!(d.sample_ms(&mut rng) >= 5.0);
        }
        let m = mean_of(d, 50_000, 6);
        assert!((m - 7.0).abs() < 0.2, "mean={m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = DelayDist::normal_ms(20.0, 2.0);
        let m = mean_of(d, 50_000, 7);
        assert!((m - 20.0).abs() < 0.2, "mean={m}");
        let mut rng = SimRng::seed_from(8);
        let within = (0..10_000)
            .filter(|_| (d.sample_ms(&mut rng) - 20.0).abs() < 4.0)
            .count();
        // ~95% within 2 sigma
        assert!(within > 9_200, "within={within}");
    }

    #[test]
    fn samples_never_negative() {
        let d = DelayDist::normal_ms(0.5, 3.0);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..5_000 {
            assert!(d.sample_ms(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn mean_ms_accessors() {
        assert_eq!(DelayDist::constant_ms(3.0).mean_ms(), 3.0);
        assert_eq!(DelayDist::uniform_ms(1.0, 3.0).mean_ms(), 2.0);
        assert_eq!(DelayDist::exponential_ms(4.0).mean_ms(), 4.0);
        assert_eq!(DelayDist::shifted_exponential_ms(1.0, 2.0).mean_ms(), 3.0);
        assert_eq!(DelayDist::normal_ms(5.0, 1.0).mean_ms(), 5.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DelayDist::constant_ms(1.0).to_string(), "const(1ms)");
        assert_eq!(DelayDist::exponential_ms(2.0).to_string(), "exp(mean=2ms)");
    }
}
