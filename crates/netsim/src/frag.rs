//! IP fragmentation and reassembly.
//!
//! The paper's Distiller "is responsible for doing IP fragmentation,
//! reassembly, decoding protocols" (§3.1): an attack pattern split across
//! fragments defeats a per-packet matcher. The simulator can fragment large
//! datagrams at a configurable MTU, and [`Reassembler`] restores them —
//! it is used both by receiving nodes and by the IDS Distiller.

use crate::packet::{FragInfo, IpPacket};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Splits a packet into fragments no larger than `mtu` payload bytes.
///
/// Offsets of non-final fragments are kept multiples of 8 as in real IPv4,
/// so `mtu` is rounded down to a multiple of 8 (minimum 8). Unfragmented
/// packets whose payload already fits are returned unchanged.
///
/// # Examples
///
/// ```
/// use scidive_netsim::frag::fragment;
/// use scidive_netsim::packet::IpPacket;
/// use std::net::Ipv4Addr;
///
/// let pkt = IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     vec![0u8; 1000],
/// ).with_id(42);
/// let frags = fragment(&pkt, 256);
/// assert!(frags.len() > 1);
/// assert!(frags.iter().all(|f| f.payload.len() <= 256));
/// ```
pub fn fragment(pkt: &IpPacket, mtu: usize) -> Vec<IpPacket> {
    let mtu = (mtu / 8).max(1) * 8;
    if pkt.payload.len() <= mtu {
        return vec![pkt.clone()];
    }
    let mut out = Vec::new();
    let total = pkt.payload.len();
    let mut offset = 0usize;
    while offset < total {
        let end = (offset + mtu).min(total);
        out.push(IpPacket {
            frag: FragInfo {
                offset: offset as u16,
                more: end < total,
            },
            payload: pkt.payload.slice(offset..end),
            ..pkt.clone()
        });
        offset = end;
    }
    out
}

/// Key identifying one in-flight fragmented datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    id: u16,
    proto: u8,
}

#[derive(Debug)]
struct Partial {
    first_seen: SimTime,
    /// (offset, bytes) pieces received so far.
    pieces: Vec<(u16, Bytes)>,
    /// Total length, known once the final fragment arrives.
    total_len: Option<usize>,
    template: IpPacket,
}

impl Partial {
    fn try_assemble(&self) -> Option<Bytes> {
        let total = self.total_len?;
        let mut buf = vec![0u8; total];
        let mut covered = vec![false; total];
        for (off, piece) in &self.pieces {
            let start = *off as usize;
            let end = start + piece.len();
            if end > total {
                return None;
            }
            buf[start..end].copy_from_slice(piece);
            for c in &mut covered[start..end] {
                *c = true;
            }
        }
        if covered.iter().all(|&c| c) {
            Some(Bytes::from(buf))
        } else {
            None
        }
    }
}

/// Reassembles IP fragments back into whole packets.
///
/// Incomplete datagrams are dropped after `timeout` of inactivity,
/// bounding memory under a fragment-flood.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<FragKey, Partial>,
    timeout: SimDuration,
    /// Count of datagrams that timed out incomplete.
    expired: u64,
}

impl Default for Reassembler {
    fn default() -> Reassembler {
        Reassembler::new(SimDuration::from_secs(30))
    }
}

impl Reassembler {
    /// Creates a reassembler with the given incomplete-datagram timeout.
    pub fn new(timeout: SimDuration) -> Reassembler {
        Reassembler {
            partials: HashMap::new(),
            timeout,
            expired: 0,
        }
    }

    /// Offers a packet. Whole packets pass through unchanged; fragments
    /// are buffered and the reassembled packet is returned once complete.
    pub fn offer(&mut self, now: SimTime, pkt: IpPacket) -> Option<IpPacket> {
        self.expire(now);
        if !pkt.frag.is_fragment() {
            return Some(pkt);
        }
        let key = FragKey {
            src: pkt.src,
            dst: pkt.dst,
            id: pkt.id,
            proto: pkt.proto.number(),
        };
        let entry = self.partials.entry(key).or_insert_with(|| Partial {
            first_seen: now,
            pieces: Vec::new(),
            total_len: None,
            template: IpPacket {
                frag: FragInfo::UNFRAGMENTED,
                payload: Bytes::new(),
                ..pkt.clone()
            },
        });
        if !pkt.frag.more {
            entry.total_len = Some(pkt.frag.offset as usize + pkt.payload.len());
        }
        entry.pieces.push((pkt.frag.offset, pkt.payload));
        if let Some(payload) = entry.try_assemble() {
            let template = self.partials.remove(&key).expect("entry exists").template;
            return Some(IpPacket { payload, ..template });
        }
        None
    }

    /// Number of datagrams dropped for timing out incomplete.
    pub fn expired_count(&self) -> u64 {
        self.expired
    }

    /// Number of datagrams currently awaiting more fragments.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Drops partial datagrams whose reassembly has timed out. `offer`
    /// runs this itself; callers that bypass `offer` for unfragmented
    /// traffic call it directly so drop timing stays identical.
    pub fn expire(&mut self, now: SimTime) {
        // Steady state is an empty table; skip the `retain` setup cost.
        if self.partials.is_empty() {
            return;
        }
        let timeout = self.timeout;
        let before = self.partials.len();
        self.partials
            .retain(|_, p| now.saturating_since(p.first_seen) < timeout);
        self.expired += (before - self.partials.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn big_packet(len: usize, id: u16) -> IpPacket {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            payload,
        )
        .with_id(id)
    }

    #[test]
    fn small_packet_not_fragmented() {
        let pkt = big_packet(100, 1);
        let frags = fragment(&pkt, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], pkt);
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let pkt = big_packet(1000, 2);
        let frags = fragment(&pkt, 300);
        // mtu rounds down to 296
        assert_eq!(frags.len(), 4);
        let mut total = 0;
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.frag.offset as usize, total);
            assert_eq!(f.frag.more, i + 1 < frags.len());
            total += f.payload.len();
        }
        assert_eq!(total, pkt.payload.len());
    }

    #[test]
    fn reassembly_in_order() {
        let pkt = big_packet(900, 3);
        let mut r = Reassembler::default();
        let mut out = None;
        for f in fragment(&pkt, 256) {
            out = r.offer(SimTime::ZERO, f);
        }
        let whole = out.expect("reassembled");
        assert_eq!(whole.payload, pkt.payload);
        assert!(!whole.frag.is_fragment());
        assert_eq!(whole.decode_udp().unwrap().dst_port, 5060);
    }

    #[test]
    fn reassembly_out_of_order() {
        let pkt = big_packet(900, 4);
        let mut frags = fragment(&pkt, 256);
        frags.reverse();
        let mut r = Reassembler::default();
        let mut out = None;
        for f in frags {
            assert!(out.is_none());
            out = r.offer(SimTime::ZERO, f);
        }
        assert_eq!(out.expect("reassembled").payload, pkt.payload);
    }

    #[test]
    fn interleaved_datagrams_do_not_mix() {
        let p1 = big_packet(600, 10);
        let p2 = big_packet(600, 11);
        let f1 = fragment(&p1, 256);
        let f2 = fragment(&p2, 256);
        let mut r = Reassembler::default();
        let mut done = Vec::new();
        for (a, b) in f1.into_iter().zip(f2) {
            if let Some(p) = r.offer(SimTime::ZERO, a) {
                done.push(p);
            }
            if let Some(p) = r.offer(SimTime::ZERO, b) {
                done.push(p);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|p| p.id == 10 && p.payload == p1.payload));
        assert!(done.iter().any(|p| p.id == 11 && p.payload == p2.payload));
    }

    #[test]
    fn missing_fragment_never_completes() {
        let pkt = big_packet(900, 5);
        let mut frags = fragment(&pkt, 256);
        frags.remove(1);
        let mut r = Reassembler::default();
        for f in frags {
            assert!(r.offer(SimTime::ZERO, f).is_none());
        }
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn incomplete_datagram_expires() {
        let pkt = big_packet(900, 6);
        let frags = fragment(&pkt, 256);
        let mut r = Reassembler::new(SimDuration::from_secs(5));
        r.offer(SimTime::ZERO, frags[0].clone());
        assert_eq!(r.pending(), 1);
        // A later unrelated packet triggers expiry.
        let small = big_packet(50, 7);
        r.offer(SimTime::from_secs(10), small);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.expired_count(), 1);
        // Late fragment restarts a fresh partial rather than completing.
        assert!(r.offer(SimTime::from_secs(10), frags[1].clone()).is_none());
    }

    #[test]
    fn duplicate_fragments_are_harmless() {
        let pkt = big_packet(600, 8);
        let frags = fragment(&pkt, 256);
        let mut r = Reassembler::default();
        r.offer(SimTime::ZERO, frags[0].clone());
        r.offer(SimTime::ZERO, frags[0].clone());
        let mut out = None;
        for f in &frags[1..] {
            out = r.offer(SimTime::ZERO, f.clone());
        }
        assert_eq!(out.expect("reassembled").payload, pkt.payload);
    }
}
