//! Property-based tests for the network substrate's invariants.

use bytes::Bytes;
use proptest::prelude::*;
use scidive_netsim::dist::DelayDist;
use scidive_netsim::frag::{fragment, Reassembler};
use scidive_netsim::packet::{IpPacket, PacketError, UdpDatagram};
use scidive_netsim::rng::SimRng;
use scidive_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn ip() -> impl Strategy<Value = Ipv4Addr> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
        .prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

proptest! {
    // ------------------------------------------------------------------
    // Time arithmetic
    // ------------------------------------------------------------------

    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    #[test]
    fn duration_add_is_commutative(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (da, db) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
        prop_assert_eq!(da + db, db + da);
    }

    #[test]
    fn saturating_since_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let earlier = SimTime::from_micros(a.min(b));
        let later = SimTime::from_micros(a.max(b));
        prop_assert_eq!(earlier.saturating_since(later), SimDuration::ZERO);
        prop_assert_eq!(
            later.saturating_since(earlier).as_micros(),
            a.max(b) - a.min(b)
        );
    }

    // ------------------------------------------------------------------
    // UDP wire format
    // ------------------------------------------------------------------

    #[test]
    fn udp_roundtrip(
        src in ip(), dst in ip(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let pkt = IpPacket::udp(src, sport, dst, dport, payload.clone());
        let udp = pkt.decode_udp().unwrap();
        prop_assert_eq!(udp.src_port, sport);
        prop_assert_eq!(udp.dst_port, dport);
        prop_assert_eq!(&udp.payload[..], &payload[..]);
    }

    #[test]
    fn udp_checksum_catches_any_single_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let pkt = IpPacket::udp(src, 1000, dst, 2000, payload);
        let mut raw = pkt.payload.to_vec();
        // Flip a single bit anywhere except the length field (bytes 4–5:
        // that is detected as BadLength instead) and except the checksum
        // zero-vs-ffff ambiguity is avoided because we always flip.
        let idx = byte_idx % raw.len();
        if (4..6).contains(&idx) {
            return Ok(());
        }
        raw[idx] ^= 1 << bit;
        let corrupted = IpPacket { payload: Bytes::from(raw), ..pkt };
        prop_assert!(
            matches!(
                corrupted.decode_udp(),
                Err(PacketError::BadChecksum { .. }) | Err(PacketError::BadLength { .. })
            ),
            "flip at {idx} bit {bit} went undetected"
        );
    }

    #[test]
    fn udp_decode_never_panics_on_garbage(
        src in ip(), dst in ip(),
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = UdpDatagram::decode(src, dst, &bytes);
    }

    // ------------------------------------------------------------------
    // Fragmentation
    // ------------------------------------------------------------------

    #[test]
    fn fragment_reassemble_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        mtu in 8usize..512,
        id in any::<u16>(),
    ) {
        let pkt = IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 1), 5060,
            Ipv4Addr::new(10, 0, 0, 2), 5060,
            payload,
        ).with_id(id);
        let frags = fragment(&pkt, mtu);
        // Fragments cover the payload exactly, in order, no overlap.
        let mut offset = 0usize;
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(f.frag.offset as usize, offset);
            prop_assert_eq!(f.frag.more, i + 1 < frags.len());
            offset += f.payload.len();
        }
        prop_assert_eq!(offset, pkt.payload.len());
        // Reassembly restores the original regardless of arrival order.
        let mut r = Reassembler::default();
        let mut out = None;
        let mut shuffled = frags;
        shuffled.reverse();
        for f in shuffled {
            if let Some(whole) = r.offer(SimTime::ZERO, f) {
                prop_assert!(out.is_none(), "completed twice");
                out = Some(whole);
            }
        }
        let whole = out.expect("reassembled");
        prop_assert_eq!(whole.payload, pkt.payload);
        prop_assert!(!whole.frag.is_fragment());
    }

    // ------------------------------------------------------------------
    // Delay distributions
    // ------------------------------------------------------------------

    #[test]
    fn delay_samples_are_nonnegative_and_finite(
        seed in any::<u64>(),
        lo in 0.0f64..50.0,
        spread in 0.0f64..50.0,
    ) {
        let mut rng = SimRng::seed_from(seed);
        for d in [
            DelayDist::constant_ms(lo),
            DelayDist::uniform_ms(lo, lo + spread),
            DelayDist::exponential_ms(spread),
            DelayDist::shifted_exponential_ms(lo, spread),
            DelayDist::normal_ms(lo, spread / 3.0),
        ] {
            for _ in 0..32 {
                let v = d.sample_ms(&mut rng);
                prop_assert!(v >= 0.0 && v.is_finite(), "{d}: {v}");
            }
        }
    }

    #[test]
    fn rng_forks_are_deterministic(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::RngCore;
        let mut a = SimRng::seed_from(seed).fork(&label);
        let mut b = SimRng::seed_from(seed).fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
