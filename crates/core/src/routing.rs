//! The shared session-routing layer.
//!
//! Two consumers need to answer "which session does this footprint
//! belong to?": the [`crate::trail::TrailStore`] (to file the footprint
//! into the right trail) and the sharded dispatcher of [`crate::shard`]
//! (to route the footprint to the worker owning that session's state).
//! Both answers must agree bit-for-bit, so the SDP-derived media
//! correlation index and the session-derivation rules live here, in one
//! place, and the trail store delegates to them.
//!
//! * [`MediaIndex`] — the `(sink address, port) → session` map learned
//!   from SDP bodies, the heart of cross-protocol correlation.
//! * [`MediaIndex::session_for`] — the canonical footprint → session
//!   derivation (Call-ID for SIP and accounting, media correlation for
//!   RTP/RTCP and garbage, synthetic keys otherwise).
//! * [`SessionRouter`] — session → shard assignment by a stable FNV-1a
//!   hash, identical for real and synthetic keys so chaos traffic
//!   spreads instead of hotspotting one worker.
//!
//! ## Index lifecycle
//!
//! Every learned mapping and memoized key carries a last-activity
//! stamp and expires after the same idle timeout the trail store uses
//! (see [`crate::trail::TrailStoreConfig::idle_timeout`]):
//!
//! * the `(addr, port) → session` media map — so a dead call's RTP
//!   sink cannot keep correlating new traffic to the dead session
//!   forever (a new call announcing the same sink overwrites the
//!   mapping immediately; idle expiry reclaims the rest);
//! * the memoized synthetic keys (`flow-*`, `other-*`, `sip-anon-*`,
//!   `sip-malformed-*`) — pure caches, reaped by periodic sweep;
//! * the [`SessionInterner`] — idle Call-IDs are dropped; re-interning
//!   later re-allocates once, which is exactly the cold-path cost.
//!
//! Staleness of the media map is checked **exactly, at resolve time**
//! (not only at sweeps), so the trail store and the sharded dispatcher
//! — whose sweep clocks tick at different moments — still agree
//! bit-for-bit on every routing decision. Expiry is deliberately *not*
//! tied to SIP teardown: cross-protocol rules (the §4.2.1 forged-BYE
//! check) depend on correlating media that arrives *after* the BYE, so
//! mappings outlive the dialog and die only of idleness.

use crate::footprint::Footprint;
use crate::proto::{AttributeCtx, ProtocolSet};
use crate::trail::SessionKey;
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The default index idle timeout, matching
/// [`crate::trail::TrailStoreConfig::default`].
const DEFAULT_IDLE_TIMEOUT: SimDuration = SimDuration::from_secs(600);

/// A value plus the capture time it was last used, the unit of idle
/// expiry.
#[derive(Debug, Clone)]
struct Stamped<T> {
    value: T,
    last_active: SimTime,
}

/// Lifecycle counters of a [`MediaIndex`]: proof that expiry runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexLifecycleStats {
    /// Media `(addr, port)` mappings dropped by idle expiry.
    pub media_expired: u64,
    /// Memoized synthetic keys dropped by idle expiry.
    pub synthetic_expired: u64,
    /// Interned session keys dropped by idle expiry.
    pub interner_expired: u64,
}

/// The media correlation index: media sinks announced by SDP, mapped to
/// the session that announced them — with idle-based lifecycle so the
/// maps plateau instead of growing forever.
///
/// # Examples
///
/// ```
/// use scidive_core::routing::MediaIndex;
/// use scidive_core::trail::SessionKey;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut index = MediaIndex::new();
/// let session = SessionKey::new("call-1");
/// index.learn_target(Ipv4Addr::new(10, 0, 0, 2), 8000, &session, SimTime::ZERO);
/// // The RTP port and its RTCP companion both resolve.
/// assert_eq!(index.resolve(Ipv4Addr::new(10, 0, 0, 2), 8000), Some(&session));
/// assert_eq!(index.resolve(Ipv4Addr::new(10, 0, 0, 2), 8001), Some(&session));
/// ```
#[derive(Debug, Clone)]
pub struct MediaIndex {
    map: HashMap<(Ipv4Addr, u16), Stamped<SessionKey>>,
    /// Interns real session keys (Call-IDs) so repeated footprints of
    /// the same session share one `Arc<str>` instead of re-allocating.
    interner: SessionInterner,
    /// Memoized synthetic keys — `(prefix, addr, port)` → key — so the
    /// steady state of an uncorrelated flow stops paying `format!` +
    /// allocation per packet. One cache serves every protocol module's
    /// fallback prefix (`flow`, `other`, `sip-anon`, `sip-malformed`,
    /// and whatever extensions invent).
    synthetic: HashMap<(&'static str, Ipv4Addr, Option<u16>), Stamped<SessionKey>>,
    /// The protocol registry attribution dispatches through.
    protocols: ProtocolSet,
    idle_timeout: SimDuration,
    sweep_interval: SimDuration,
    last_sweep: SimTime,
    stats: IndexLifecycleStats,
}

impl Default for MediaIndex {
    fn default() -> MediaIndex {
        MediaIndex::with_timeout(DEFAULT_IDLE_TIMEOUT)
    }
}

/// Interns session keys: equal text maps to one shared [`SessionKey`]
/// (same `Arc<str>`), so cloning a key for routing, trail filing, and
/// alerts never copies the string. Keys idle past the owner's timeout
/// are dropped by [`SessionInterner::expire`].
///
/// # Examples
///
/// ```
/// use scidive_core::routing::SessionInterner;
/// use scidive_netsim::time::SimTime;
///
/// let mut interner = SessionInterner::new();
/// let a = interner.intern("call-1", SimTime::ZERO);
/// let b = interner.intern("call-1", SimTime::from_millis(5));
/// assert_eq!(a, b); // same text — and the same shared allocation
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionInterner {
    keys: HashMap<SessionKey, SimTime>,
}

impl SessionInterner {
    /// Creates an empty interner.
    pub fn new() -> SessionInterner {
        SessionInterner::default()
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns the canonical key for `id`, allocating only on first
    /// sight of a given text, and stamps it as active at `now`.
    pub fn intern(&mut self, id: &str, now: SimTime) -> SessionKey {
        if let Some((key, _)) = self.keys.get_key_value(id) {
            let key = key.clone();
            self.keys.insert(key.clone(), now);
            return key;
        }
        let key = SessionKey::new(id);
        self.keys.insert(key.clone(), now);
        key
    }

    /// Drops keys idle for `timeout` or longer; returns how many died.
    pub fn expire(&mut self, now: SimTime, timeout: SimDuration) -> u64 {
        let before = self.keys.len();
        self.keys
            .retain(|_, last| now.saturating_since(*last) < timeout);
        (before - self.keys.len()) as u64
    }
}

impl MediaIndex {
    /// Creates an index with the default idle timeout (600 s, matching
    /// [`crate::trail::TrailStoreConfig::default`]).
    pub fn new() -> MediaIndex {
        MediaIndex::default()
    }

    /// Creates an index whose entries expire after `idle_timeout`
    /// without activity, attributing through the default protocol
    /// registry. Both consumers of the keying rule (trail store,
    /// dispatcher) must use the same timeout or their routing diverges.
    pub fn with_timeout(idle_timeout: SimDuration) -> MediaIndex {
        MediaIndex::with_protocols(idle_timeout, ProtocolSet::default())
    }

    /// Creates an index attributing through the given protocol
    /// registry.
    pub fn with_protocols(idle_timeout: SimDuration, protocols: ProtocolSet) -> MediaIndex {
        // Sweeps only reclaim memory; correctness comes from the exact
        // staleness check at resolve time. A quarter of the timeout
        // keeps peak memory within ~1.25× of the true live set.
        let sweep_interval = SimDuration::from_micros((idle_timeout.as_micros() / 4).max(1));
        MediaIndex {
            map: HashMap::new(),
            interner: SessionInterner::new(),
            synthetic: HashMap::new(),
            protocols,
            idle_timeout,
            sweep_interval,
            last_sweep: SimTime::ZERO,
            stats: IndexLifecycleStats::default(),
        }
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> SimDuration {
        self.idle_timeout
    }

    /// Number of mapped (address, port) sinks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct interned session keys.
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// Number of memoized synthetic keys.
    pub fn synthetic_key_count(&self) -> usize {
        self.synthetic.len()
    }

    /// Lifecycle counters (expirations so far).
    pub fn lifecycle_stats(&self) -> IndexLifecycleStats {
        self.stats
    }

    /// The session owning a media sink, if any SDP announced it.
    ///
    /// This is the raw map lookup — it ignores idle staleness and does
    /// not refresh activity. The keying path ([`MediaIndex::session_for`])
    /// applies the exact expiry check instead.
    pub fn resolve(&self, addr: Ipv4Addr, port: u16) -> Option<&SessionKey> {
        self.map.get(&(addr, port)).map(|e| &e.value)
    }

    /// Resolves a media sink with the exact lifecycle rule: an entry
    /// idle for `idle_timeout` or longer is dead — removed on the spot
    /// and reported as absent; a live entry is refreshed.
    pub(crate) fn resolve_fresh(
        &mut self,
        addr: Ipv4Addr,
        port: u16,
        now: SimTime,
    ) -> Option<SessionKey> {
        match self.map.entry((addr, port)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if now.saturating_since(e.get().last_active) >= self.idle_timeout {
                    e.remove();
                    self.stats.media_expired += 1;
                    None
                } else {
                    e.get_mut().last_active = now;
                    Some(e.get().value.clone())
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => None,
        }
    }

    /// Records a negotiated RTP target (and its RTCP companion port)
    /// as belonging to `session`, active as of `now`. A sink previously
    /// owned by another (possibly dead) session is overwritten — the
    /// newest announcement wins.
    pub fn learn_target(&mut self, addr: Ipv4Addr, port: u16, session: &SessionKey, now: SimTime) {
        let entry = Stamped {
            value: session.clone(),
            last_active: now,
        };
        self.map.insert((addr, port), entry.clone());
        // RTCP companion port.
        self.map.insert((addr, port + 1), entry);
    }

    /// Learns correlation state a footprint announces (SDP media sinks,
    /// gateway-control connections), by dispatching to the protocol
    /// module owning its body; returns `true` if anything was learned.
    pub fn learn_from(&mut self, fp: &Footprint, session: &SessionKey) -> bool {
        let now = fp.meta.time;
        // Arc refcount bump: lets the module borrow the index mutably
        // through the context while the registry is iterated.
        let protocols = self.protocols.clone();
        protocols
            .module_for(&fp.body)
            .learn(fp, session, &mut AttributeCtx { now, index: self })
    }

    /// Derives the session a footprint belongs to — the single
    /// canonical keying rule shared by the trail store and the sharded
    /// dispatcher, dispatched to the protocol module owning the
    /// footprint's body (see [`crate::proto::ProtocolModule::attribute`]):
    ///
    /// * SIP keys by Call-ID (`sip-anon-{src}` when absent);
    /// * unparseable SIP keys by `sip-malformed-{src}`;
    /// * accounting transactions carry the Call-ID directly;
    /// * RTP/RTCP resolve through this index (RTCP on the companion
    ///   port), falling back to a synthetic `flow-{dst}:{port}` key;
    /// * other UDP/ICMP aimed at a known media sink joins that session,
    ///   falling back to `other-{dst}`;
    /// * bodies of unregistered extension protocols fall back to the
    ///   module owning `UdpOther`.
    ///
    /// Real and synthetic keys alike are memoized: the first packet of a
    /// session pays one key construction, every later packet gets a
    /// cheap clone of the shared key. Every use stamps the key active;
    /// media mappings idle past the timeout are treated as absent (the
    /// exact check above), and idle memo entries are reaped by the
    /// periodic sweep.
    pub fn session_for(&mut self, fp: &Footprint) -> SessionKey {
        let now = fp.meta.time;
        self.maybe_sweep(now);
        let protocols = self.protocols.clone();
        protocols
            .module_for(&fp.body)
            .attribute(fp, &mut AttributeCtx { now, index: self })
    }

    /// Interns a real session identifier, stamping it active at `now`.
    pub(crate) fn intern_key(&mut self, id: &str, now: SimTime) -> SessionKey {
        self.interner.intern(id, now)
    }

    /// The memoized synthetic key for `(prefix, addr, port)`:
    /// `"{prefix}-{addr}:{port}"`, or `"{prefix}-{addr}"` without a
    /// port. Construction forces the synthetic flag, so extension
    /// modules' prefixes route like the built-in ones.
    pub(crate) fn synthetic_key(
        &mut self,
        prefix: &'static str,
        addr: Ipv4Addr,
        port: Option<u16>,
        now: SimTime,
    ) -> SessionKey {
        let e = self
            .synthetic
            .entry((prefix, addr, port))
            .or_insert_with(|| Stamped {
                value: match port {
                    Some(port) => SessionKey::synthetic(format!("{prefix}-{addr}:{port}")),
                    None => SessionKey::synthetic(format!("{prefix}-{addr}")),
                },
                last_active: now,
            });
        e.last_active = now;
        e.value.clone()
    }

    /// Periodic memory reclamation: every `sweep_interval` of capture
    /// time, drop idle media mappings, memoized synthetic keys and
    /// interned Call-IDs. Correctness never depends on when this runs —
    /// the media map's staleness is checked exactly at resolve time —
    /// so differing sweep clocks across deployments cannot change
    /// routing.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.sweep_interval {
            return;
        }
        self.last_sweep = now;
        let timeout = self.idle_timeout;
        let alive =
            |e: &Stamped<SessionKey>| now.saturating_since(e.last_active) < timeout;

        let before = self.map.len();
        self.map.retain(|_, e| alive(e));
        self.stats.media_expired += (before - self.map.len()) as u64;

        let before = self.synthetic.len();
        self.synthetic.retain(|_, e| alive(e));
        self.stats.synthetic_expired += (before - self.synthetic.len()) as u64;

        self.stats.interner_expired += self.interner.expire(now, timeout);
    }
}

/// Whether a session key is synthetic: manufactured for traffic that
/// could not be correlated to any signalled session (unmatched media
/// flows, stray UDP, anonymous or unparseable SIP).
pub fn is_synthetic(session: &SessionKey) -> bool {
    // The prefix check runs once, at key construction; this reads the
    // memoized flag.
    session.is_synthetic()
}

/// A stable 64-bit FNV-1a hash of the session key. Independent of
/// platform, process, and `HashMap` seeding — the same session always
/// hashes identically, which is what makes shard assignment (and hence
/// the merged alert stream) reproducible across runs and shard counts.
///
/// Computed once at key construction and memoized, so per-packet shard
/// assignment is a field read, not a rehash.
pub fn stable_session_hash(session: &SessionKey) -> u64 {
    session.stable_hash()
}

/// Where the router decided a footprint goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// The resolved session.
    pub session: SessionKey,
    /// The shard that owns the session's state.
    pub shard: usize,
    /// Whether the footprint's session is synthetic (unmatched media or
    /// uncorrelatable traffic). Counted by the dispatcher; synthetic
    /// sessions spread across shards by the same stable hash as real
    /// ones.
    pub overflow: bool,
}

/// The dispatcher's session router: resolves each footprint to its
/// session (maintaining the media index in arrival order, exactly as a
/// single engine would) and assigns it a shard.
///
/// All sessions — real and synthetic — are spread by
/// [`stable_session_hash`], so chaos/garbage traffic cannot hotspot a
/// single worker: each synthetic flow is its own session and sticks to
/// its hashed shard for its whole life, preserving shard-count
/// invariance. Only session-less frames (fragments still reassembling)
/// fall to the designated [`SessionRouter::overflow_shard`], purely so
/// frame counters stay conserved.
#[derive(Debug)]
pub struct SessionRouter {
    index: MediaIndex,
    shards: usize,
}

impl SessionRouter {
    /// Creates a router dispatching over `shards` workers, with the
    /// default index idle timeout.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> SessionRouter {
        SessionRouter::with_timeout(shards, DEFAULT_IDLE_TIMEOUT)
    }

    /// Creates a router whose media index expires entries after
    /// `idle_timeout` — pass the trail store's timeout so both views of
    /// the keying rule stay bit-for-bit agreed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_timeout(shards: usize, idle_timeout: SimDuration) -> SessionRouter {
        SessionRouter::with_protocols(shards, idle_timeout, ProtocolSet::default())
    }

    /// Creates a router attributing through the given protocol registry
    /// — pass the same registry the workers' trail stores use, or the
    /// two views of the keying rule diverge.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_protocols(
        shards: usize,
        idle_timeout: SimDuration,
        protocols: ProtocolSet,
    ) -> SessionRouter {
        assert!(shards >= 1, "a sharded pipeline needs at least one shard");
        SessionRouter {
            index: MediaIndex::with_protocols(idle_timeout, protocols),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that receives session-less frames (fragments still
    /// reassembling, which carry no footprint and hence no session).
    /// Synthetic *sessions* do not land here — they spread by hash.
    pub fn overflow_shard(&self) -> usize {
        0
    }

    /// Read access to the media index.
    pub fn index(&self) -> &MediaIndex {
        &self.index
    }

    /// The shard a session maps to, without touching the index.
    pub fn shard_of(&self, session: &SessionKey) -> usize {
        (stable_session_hash(session) % self.shards as u64) as usize
    }

    /// Routes one footprint: resolves its session, learns any SDP it
    /// carries (keeping the index in lock-step with what a single
    /// engine's trail store would know), and picks the shard.
    pub fn route(&mut self, fp: &Footprint) -> RouteDecision {
        let session = self.index.session_for(fp);
        self.index.learn_from(fp, &session);
        let shard = self.shard_of(&session);
        RouteDecision {
            overflow: is_synthetic(&session),
            session,
            shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::{FootprintBody, PacketMeta};
    use scidive_netsim::time::SimTime;
    use scidive_sip::sdp::SessionDescription;
    use scidive_rtp::packet::RtpHeader;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::method::Method;
    use scidive_sip::msg::RequestBuilder;

    fn meta_at(t: u64, dst: [u8; 4], dport: u16) -> PacketMeta {
        PacketMeta {
            time: SimTime::from_millis(t),
            src: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 5060,
            dst: dst.into(),
            dst_port: dport,
        }
    }

    fn invite_with_sdp(call_id: &str, media_ip: [u8; 4], port: u16) -> Footprint {
        invite_with_sdp_at(1, call_id, media_ip, port)
    }

    fn invite_with_sdp_at(t: u64, call_id: &str, media_ip: [u8; 4], port: u16) -> Footprint {
        let sdp = SessionDescription::audio_offer("alice", media_ip.into(), port);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("a"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-r"))
            .body("application/sdp", sdp.to_string());
        Footprint {
            meta: meta_at(t, [10, 0, 0, 1], 5060),
            body: FootprintBody::Sip(b.build().into()),
        }
    }

    fn rtp_to(dst: [u8; 4], dport: u16) -> Footprint {
        rtp_to_at(1, dst, dport)
    }

    fn rtp_to_at(t: u64, dst: [u8; 4], dport: u16) -> Footprint {
        Footprint {
            meta: meta_at(t, dst, dport),
            body: FootprintBody::Rtp {
                header: RtpHeader::new(96, 7, 100, 0xabcd),
                payload_len: 160,
            },
        }
    }

    #[test]
    fn router_agrees_with_trail_store_keying() {
        use crate::trail::{TrailStore, TrailStoreConfig};
        let mut router = SessionRouter::new(4);
        let mut store = TrailStore::new(TrailStoreConfig::default());
        let frames = vec![
            invite_with_sdp("c1", [10, 0, 0, 3], 8000),
            rtp_to([10, 0, 0, 3], 8000),
            rtp_to([10, 0, 0, 9], 9000),
        ];
        for fp in frames {
            let decision = router.route(&fp);
            let (_, key) = store.insert(fp);
            assert_eq!(decision.session, key.session);
        }
    }

    #[test]
    fn matched_media_follows_its_sip_session() {
        let mut router = SessionRouter::new(8);
        let sip = router.route(&invite_with_sdp("c1", [10, 0, 0, 3], 8000));
        let rtp = router.route(&rtp_to([10, 0, 0, 3], 8000));
        let rtcp = router.route(&rtp_to([10, 0, 0, 3], 8000)); // same flow again
        assert_eq!(sip.session, SessionKey::new("c1"));
        assert_eq!(rtp.session, sip.session);
        assert_eq!(rtp.shard, sip.shard);
        assert_eq!(rtcp.shard, sip.shard);
        assert!(!rtp.overflow);
    }

    #[test]
    fn unmatched_media_is_synthetic_and_spreads_by_hash() {
        let mut router = SessionRouter::new(8);
        let mut shards = std::collections::HashSet::new();
        for i in 0..32u16 {
            let decision = router.route(&rtp_to([10, 0, 0, 9], 9000 + i * 2));
            assert!(decision.overflow);
            assert!(is_synthetic(&decision.session));
            // Stable: the same flow re-resolves to the same shard.
            assert_eq!(decision.shard, router.shard_of(&decision.session));
            shards.insert(decision.shard);
        }
        // 32 distinct flows must not hotspot one worker.
        assert!(
            shards.len() > 1,
            "synthetic sessions all routed to one shard: {shards:?}"
        );
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        let a = stable_session_hash(&SessionKey::new("call-a"));
        assert_eq!(a, stable_session_hash(&SessionKey::new("call-a")));
        // Distinct keys should not trivially collide.
        let hits: std::collections::HashSet<u64> = (0..100)
            .map(|i| stable_session_hash(&SessionKey::new(format!("call-{i}"))))
            .collect();
        assert!(hits.len() > 90);
        // And across 4 shards, 100 sessions should use every shard.
        let router = SessionRouter::new(4);
        let shards: std::collections::HashSet<usize> = (0..100)
            .map(|i| router.shard_of(&SessionKey::new(format!("call-{i}"))))
            .collect();
        assert_eq!(shards.len(), 4);
    }

    #[test]
    fn routing_is_deterministic() {
        let mk = || {
            let mut router = SessionRouter::new(7);
            vec![
                router.route(&invite_with_sdp("c1", [10, 0, 0, 3], 8000)),
                router.route(&rtp_to([10, 0, 0, 3], 8000)),
                router.route(&rtp_to([10, 0, 0, 9], 9000)),
            ]
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn idle_media_mapping_expires_exactly() {
        let timeout = SimDuration::from_secs(10);
        let mut index = MediaIndex::with_timeout(timeout);
        let mut fp = invite_with_sdp_at(0, "c1", [10, 0, 0, 3], 8000);
        fp.meta.time = SimTime::ZERO;
        let session = index.session_for(&fp);
        index.learn_from(&fp, &session);
        // Within the timeout the sink still correlates...
        assert_eq!(
            index.session_for(&rtp_to_at(9_999, [10, 0, 0, 3], 8000)),
            SessionKey::new("c1")
        );
        // ...and the activity refreshed the entry, extending its life.
        assert_eq!(
            index.session_for(&rtp_to_at(19_000, [10, 0, 0, 3], 8000)),
            SessionKey::new("c1")
        );
        // 10 full seconds of silence kill it — exactly at the boundary.
        let late = index.session_for(&rtp_to_at(29_000, [10, 0, 0, 3], 8000));
        assert_eq!(late, SessionKey::new("flow-10.0.0.3:8000"));
        assert!(index.lifecycle_stats().media_expired >= 1);
    }

    #[test]
    fn memo_caches_and_interner_are_swept() {
        let timeout = SimDuration::from_secs(10);
        let mut index = MediaIndex::with_timeout(timeout);
        // 20 distinct uncorrelated flows + 5 interned Call-IDs.
        for i in 0..20u16 {
            index.session_for(&rtp_to_at(u64::from(i), [10, 0, 0, 9], 9000 + i));
        }
        for i in 0..5 {
            index.session_for(&invite_with_sdp_at(i, &format!("c{i}"), [10, 0, 0, 3], 8000));
        }
        assert_eq!(index.synthetic_key_count(), 20);
        assert_eq!(index.interner_len(), 5);
        // A packet far past the timeout triggers the sweep; the idle
        // caches drain instead of growing forever.
        index.session_for(&rtp_to_at(60_000, [10, 0, 0, 9], 9999));
        assert_eq!(index.synthetic_key_count(), 1, "only the live flow survives");
        assert_eq!(index.interner_len(), 0);
        let stats = index.lifecycle_stats();
        assert!(stats.synthetic_expired >= 20);
        assert_eq!(stats.interner_expired, 5);
    }

    #[test]
    fn new_announcement_overwrites_dead_owner() {
        let mut index = MediaIndex::with_timeout(SimDuration::from_secs(600));
        let fp1 = invite_with_sdp_at(0, "call-1", [10, 0, 0, 3], 8000);
        let s1 = index.session_for(&fp1);
        index.learn_from(&fp1, &s1);
        // A later call re-announces the same sink: newest wins, even
        // with the first mapping still inside its idle window.
        let fp2 = invite_with_sdp_at(5_000, "call-2", [10, 0, 0, 3], 8000);
        let s2 = index.session_for(&fp2);
        index.learn_from(&fp2, &s2);
        assert_eq!(
            index.session_for(&rtp_to_at(6_000, [10, 0, 0, 3], 8000)),
            SessionKey::new("call-2")
        );
    }
}
