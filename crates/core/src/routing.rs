//! The shared session-routing layer.
//!
//! Two consumers need to answer "which session does this footprint
//! belong to?": the [`crate::trail::TrailStore`] (to file the footprint
//! into the right trail) and the sharded dispatcher of [`crate::shard`]
//! (to route the footprint to the worker owning that session's state).
//! Both answers must agree bit-for-bit, so the SDP-derived media
//! correlation index and the session-derivation rules live here, in one
//! place, and the trail store delegates to them.
//!
//! * [`MediaIndex`] — the `(sink address, port) → session` map learned
//!   from SDP bodies, the heart of cross-protocol correlation.
//! * [`MediaIndex::session_for`] — the canonical footprint → session
//!   derivation (Call-ID for SIP and accounting, media correlation for
//!   RTP/RTCP and garbage, synthetic keys otherwise).
//! * [`SessionRouter`] — session → shard assignment: a stable FNV-1a
//!   hash for real sessions, a designated overflow shard for synthetic
//!   (unmatched) ones, so no traffic is ever silently dropped.

use crate::footprint::{Footprint, FootprintBody};
use crate::trail::SessionKey;
use scidive_sip::sdp::SessionDescription;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The media correlation index: media sinks announced by SDP, mapped to
/// the session that announced them.
///
/// # Examples
///
/// ```
/// use scidive_core::routing::MediaIndex;
/// use scidive_core::trail::SessionKey;
/// use std::net::Ipv4Addr;
///
/// let mut index = MediaIndex::new();
/// let session = SessionKey::new("call-1");
/// index.learn_target(Ipv4Addr::new(10, 0, 0, 2), 8000, &session);
/// // The RTP port and its RTCP companion both resolve.
/// assert_eq!(index.resolve(Ipv4Addr::new(10, 0, 0, 2), 8000), Some(&session));
/// assert_eq!(index.resolve(Ipv4Addr::new(10, 0, 0, 2), 8001), Some(&session));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MediaIndex {
    map: HashMap<(Ipv4Addr, u16), SessionKey>,
    /// Interns real session keys (Call-IDs) so repeated footprints of
    /// the same session share one `Arc<str>` instead of re-allocating.
    interner: SessionInterner,
    /// Memoized synthetic keys, so the steady state of an uncorrelated
    /// flow stops paying `format!` + allocation per packet.
    flow_keys: HashMap<(Ipv4Addr, u16), SessionKey>,
    other_keys: HashMap<Ipv4Addr, SessionKey>,
    sip_anon_keys: HashMap<Ipv4Addr, SessionKey>,
    sip_malformed_keys: HashMap<Ipv4Addr, SessionKey>,
}

/// Interns session keys: equal text maps to one shared [`SessionKey`]
/// (same `Arc<str>`), so cloning a key for routing, trail filing, and
/// alerts never copies the string.
///
/// # Examples
///
/// ```
/// use scidive_core::routing::SessionInterner;
///
/// let mut interner = SessionInterner::new();
/// let a = interner.intern("call-1");
/// let b = interner.intern("call-1");
/// assert_eq!(a, b); // same text — and the same shared allocation
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionInterner {
    keys: std::collections::HashSet<SessionKey>,
}

impl SessionInterner {
    /// Creates an empty interner.
    pub fn new() -> SessionInterner {
        SessionInterner::default()
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns the canonical key for `id`, allocating only on first
    /// sight of a given text.
    pub fn intern(&mut self, id: &str) -> SessionKey {
        if let Some(key) = self.keys.get(id) {
            return key.clone();
        }
        let key = SessionKey::new(id);
        self.keys.insert(key.clone());
        key
    }
}

impl MediaIndex {
    /// Creates an empty index.
    pub fn new() -> MediaIndex {
        MediaIndex::default()
    }

    /// Number of mapped (address, port) sinks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The session owning a media sink, if any SDP announced it.
    pub fn resolve(&self, addr: Ipv4Addr, port: u16) -> Option<&SessionKey> {
        self.map.get(&(addr, port))
    }

    /// Records a negotiated RTP target (and its RTCP companion port)
    /// as belonging to `session`.
    pub fn learn_target(&mut self, addr: Ipv4Addr, port: u16, session: &SessionKey) {
        self.map.insert((addr, port), session.clone());
        // RTCP companion port.
        self.map.insert((addr, port + 1), session.clone());
    }

    /// Learns media sinks from an SDP body carried by a SIP footprint;
    /// returns `true` if a mapping was added or refreshed.
    pub fn learn_from(&mut self, fp: &Footprint, session: &SessionKey) -> bool {
        let FootprintBody::Sip(msg) = &fp.body else {
            return false;
        };
        if msg.content_type() != Some("application/sdp") {
            return false;
        }
        let Ok(text) = std::str::from_utf8(&msg.body) else {
            return false;
        };
        let Ok(sdp) = text.parse::<SessionDescription>() else {
            return false;
        };
        if let Some((addr, port)) = sdp.rtp_target() {
            self.learn_target(addr, port, session);
            return true;
        }
        false
    }

    /// Derives the session a footprint belongs to — the single
    /// canonical keying rule shared by the trail store and the sharded
    /// dispatcher:
    ///
    /// * SIP keys by Call-ID (`sip-anon-{src}` when absent);
    /// * unparseable SIP keys by `sip-malformed-{src}`;
    /// * accounting transactions carry the Call-ID directly;
    /// * RTP/RTCP resolve through this index (RTCP on the companion
    ///   port), falling back to a synthetic `flow-{dst}:{port}` key;
    /// * other UDP/ICMP aimed at a known media sink joins that session,
    ///   falling back to `other-{dst}`.
    ///
    /// Real and synthetic keys alike are memoized: the first packet of a
    /// session pays one key construction, every later packet gets a
    /// cheap clone of the shared key.
    pub fn session_for(&mut self, fp: &Footprint) -> SessionKey {
        match &fp.body {
            FootprintBody::Sip(msg) => match msg.call_id() {
                Ok(id) => self.interner.intern(id),
                Err(_) => {
                    let src = fp.meta.src;
                    self.sip_anon_keys
                        .entry(src)
                        .or_insert_with(|| SessionKey::new(format!("sip-anon-{src}")))
                        .clone()
                }
            },
            FootprintBody::SipMalformed { .. } => {
                let src = fp.meta.src;
                self.sip_malformed_keys
                    .entry(src)
                    .or_insert_with(|| SessionKey::new(format!("sip-malformed-{src}")))
                    .clone()
            }
            FootprintBody::Acct(acct) => self.interner.intern(&acct.call_id),
            FootprintBody::Rtp { .. } | FootprintBody::Rtcp(_) => {
                // RTCP rides on port+1; map it onto the RTP sink's port.
                let port = match &fp.body {
                    FootprintBody::Rtcp(_) => fp.meta.dst_port.saturating_sub(1),
                    _ => fp.meta.dst_port,
                };
                match self.resolve(fp.meta.dst, port) {
                    Some(session) => session.clone(),
                    None => {
                        let (dst, dst_port) = (fp.meta.dst, fp.meta.dst_port);
                        self.flow_keys
                            .entry((dst, dst_port))
                            .or_insert_with(|| SessionKey::new(format!("flow-{dst}:{dst_port}")))
                            .clone()
                    }
                }
            }
            FootprintBody::Icmp { .. }
            | FootprintBody::UdpOther { .. }
            | FootprintBody::UdpCorrupt { .. } => {
                // Garbage aimed at a known media sink belongs to that
                // session (that is how the RTP attack is correlated).
                match self.resolve(fp.meta.dst, fp.meta.dst_port) {
                    Some(session) => session.clone(),
                    None => {
                        let dst = fp.meta.dst;
                        self.other_keys
                            .entry(dst)
                            .or_insert_with(|| SessionKey::new(format!("other-{dst}")))
                            .clone()
                    }
                }
            }
        }
    }
}

/// Whether a session key is synthetic: manufactured for traffic that
/// could not be correlated to any signalled session (unmatched media
/// flows, stray UDP, anonymous or unparseable SIP).
pub fn is_synthetic(session: &SessionKey) -> bool {
    // The prefix check runs once, at key construction; this reads the
    // memoized flag.
    session.is_synthetic()
}

/// A stable 64-bit FNV-1a hash of the session key. Independent of
/// platform, process, and `HashMap` seeding — the same session always
/// hashes identically, which is what makes shard assignment (and hence
/// the merged alert stream) reproducible across runs and shard counts.
///
/// Computed once at key construction and memoized, so per-packet shard
/// assignment is a field read, not a rehash.
pub fn stable_session_hash(session: &SessionKey) -> u64 {
    session.stable_hash()
}

/// Where the router decided a footprint goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// The resolved session.
    pub session: SessionKey,
    /// The shard that owns the session's state.
    pub shard: usize,
    /// Whether the footprint fell through to the overflow shard (its
    /// session is synthetic — unmatched media or uncorrelatable
    /// traffic).
    pub overflow: bool,
}

/// The dispatcher's session router: resolves each footprint to its
/// session (maintaining the media index in arrival order, exactly as a
/// single engine would) and assigns it a shard.
///
/// Real sessions are spread by [`stable_session_hash`]; synthetic
/// sessions all land on the designated overflow shard, so unmatched
/// media is still inspected — never silently dropped — and the shard
/// assignment never flaps while a flow is waiting for the SDP that
/// names it.
#[derive(Debug)]
pub struct SessionRouter {
    index: MediaIndex,
    shards: usize,
}

impl SessionRouter {
    /// Creates a router dispatching over `shards` workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> SessionRouter {
        assert!(shards >= 1, "a sharded pipeline needs at least one shard");
        SessionRouter {
            index: MediaIndex::new(),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that receives synthetic (unmatched) sessions.
    pub fn overflow_shard(&self) -> usize {
        0
    }

    /// Read access to the media index.
    pub fn index(&self) -> &MediaIndex {
        &self.index
    }

    /// The shard a session maps to, without touching the index.
    pub fn shard_of(&self, session: &SessionKey) -> usize {
        if is_synthetic(session) {
            self.overflow_shard()
        } else {
            (stable_session_hash(session) % self.shards as u64) as usize
        }
    }

    /// Routes one footprint: resolves its session, learns any SDP it
    /// carries (keeping the index in lock-step with what a single
    /// engine's trail store would know), and picks the shard.
    pub fn route(&mut self, fp: &Footprint) -> RouteDecision {
        let session = self.index.session_for(fp);
        self.index.learn_from(fp, &session);
        let shard = self.shard_of(&session);
        RouteDecision {
            overflow: is_synthetic(&session),
            session,
            shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::PacketMeta;
    use scidive_netsim::time::SimTime;
    use scidive_rtp::packet::RtpHeader;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::method::Method;
    use scidive_sip::msg::RequestBuilder;

    fn meta(dst: [u8; 4], dport: u16) -> PacketMeta {
        PacketMeta {
            time: SimTime::from_millis(1),
            src: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 5060,
            dst: dst.into(),
            dst_port: dport,
        }
    }

    fn invite_with_sdp(call_id: &str, media_ip: [u8; 4], port: u16) -> Footprint {
        let sdp = SessionDescription::audio_offer("alice", media_ip.into(), port);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("a"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-r"))
            .body("application/sdp", sdp.to_string());
        Footprint {
            meta: meta([10, 0, 0, 1], 5060),
            body: FootprintBody::Sip(Box::new(b.build())),
        }
    }

    fn rtp_to(dst: [u8; 4], dport: u16) -> Footprint {
        Footprint {
            meta: meta(dst, dport),
            body: FootprintBody::Rtp {
                header: RtpHeader::new(96, 7, 100, 0xabcd),
                payload_len: 160,
            },
        }
    }

    #[test]
    fn router_agrees_with_trail_store_keying() {
        use crate::trail::{TrailStore, TrailStoreConfig};
        let mut router = SessionRouter::new(4);
        let mut store = TrailStore::new(TrailStoreConfig::default());
        let frames = vec![
            invite_with_sdp("c1", [10, 0, 0, 3], 8000),
            rtp_to([10, 0, 0, 3], 8000),
            rtp_to([10, 0, 0, 9], 9000),
        ];
        for fp in frames {
            let decision = router.route(&fp);
            let (_, key) = store.insert(fp);
            assert_eq!(decision.session, key.session);
        }
    }

    #[test]
    fn matched_media_follows_its_sip_session() {
        let mut router = SessionRouter::new(8);
        let sip = router.route(&invite_with_sdp("c1", [10, 0, 0, 3], 8000));
        let rtp = router.route(&rtp_to([10, 0, 0, 3], 8000));
        let rtcp = router.route(&rtp_to([10, 0, 0, 3], 8000)); // same flow again
        assert_eq!(sip.session, SessionKey::new("c1"));
        assert_eq!(rtp.session, sip.session);
        assert_eq!(rtp.shard, sip.shard);
        assert_eq!(rtcp.shard, sip.shard);
        assert!(!rtp.overflow);
    }

    #[test]
    fn unmatched_media_goes_to_the_overflow_shard() {
        let mut router = SessionRouter::new(8);
        let decision = router.route(&rtp_to([10, 0, 0, 9], 9000));
        assert!(decision.overflow);
        assert_eq!(decision.shard, router.overflow_shard());
        assert!(is_synthetic(&decision.session));
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        let a = stable_session_hash(&SessionKey::new("call-a"));
        assert_eq!(a, stable_session_hash(&SessionKey::new("call-a")));
        // Distinct keys should not trivially collide.
        let hits: std::collections::HashSet<u64> = (0..100)
            .map(|i| stable_session_hash(&SessionKey::new(format!("call-{i}"))))
            .collect();
        assert!(hits.len() > 90);
        // And across 4 shards, 100 sessions should use every shard.
        let router = SessionRouter::new(4);
        let shards: std::collections::HashSet<usize> = (0..100)
            .map(|i| router.shard_of(&SessionKey::new(format!("call-{i}"))))
            .collect();
        assert_eq!(shards.len(), 4);
    }

    #[test]
    fn routing_is_deterministic() {
        let mk = || {
            let mut router = SessionRouter::new(7);
            vec![
                router.route(&invite_with_sdp("c1", [10, 0, 0, 3], 8000)),
                router.route(&rtp_to([10, 0, 0, 3], 8000)),
                router.route(&rtp_to([10, 0, 0, 9], 9000)),
            ]
        };
        assert_eq!(mk(), mk());
    }
}
