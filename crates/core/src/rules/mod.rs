//! The Ruleset and rule-matching engine (paper §3.1).
//!
//! "Ruleset is triggered by a sequence of Events. ... The matching in
//! the Ruleset is based on Events that can potentially encapsulate
//! information from multiple packets and can bear state information.
//! Besides the information that Events provide, the Ruleset can also
//! perform the matching based on crude information directly from the
//! Trails."

mod builtin;
mod bye_rule;
mod combo;
mod spec;

pub use builtin::{builtin_ruleset, RuleToggles};
pub use bye_rule::{ByeAttackRule, ByeOrigin};
pub use combo::{CombinationRule, SequenceRule};
pub use spec::{parse_ruleset, SpecError};

use crate::alert::Alert;
use crate::event::Event;
use crate::trail::TrailStore;
use scidive_netsim::time::SimTime;

/// Context a rule sees while matching: the current time plus read access
/// to the trails (the paper's "crude information" escape hatch).
pub struct RuleCtx<'a> {
    /// Current time.
    pub now: SimTime,
    /// The trail store.
    pub trails: &'a TrailStore,
}

/// A detection rule.
pub trait Rule {
    /// Stable rule identifier (kebab-case).
    fn id(&self) -> &str;

    /// One-line description.
    fn description(&self) -> &str;

    /// Whether the rule correlates more than one protocol (Table 1's
    /// "Cross-protocol?" column).
    fn is_cross_protocol(&self) -> bool;

    /// Whether the rule relies on state spanning multiple packets
    /// (Table 1's "Stateful?" column).
    fn is_stateful(&self) -> bool;

    /// Feeds one event; returns any alerts raised.
    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>) -> Vec<Alert>;
}
